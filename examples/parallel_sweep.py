#!/usr/bin/env python3
"""Sweep the whole evaluation through the parallel experiment engine.

Every (experiment, workload, configuration, seed) cell of the paper's
evaluation is a picklable job with a deterministic cache key.  This example
runs a multi-seed Figure 5 + Figure 6 sweep twice through an
:class:`repro.sim.runner.ExperimentRunner`:

1. cold, fanned out over worker processes -- every cell is simulated, and
   the seed sweep is embarrassingly parallel;
2. warm -- the second run executes *zero* simulation jobs, because every
   cell's result is served from the on-disk cache (one JSON file per cell
   under ``.repro-cache/<experiment>/<sha256>.json``).

Multi-seed runs feed the experiments' 95% confidence intervals, which is
exactly what the cache makes cheap: adding a seed later only simulates the
new cells.

Run with::

    python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

from repro.sim.experiments import (
    ExperimentSettings,
    run_dmr_overhead_experiment,
    run_mixed_mode_experiment,
)
from repro.sim.runner import ExperimentRunner

#: Three seeds per cell so the confidence intervals have spread to report.
SETTINGS = replace(
    ExperimentSettings.quick().with_workloads(("apache", "oltp")), seeds=(0, 1, 2)
)

CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
WORKERS = min(4, os.cpu_count() or 1)
#: Runner backend for the cold sweep: "process" (default), "thread" or
#: "serial" -- the same names `repro --backend` accepts.
BACKEND = os.environ.get("REPRO_SWEEP_BACKEND", "process")


def sweep(runner: ExperimentRunner) -> None:
    figure5 = run_dmr_overhead_experiment(SETTINGS, runner=runner)
    figure6 = run_mixed_mode_experiment(SETTINGS, runner=runner)
    print(figure5.format_ipc_table())
    print()
    print(figure6.format_throughput_table())


def main() -> None:
    print(
        f"Cold sweep across {WORKERS} workers of the {BACKEND!r} backend "
        f"(cache: {CACHE_DIR})..."
    )
    cold = ExperimentRunner(jobs=WORKERS, cache_dir=CACHE_DIR, backend=BACKEND)
    started = time.perf_counter()
    sweep(cold)
    print(f"\ncold: {cold.stats.summary()} in {time.perf_counter() - started:.1f}s")

    print("\nWarm re-run (a fresh runner, same cache directory)...")
    warm = ExperimentRunner(jobs=1, cache_dir=CACHE_DIR)
    started = time.perf_counter()
    sweep(warm)
    print(f"\nwarm: {warm.stats.summary()} in {time.perf_counter() - started:.1f}s")
    assert warm.stats.executed == 0, "a warm cache must not re-simulate anything"


if __name__ == "__main__":
    main()
