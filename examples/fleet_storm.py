#!/usr/bin/env python3
"""Fleet scenarios: a correlated failure storm over a 2-rack fleet.

The paper evaluates one consolidated server; the fleet subsystem lifts that
to a datacenter slice.  Here a seeded ``failure-storm`` scenario strikes one
rack of an 8-machine, 2-rack fleet -- every machine in the victim rack loses
half its cores within a tight window -- and the fleet scheduler evacuates
the burst VMs across the rack boundary.  Each machine then runs as one
cacheable engine cell, and the ``fleet`` spec folds the cells into fleet
SLOs: p99 degraded throughput, availability, migrations.

Two views of the same storm are shown:

1. the *plan* -- which rack was struck, which machines took refugees -- read
   straight off the deterministic scheduler output, and
2. the *sweep* -- the registered ``fleet`` spec run through the experiment
   engine over two seeds (``python -m repro fleet --quick`` runs the same
   thing from the CLI).

Run with::

    python examples/fleet_storm.py
"""

from __future__ import annotations

from repro.sim.experiments import ExperimentSettings
from repro.sim.fleet.cells import fleet_plan, fleet_topology
from repro.sim.specs import experiment
from repro.sim.timeline import CoreFailed

SETTINGS = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0, 1))


def main() -> None:
    print("1. The storm plan: who is struck, who takes the refugees")
    print("-" * 60)
    topology = fleet_topology(SETTINGS)
    print(f"fleet: {len(topology.sites)} machines in racks {', '.join(topology.racks())}")
    plan = fleet_plan(SETTINGS, "failure-storm", seed=0)
    for machine in plan.machines:
        failures = sum(
            1 for event in machine.timeline.events if isinstance(event, CoreFailed)
        )
        note = []
        if failures:
            note.append(f"{failures} cores fail")
        if machine.migrations_out:
            note.append(f"{machine.migrations_out} burst VM(s) evacuated")
        if machine.migrations_in:
            note.append(f"{machine.migrations_in} refugee(s) taken in")
        print(f"  {machine.site.name} ({machine.site.rack}): {'; '.join(note) or 'untouched'}")
    print(f"  fleet-wide migrations: {plan.total_migrations()}, dropped: {plan.dropped}")

    print()
    print("2. The same storm as a sweep (the `fleet` spec, 2 seeds)")
    print("-" * 60)
    frame = experiment("fleet").run(SETTINGS, scenarios=("failure-storm",))
    print(frame.to_table())

    # The frame's shape is the fleet SLO contract: one row per scenario,
    # with availability on (0, 1] -- degraded by the storm, never above
    # nominal -- and a storm that actually moved VMs.
    assert frame.axis_values("scenario") == ("failure-storm",)
    availability = frame.mean_of("availability", scenario="failure-storm")
    assert 0.0 < availability < 1.0, availability
    assert frame.mean_of("migrations", scenario="failure-storm") > 0
    assert frame.mean_of("p99_degraded_throughput", scenario="failure-storm") > 0.0
    print()
    print(f"availability under the storm: {availability:.4f} (< 1.0: the storm bit)")


if __name__ == "__main__":
    main()
