#!/usr/bin/env python3
"""Fault-injection study: what protects reliable state in each design?

Three complementary views of the paper's protection argument (Sections 2.1
and 3.4):

1. A *functional coverage campaign* injects individual faults (corrupted
   execution results, stores redirected by TLB/datapath faults, corrupted
   privileged registers) into four designs -- a traditional always-DMR
   machine, a Mixed-Mode Multicore with its PAB and transition verification,
   a naive design that simply turns DMR off, and a belt-and-braces DMR+PAB
   machine -- and classifies the outcome of every fault.  The campaign is
   cell-shaped: its (configuration, fault-site, seed, chunk) cells run
   through the experiment engine, fanned out over worker processes.

2. A *fault-space sweep* scales the fault rate and shows how the naive
   design's silent-corruption rate grows with it while the protected
   designs stay clean.

3. A *timing simulation with live fault injection* runs the MMM-TP
   consolidated server while store-address and privileged-register faults
   strike the performance-mode cores, and shows that the PAB blocks every
   escape attempt before reliable memory is touched.

Run with::

    python examples/fault_injection_study.py
"""

from __future__ import annotations

from repro import FaultRates, MixedModeMulticore
from repro.config.presets import evaluation_system_config
from repro.sim.experiments import (
    run_fault_coverage_experiment,
    run_fault_rate_sweep,
)
from repro.sim.runner import ExperimentRunner


def coverage_campaign() -> None:
    print("=== Functional fault-injection campaign (100 faults per class) ===")
    runner = ExperimentRunner(jobs=4, use_cache=False)
    result = run_fault_coverage_experiment(
        trials_per_site=100, seeds=(0, 1, 2, 3, 4), runner=runner
    )
    print(result.format_table())
    print()
    for report in result.reports():
        print(f"--- outcome breakdown: {report.configuration}")
        for outcome, count, fraction in report.summary_rows():
            print(f"    {outcome:34s}{count:6d}  ({fraction:5.1%})")
    print(f"engine: {runner.stats.summary()} across {runner.jobs} workers")
    print()


def fault_space_sweep() -> None:
    print("=== Fault-space sweep: silent corruption vs fault-rate scale ===")
    runner = ExperimentRunner(jobs=4, use_cache=False)
    sweep = run_fault_rate_sweep(
        fault_rates=(0.1, 0.5, 1.0), trials_per_site=100, runner=runner
    )
    print(sweep.format_table())
    print(f"engine: {runner.stats.summary()} across {runner.jobs} workers")
    print()


def live_injection() -> None:
    print("=== Timing simulation with live fault injection (MMM-TP) ===")
    config = evaluation_system_config(capacity_scale=8, timeslice_cycles=25_000)
    system = MixedModeMulticore.consolidated_server(
        reliable_workload="oltp",
        performance_workload="apache",
        policy="mmm-tp",
        reliable_vcpus=8,
        config=config,
        phase_scale=0.01,
        footprint_scale=1 / 8,
        fault_rates=FaultRates(
            store_address=0.003,        # TLB/datapath faults redirecting stores
            privileged_register=0.05,   # per-quantum privileged-register upsets
        ),
        seed=11,
    )
    result = system.run(total_cycles=60_000, warmup_cycles=15_000)
    injector = system.machine.fault_injector

    print(f"Faults injected while performance-mode cores were running: "
          f"{injector.injected_fault_count}")
    for name, value in injector.stats.items():
        print(f"    {name:32s}{int(value):6d}")
    print("Protection events observed:")
    for kind, count in sorted(result.violation_counts.items()):
        print(f"    {kind:32s}{count:6d}")
    print(f"Silent corruptions of reliable state: {result.silent_corruptions()}")
    print(f"Performance guest throughput was still "
          f"{result.vm('performance').throughput(result.total_cycles):.4f} "
          "user instructions per cycle -- protection does not cost it its speedup.")


def main() -> None:
    coverage_campaign()
    fault_space_sweep()
    live_injection()


if __name__ == "__main__":
    main()
