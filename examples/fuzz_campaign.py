#!/usr/bin/env python3
"""Run a scenario-fuzzing campaign against the simulator's invariants.

Property-based testing for the simulation core: the fuzz subsystem
generates random-but-valid dynamic scenarios -- a VM roster, a mapping
policy, a measurement horizon and a timeline drawing from all seven event
kinds (VM churn, core failures and repairs, policy and reliability hot
swaps, fault-rate bursts) -- and checks every run against machine-level
invariant oracles: cycle-budget conservation, pause accounting, VM
conservation across churn, DMR pair stability, retired-core exclusion, the
timeline ledger, and fault-detection consistency.

This example runs a 20-case campaign per profile directly through the
library API (no CLI), prints the violation table, and -- to show the whole
loop -- plants a deliberately false invariant ("no VM may ever arrive") on
one case and shrinks the resulting breach to its minimal reproducing
timeline: a single arrival event.

Run with::

    python examples/fuzz_campaign.py
"""

from __future__ import annotations

from repro.sim.fuzz.cells import check_scenario
from repro.sim.fuzz.generate import PROFILE_NAMES, generate_scenario
from repro.sim.fuzz.oracles import ORACLES
from repro.sim.fuzz.shrink import repro_snippet, shrink
from repro.sim.settings import ExperimentSettings

CASES_PER_PROFILE = 20

SETTINGS = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))


def main() -> None:
    oracle_names = sorted(ORACLES) + ["no-crash"]
    print(
        f"Fuzzing {CASES_PER_PROFILE} cases per profile "
        f"({', '.join(PROFILE_NAMES)}) against {len(oracle_names)} oracles..."
    )
    print()

    header = f"{'profile':>15s}{'cases':>7s}{'events':>8s}{'applied':>9s}"
    for name in oracle_names:
        header += f"{name:>18s}"
    print(header)
    total_violations = 0
    for profile in PROFILE_NAMES:
        events = applied = 0
        by_oracle = {name: 0 for name in oracle_names}
        for case in range(CASES_PER_PROFILE):
            scenario = generate_scenario(SETTINGS, profile, case, seed=0)
            violations, events_applied = check_scenario(SETTINGS, scenario)
            events += len(scenario.timeline)
            applied += events_applied
            for violation in violations:
                by_oracle[violation.oracle] += 1
                total_violations += 1
                print(f"  !! {violation}")
        row = f"{profile:>15s}{CASES_PER_PROFILE:>7d}{events:>8d}{applied:>9d}"
        for name in oracle_names:
            row += f"{by_oracle[name]:>18d}"
        print(row)
    print()
    print(f"campaign violations: {total_violations}")
    print()

    # The whole loop on a planted bug: a deliberately false invariant
    # breaches, and the shrinker reduces the case to its minimal timeline.
    print("Planting a false invariant ('no VM may ever arrive')...")
    scenario = generate_scenario(SETTINGS, "churn-heavy", 0, seed=0)
    print(
        f"  case {scenario.case_id}: {len(scenario.roster)} VMs, "
        f"{len(scenario.timeline)} events"
    )

    def checker(candidate):
        return check_scenario(SETTINGS, candidate, planted=True)[0]

    result = shrink(scenario, checker)
    print(
        f"  shrunk in {result.steps} step(s) ({result.attempts} candidate "
        f"runs) to {len(result.scenario.timeline)} event(s), "
        f"{len(result.scenario.roster)} VMs:"
    )
    print()
    print(repro_snippet(result.scenario, result.violations))


if __name__ == "__main__":
    main()
