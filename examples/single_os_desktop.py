#!/usr/bin/env python3
"""A single-OS desktop mixing a media and a finance application (Figure 1).

The paper's motivating desktop scenario: the user runs a fault-tolerant media
/ web application that wants performance, and a personal-finance application
whose data integrity matters.  On a Mixed-Mode Multicore the finance
application (and the operating system) run under DMR while the media
application's *user* code runs at full speed; every system call, page fault
or interrupt escalates the media application's core pair back to reliable
mode, because the OS is the most privileged software and must always be
protected (Section 3.4.2).

This example uses the MMM-IPC policy with fine-grained mode switching, so you
can see how often the transitions happen and what they cost (Tables 1 and 2
of the paper study exactly these quantities).

Run with::

    python examples/single_os_desktop.py
"""

from __future__ import annotations

from repro import MixedModeMulticore
from repro.config.presets import evaluation_system_config

CONFIG = evaluation_system_config(capacity_scale=8, timeslice_cycles=25_000)


def main() -> None:
    system = MixedModeMulticore.single_os_desktop(
        reliable_workload="oltp",      # stands in for the personal-finance app
        performance_workload="apache",  # stands in for the media/web app
        vcpus_per_application=4,
        config=CONFIG,
        phase_scale=0.01,
        footprint_scale=1 / 8,
    )
    print("Simulating the single-OS desktop (MMM-IPC, fine-grained switching)...")
    result = system.run(total_cycles=75_000, warmup_cycles=25_000)

    cycles = result.total_cycles
    finance = result.vm("reliable-app")
    media = result.vm("performance-app")

    print()
    print(f"{'application':18s}{'mode':>24s}{'user IPC':>10s}{'throughput':>12s}")
    print(f"{'finance (reliable)':18s}{'always DMR':>24s}"
          f"{finance.average_user_ipc(cycles):10.4f}{finance.throughput(cycles):12.4f}")
    print(f"{'media (performance)':18s}{'DMR only inside the OS':>24s}"
          f"{media.average_user_ipc(cycles):10.4f}{media.throughput(cycles):12.4f}")

    switches = sum(vcpu.mode_switches for vcpu in media.vcpus)
    switch_cycles = sum(vcpu.mode_switch_cycles for vcpu in media.vcpus)
    media_cycles = sum(vcpu.active_cycles for vcpu in media.vcpus)
    overhead = switch_cycles / (media_cycles + switch_cycles) * 100 if media_cycles else 0.0

    print()
    print(f"Mode switches triggered by the media application entering/leaving the OS: {switches}")
    print(f"Average Enter DMR cost: {result.average_enter_dmr_cycles:.0f} cycles; "
          f"Leave DMR cost: {result.average_leave_dmr_cycles:.0f} cycles")
    print(f"Time the media application spent switching modes: {overhead:.2f}% "
          "(scaled run; see benchmarks/bench_single_os_overhead.py for the "
          "full-size estimate, which the paper puts at ~8% for Apache and <5% otherwise)")
    print(f"Silent corruptions of reliable state: {result.silent_corruptions()}")


if __name__ == "__main__":
    main()
