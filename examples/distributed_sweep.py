#!/usr/bin/env python3
"""Run a sweep through the distributed backend: coordinator + worker fleet.

The distributed runner splits the engine in three pieces that normally live
in one process:

* a **coordinator** (`repro serve`) -- an in-memory job board behind a
  stdlib HTTP server that dedupes submitted cells by their content-addressed
  cache key, leases them to workers in adaptive chunks, and re-queues any
  chunk whose worker dies mid-lease;
* **workers** (`repro worker`) -- pull-based loops that need nothing but
  the coordinator URL: lease, simulate, report, repeat;
* the **client** -- a plain :class:`~repro.sim.runner.ExperimentRunner`
  whose backend ships cells to the coordinator instead of a local pool.
  Caching, stats and frame assembly are untouched, so the results are
  byte-identical to a serial run.

This example hosts all three in one process (threads stand in for the
separate machines), then double-checks determinism against a serial run
and fetches the same cells again through the ``repro serve`` run API.

Run with::

    python examples/distributed_sweep.py
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, replace

from repro.sim.distributed import (
    CoordinatorClient,
    CoordinatorServer,
    DistributedBackend,
    run_worker,
)
from repro.sim.experiments import ExperimentSettings, run_dmr_overhead_experiment
from repro.sim.runner import ExperimentRunner

#: A seeded multi-workload grid; every cell is deterministic in its seed.
SETTINGS = replace(
    ExperimentSettings.quick().with_workloads(("apache", "oltp")), seeds=(0, 1)
)
WORKERS = 2


def start_worker(url: str, index: int) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(url,),
        kwargs={
            "worker_id": f"example-{index}",
            "poll_seconds": 0.2,
            # Drain once the queue stays empty: lets this example exit.
            "max_idle_seconds": 3.0,
            "announce": lambda message: print(f"  [{message}]"),
        },
        daemon=True,
    )
    thread.start()
    return thread


def main() -> None:
    # In real use these three run on different machines:
    #   repro serve --port 8765                       # coordinator host
    #   repro worker --coordinator http://host:8765   # each worker host
    #   repro figure5 --backend distributed --coordinator http://host:8765
    server = CoordinatorServer(port=0).start()
    print(f"coordinator listening on {server.url}")
    workers = [start_worker(server.url, index) for index in range(WORKERS)]

    print(f"\nDistributed Figure 5 sweep across {WORKERS} workers...")
    runner = ExperimentRunner(
        jobs=WORKERS, use_cache=False, backend=DistributedBackend(server.url)
    )
    started = time.perf_counter()
    distributed = run_dmr_overhead_experiment(SETTINGS, runner=runner)
    print(distributed.format_ipc_table())
    print(f"\ndistributed: {runner.stats.summary()} "
          f"in {time.perf_counter() - started:.1f}s")

    # Determinism: the remote fleet produced exactly the serial numbers.
    serial = run_dmr_overhead_experiment(
        SETTINGS, runner=ExperimentRunner(jobs=1, use_cache=False)
    )
    assert (
        distributed.format_ipc_table() == serial.format_ipc_table()
    ), "distributed results must be byte-identical to serial"
    print("byte-identical to the serial run: OK")

    # The run API: submit a whole evaluation, poll, fetch the document.
    client = CoordinatorClient(server.url)
    run_id = client.submit_run(asdict(SETTINGS), experiments=["figure5", "pab"])
    print(f"\nsubmitted run {run_id['run']} ({run_id['cells']} cells) via the API")
    while client.run_status(run_id["run"])["state"] != "done":
        time.sleep(0.2)
    document = client.run_document(run_id["run"])
    print(f"run document: {sorted(document['frames'])} "
          f"({len(json.dumps(document))} JSON bytes)")

    for thread in workers:
        thread.join(timeout=30)
    stats = client.stats()
    print(f"\ncoordinator counters: {stats['submitted']} submitted, "
          f"{stats['deduped']} deduped, {stats['completed']} completed, "
          f"{stats['requeues']} requeued")
    server.stop()


if __name__ == "__main__":
    main()
