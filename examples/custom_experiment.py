#!/usr/bin/env python3
"""Add your own experiment in ~30 lines: a declarative ``ExperimentSpec``.

The experiment layer is driven by the central ``EXPERIMENTS`` registry of
:mod:`repro.sim.specs`: an experiment is a spec object declaring its
parameter grid, how grid points become engine jobs, and -- since the frame
redesign -- a ``MetricSchema`` naming its key axes and typed metric
columns.  Everything else is generated: the generic assembler folds the
runner's metrics into a ``ResultFrame`` (aggregating over seeds with 95%
confidence intervals), and ``to_table`` / ``to_json`` / ``to_csv`` render
straight from the schema.  Registering the spec makes it a first-class
citizen everywhere -- it gains a CLI subcommand (``repro timeslice-sweep``)
with the engine flags for free, shows up in ``repro list``, rides the
``run-all`` batch, and its frame participates in ``repro export`` and
``repro diff`` baselines.

This example registers a *timeslice sweep*: how the consolidated server's
overall throughput under MMM-TP responds to the gang-scheduling timeslice.
It reuses the existing ``figure6`` job kind -- the timeslice is part of each
cell's settings, so every swept point is an independently cached cell.

Run with::

    python examples/custom_experiment.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.experiments import ExperimentSettings
from repro.sim.frames import FrameView, MetricColumn, MetricSchema
from repro.sim.jobs import ExperimentJob
from repro.sim.runner import ExperimentRunner
from repro.sim.specs import ExperimentSpec, ParameterGrid, register_experiment

TIMESLICES = (10_000, 25_000, 50_000)

# --- the ~30 lines: grid, jobs, schema, registration ---------------------


def timeslice_jobs(request):
    base = request.settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure6", workload="apache", variant="mmm-tp", seed=seed,
            settings=replace(base, timeslice_cycles=timeslice),
            # The swept axis rides in the job params, so the spec's schema
            # key ("timeslice") resolves straight off the job.
            params=(("timeslice", timeslice),),
        )
        for timeslice in TIMESLICES
        for seed in request.settings.seeds
    ]


SCHEMA = MetricSchema(
    keys=("timeslice",),
    metrics=(
        MetricColumn("overall_throughput", unit="instr/cycle", label="overall throughput"),
    ),
    views=(
        FrameView(
            title="Overall MMM-TP throughput vs gang-scheduling timeslice (apache)",
            metrics=("overall_throughput",),
        ),
    ),
)


SPEC = register_experiment(
    ExperimentSpec(
        name="timeslice-sweep",
        title="overall throughput vs gang-scheduling timeslice",
        grid=lambda request: ParameterGrid.of(
            ("timeslice", TIMESLICES), ("seed", request.settings.seeds)
        ),
        enumerate_jobs=timeslice_jobs,
        schema=lambda request: SCHEMA,
    )
)

# --- run it like any other spec ------------------------------------------


def main() -> None:
    runner = ExperimentRunner(jobs=4)
    settings = ExperimentSettings.quick().with_seeds((0, 1, 2))
    frame = SPEC.run(settings, runner=runner)
    print(SPEC.to_table(frame))
    print()
    print("as CSV:")
    print(SPEC.to_csv(frame))
    print(f"grid: {SPEC.grid(SPEC.request(settings)).describe()}")
    print(f"engine: {runner.stats.summary()}")


if __name__ == "__main__":
    main()
