#!/usr/bin/env python3
"""Add your own experiment in ~30 lines: a declarative ``ExperimentSpec``.

The experiment layer is driven by the central ``EXPERIMENTS`` registry of
:mod:`repro.sim.specs`: an experiment is a spec object declaring its
parameter grid, how grid points become engine jobs, and how the returned
metrics assemble into a result.  Registering one makes it a first-class
citizen everywhere -- it gains a CLI subcommand (``repro timeslice-sweep``)
with the engine flags for free, shows up in ``repro list``, rides the
``run-all`` batch (its tables land in the combined report), and its cells
are cached and fanned out like every built-in experiment.

This example registers a *timeslice sweep*: how the consolidated server's
overall throughput under MMM-TP responds to the gang-scheduling timeslice.
It reuses the existing ``figure6`` job kind -- the timeslice is part of each
cell's settings, so every swept point is an independently cached cell.

Run with::

    python examples/custom_experiment.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import TextTable
from repro.common.stats import mean
from repro.sim.experiments import ExperimentSettings
from repro.sim.jobs import ExperimentJob
from repro.sim.runner import ExperimentRunner
from repro.sim.specs import ExperimentSpec, ParameterGrid, register_experiment

TIMESLICES = (10_000, 25_000, 50_000)

# --- the ~30 lines: grid, jobs, assembly, registration -------------------


def timeslice_jobs(request):
    base = request.settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure6", workload="apache", variant="mmm-tp", seed=seed,
            settings=replace(base, timeslice_cycles=timeslice),
        )
        for timeslice in TIMESLICES
        for seed in request.settings.seeds
    ]


def assemble_timeslices(request, jobs, results):
    table = TextTable(
        ["timeslice (cycles)", "overall throughput"],
        title="Overall MMM-TP throughput vs gang-scheduling timeslice (apache)",
    )
    for timeslice in TIMESLICES:
        samples = [
            results[job]["overall_throughput"]
            for job in jobs
            if job.settings.timeslice_cycles == timeslice
        ]
        table.add_row([timeslice, mean(samples)])
    return table.render()


SPEC = register_experiment(
    ExperimentSpec(
        name="timeslice-sweep",
        title="overall throughput vs gang-scheduling timeslice",
        grid=lambda request: ParameterGrid.of(
            ("timeslice", TIMESLICES), ("seed", request.settings.seeds)
        ),
        enumerate_jobs=timeslice_jobs,
        assemble=assemble_timeslices,
        tables=lambda result: [result],
    )
)

# --- run it like any other spec ------------------------------------------


def main() -> None:
    runner = ExperimentRunner(jobs=4)
    settings = ExperimentSettings.quick().with_seeds((0, 1, 2))
    result = SPEC.run(settings, runner=runner)
    print(SPEC.to_table(result))
    print()
    print(f"grid: {SPEC.grid(SPEC.request(settings)).describe()}")
    print(f"engine: {runner.stats.summary()}")


if __name__ == "__main__":
    main()
