#!/usr/bin/env python3
"""Quickstart: run a mixed-mode consolidated server and measure the benefit.

This is the 60-second tour of the library: build the paper's consolidated
server (one guest VM that needs reliability, one that needs performance),
run it once as a traditional always-DMR machine and once as a Mixed-Mode
Multicore with MMM-TP, and compare what the performance guest gets out of it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MixedModeMulticore
from repro.config.presets import evaluation_system_config

# A 16-core machine with the paper's structure; capacities are scaled down by
# 8x (together with the workload footprints) so the example runs in seconds.
CONFIG = evaluation_system_config(capacity_scale=8, timeslice_cycles=25_000)
RUN = dict(total_cycles=60_000, warmup_cycles=15_000)


def build(policy: str) -> MixedModeMulticore:
    """One reliable guest (OLTP database) + one performance guest (web server)."""
    return MixedModeMulticore.consolidated_server(
        reliable_workload="oltp",
        performance_workload="apache",
        policy=policy,
        reliable_vcpus=8,
        config=CONFIG,
        phase_scale=0.01,
        footprint_scale=1 / 8,
    )


def main() -> None:
    print("Simulating the always-DMR baseline (both guests pay for redundancy)...")
    baseline = build("dmr-base").run(**RUN)

    print("Simulating the Mixed-Mode Multicore (MMM-TP)...")
    mixed = build("mmm-tp").run(**RUN)

    cycles = baseline.total_cycles
    base_perf = baseline.vm("performance")
    mmm_perf = mixed.vm("performance")
    base_rel = baseline.vm("reliable")
    mmm_rel = mixed.vm("reliable")

    print()
    print(f"{'':28s}{'DMR base':>12s}{'MMM-TP':>12s}{'ratio':>8s}")
    rows = [
        ("performance VM throughput", base_perf.throughput(cycles), mmm_perf.throughput(cycles)),
        ("performance VM per-thread IPC", base_perf.average_user_ipc(cycles),
         mmm_perf.average_user_ipc(cycles)),
        ("reliable VM throughput", base_rel.throughput(cycles), mmm_rel.throughput(cycles)),
        ("whole machine throughput", baseline.overall_throughput(), mixed.overall_throughput()),
    ]
    for label, before, after in rows:
        ratio = after / before if before else float("nan")
        print(f"{label:28s}{before:12.4f}{after:12.4f}{ratio:8.2f}x")

    print()
    print(
        "The performance guest runs its VCPUs independently (no DMR) and exposes "
        f"{mmm_perf.num_vcpus} VCPUs instead of {base_perf.num_vcpus}, while the reliable "
        "guest keeps full dual-modular redundancy."
    )
    print(f"Mode transitions charged at timeslice boundaries: {mixed.transitions}")
    print(f"Silent corruptions of reliable state: {mixed.silent_corruptions()}")


if __name__ == "__main__":
    main()
