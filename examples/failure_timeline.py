#!/usr/bin/env python3
"""Dynamic scenarios: reshape the machine mid-run with a timeline of events.

The paper's mixed-mode multicore adapts at runtime -- cores couple into DMR
pairs or are released for performance as demand and faults dictate.  This
example drives that adaptation explicitly: a Reunion DMR machine loses cores
to permanent faults on a schedule, and the simulator degrades gracefully by
re-pairing the surviving cores each quantum.

Two ways to run the same scenario are shown:

1. directly, with a :class:`repro.sim.timeline.Timeline` handed to the
   :class:`~repro.sim.simulator.Simulator` (full control over the event
   schedule -- policy changes, VM churn and fault bursts compose the same
   way), and
2. through the registered ``degradation`` experiment spec, which sweeps the
   failed-core axis through the parallel, cached experiment engine
   (``python -m repro degradation`` runs the same thing from the CLI).

Run with::

    python examples/failure_timeline.py
"""

from __future__ import annotations

from repro.core.machine import MixedModeMachine, VmSpec
from repro.config.presets import evaluation_system_config
from repro.sim.experiments import ExperimentSettings, run_degradation_experiment
from repro.sim.simulator import SimulationOptions, Simulator
from repro.sim.timeline import CoreFailed, PolicyChanged, Timeline
from repro.virt.vcpu import ReliabilityMode

CONFIG = evaluation_system_config(capacity_scale=16, timeslice_cycles=6_000)
OPTIONS = SimulationOptions(total_cycles=24_000, warmup_cycles=6_000)


def build_machine() -> MixedModeMachine:
    """Eight reliable VCPUs on sixteen cores: the Reunion DMR configuration."""
    spec = VmSpec(
        name="baseline",
        workload="oltp",
        num_vcpus=CONFIG.num_cores // 2,
        reliability=ReliabilityMode.RELIABLE,
        phase_scale=0.005,
        footprint_scale=1 / 16,
    )
    return MixedModeMachine(config=CONFIG, vm_specs=[spec], policy="dmr-base", seed=0)


def main() -> None:
    print("1. One run, cores failing mid-measurement")
    print("-" * 58)
    # Four permanent faults strike at evenly spaced cycles; after the last
    # one, privileged software gives up on universal DMR and switches the
    # survivors to MMM-TP so the paused VCPUs run again (unprotected).
    timeline = Timeline.of(
        CoreFailed(cycle=9_000, core_id=15),
        CoreFailed(cycle=12_000, core_id=14),
        CoreFailed(cycle=15_000, core_id=13),
        CoreFailed(cycle=18_000, core_id=12),
        PolicyChanged(cycle=21_000, policy="mmm-tp"),
    )
    result = Simulator(build_machine(), OPTIONS, timeline=timeline).run()
    print(f"events applied:        {result.timeline_events_applied}")
    print(f"per-kind counts:       {result.timeline_stats}")
    print(f"paused VCPU quanta:    {result.paused_vcpu_quanta}")
    print(f"final policy:          {result.policy_name}")
    print(f"overall throughput:    {result.overall_throughput():.4f} user instr/cycle")
    used = result.quantum_stats.get("core_cycles_used", 0.0)
    capacity = result.quantum_stats.get("core_cycles_capacity", 0.0)
    print(f"core utilisation:      {used / capacity:.2%}" if capacity else "n/a")

    print()
    print("2. The same scenario as a sweep (the `degradation` spec)")
    print("-" * 58)
    settings = ExperimentSettings.quick().with_workloads(("oltp",))
    sweep = run_degradation_experiment(settings, failures=(0, 2, 4, 6))
    print(sweep.format_table())
    row = sweep.row("oltp")
    normalized = row.normalized_throughput()
    print()
    for failed, fraction in normalized.items():
        survivors = sweep.num_cores - failed
        print(f"  {survivors:2d} surviving cores -> {fraction:6.1%} of full throughput")


if __name__ == "__main__":
    main()
