#!/usr/bin/env python3
"""Differentiated reliability for a consolidated server (paper Figure 2).

A hosting provider consolidates three customers onto one 16-core machine:

* ``gold``    -- a financial OLTP database that pays for full DMR protection,
* ``silver``  -- a second database customer, also on the reliable tier,
* ``economy`` -- a web-serving customer that wants raw throughput at an
  economy price and tolerates the (small) risk of running without DMR.

With a traditional DMR machine, the economy customer pays the full redundancy
tax anyway -- every core pair runs in lock step because *someone* on the
machine needs reliability.  A Mixed-Mode Multicore lets each guest VM choose:
the reliable guests keep DMR, the economy guest gets every spare core for
independent VCPUs (MMM-TP).

Run with::

    python examples/consolidated_server.py
"""

from __future__ import annotations

from repro import MixedModeMulticore, ReliabilityMode, VmSpec
from repro.config.presets import evaluation_system_config

CONFIG = evaluation_system_config(capacity_scale=8, timeslice_cycles=25_000)
RUN = dict(total_cycles=75_000, warmup_cycles=25_000)
SCALE = dict(phase_scale=0.01, footprint_scale=1 / 8)


def build(policy: str, economy_vcpus: int) -> MixedModeMulticore:
    specs = [
        VmSpec(name="gold", workload="oltp", num_vcpus=4,
               reliability=ReliabilityMode.RELIABLE, **SCALE),
        VmSpec(name="silver", workload="pgbench", num_vcpus=4,
               reliability=ReliabilityMode.RELIABLE, **SCALE),
        VmSpec(name="economy", workload="apache", num_vcpus=economy_vcpus,
               reliability=ReliabilityMode.PERFORMANCE, **SCALE),
    ]
    return MixedModeMulticore(vm_specs=specs, policy=policy, config=CONFIG)


def main() -> None:
    # Under the always-DMR baseline the economy guest can only use core pairs.
    print("Running the traditional DMR consolidated server...")
    baseline = build("dmr-base", economy_vcpus=8).run(**RUN)
    # Under MMM-TP the economy guest overcommits the chip with 16 VCPUs.
    print("Running the Mixed-Mode Multicore (MMM-TP) consolidated server...")
    mixed = build("mmm-tp", economy_vcpus=16).run(**RUN)

    print()
    print(f"{'guest VM':10s}{'tier':>14s}{'DMR base tput':>16s}{'MMM-TP tput':>14s}{'change':>9s}")
    for name, tier in (("gold", "reliable"), ("silver", "reliable"), ("economy", "performance")):
        before = baseline.vm(name).throughput(baseline.total_cycles)
        after = mixed.vm(name).throughput(mixed.total_cycles)
        change = (after / before - 1.0) * 100 if before else float("nan")
        print(f"{name:10s}{tier:>14s}{before:16.4f}{after:14.4f}{change:+8.1f}%")

    print()
    print(f"Machine throughput: {baseline.overall_throughput():.4f} -> "
          f"{mixed.overall_throughput():.4f} "
          f"({mixed.overall_throughput() / baseline.overall_throughput():.2f}x)")
    print(f"Economy guest VCPUs exposed: {baseline.vm('economy').num_vcpus} -> "
          f"{mixed.vm('economy').num_vcpus} (core overcommit via the hardware scheduler)")
    print(f"Mode transitions at timeslice boundaries: {mixed.transitions} "
          f"(average Enter DMR {mixed.average_enter_dmr_cycles:.0f} cycles, "
          f"Leave DMR {mixed.average_leave_dmr_cycles:.0f} cycles)")
    print(f"Silent corruptions of reliable state: {mixed.silent_corruptions()}")


if __name__ == "__main__":
    main()
