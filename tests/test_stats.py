"""Tests for counters, running statistics and confidence intervals."""

from __future__ import annotations

import math

from repro.common.stats import (
    ConfidenceInterval,
    LatencyHistogram,
    RunningStat,
    StatSet,
    confidence_interval_95,
    geometric_mean,
)


class TestConfidenceInterval:
    def test_empty_sequence(self):
        ci = confidence_interval_95([])
        assert ci.count == 0
        assert ci.mean == 0.0

    def test_single_sample_has_zero_width(self):
        ci = confidence_interval_95([3.5])
        assert ci.mean == 3.5
        assert ci.half_width == 0.0

    def test_constant_samples_have_zero_width(self):
        ci = confidence_interval_95([2.0] * 10)
        assert ci.mean == 2.0
        assert ci.half_width == 0.0

    def test_interval_contains_true_mean_for_symmetric_data(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = confidence_interval_95(data)
        assert ci.low < 3.0 < ci.high
        assert math.isclose(ci.mean, 3.0)

    def test_str_mentions_count(self):
        assert "n=3" in str(confidence_interval_95([1, 2, 3]))

    def test_str_single_sample_says_so_instead_of_plus_minus_zero(self):
        rendered = str(confidence_interval_95([3.5]))
        assert rendered == "3.5 (single seed)"
        assert "±" not in rendered

    def test_str_empty_sequence_says_no_data(self):
        assert str(confidence_interval_95([])) == "(no data)"

    def test_bounds_are_symmetric(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, count=5)
        assert ci.low == 8.0
        assert ci.high == 12.0


def test_geometric_mean():
    assert geometric_mean([]) == 0.0
    assert math.isclose(geometric_mean([2, 8]), 4.0)
    assert math.isclose(geometric_mean([5, 5, 5]), 5.0)
    # Non-positive values are ignored rather than poisoning the result.
    assert math.isclose(geometric_mean([0, 2, 8]), 4.0)


class TestRunningStat:
    def test_mean_min_max(self):
        stat = RunningStat()
        for value in [4.0, 8.0, 6.0]:
            stat.record(value)
        assert math.isclose(stat.mean, 6.0)
        assert stat.minimum == 4.0
        assert stat.maximum == 8.0
        assert stat.count == 3

    def test_variance_matches_textbook_formula(self):
        stat = RunningStat()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in data:
            stat.record(value)
        mean = sum(data) / len(data)
        expected = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert math.isclose(stat.variance, expected)

    def test_merge_equals_single_accumulator(self):
        combined = RunningStat()
        left = RunningStat()
        right = RunningStat()
        for index in range(20):
            value = float(index * index % 17)
            combined.record(value)
            (left if index < 10 else right).record(value)
        left.merge(right)
        assert math.isclose(left.mean, combined.mean)
        assert math.isclose(left.variance, combined.variance)
        assert left.count == combined.count

    def test_merge_into_empty(self):
        empty = RunningStat()
        other = RunningStat()
        other.record(3.0)
        empty.merge(other)
        assert empty.count == 1
        assert empty.mean == 3.0


class TestStatSet:
    def test_add_and_get(self):
        stats = StatSet()
        stats.add("hits")
        stats.add("hits", 4)
        assert stats.get("hits") == 5
        assert stats.get("absent") == 0
        assert stats.get("absent", 9) == 9

    def test_merge_and_scaled(self):
        a = StatSet({"x": 2})
        b = StatSet({"x": 3, "y": 1})
        a.merge(b)
        assert a.get("x") == 5
        assert a.get("y") == 1
        scaled = a.scaled(2.0)
        assert scaled.get("x") == 10
        assert a.get("x") == 5  # original untouched

    def test_ratio(self):
        stats = StatSet({"misses": 25, "accesses": 100})
        assert stats.ratio("misses", "accesses") == 0.25
        assert stats.ratio("misses", "absent") == 0.0

    def test_contains_len_and_items_sorted(self):
        stats = StatSet({"b": 1, "a": 2})
        assert "a" in stats
        assert len(stats) == 2
        assert [name for name, _ in stats.items()] == ["a", "b"]

    def test_set_overwrites(self):
        stats = StatSet({"x": 2})
        stats.set("x", 7)
        assert stats.get("x") == 7


class TestLatencyHistogram:
    def test_mean_and_percentile(self):
        histogram = LatencyHistogram(bucket_width=10)
        for latency in [5, 15, 25, 35, 95]:
            histogram.record(latency)
        assert math.isclose(histogram.mean, 35.0)
        assert histogram.percentile(0.5) <= histogram.percentile(0.99)
        assert histogram.percentile(0.99) >= 90

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0
