"""Tests for the deterministic random source."""

from __future__ import annotations

from repro.common.rng import DeterministicRng


def test_same_seed_gives_identical_streams():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.randint(0, 1000) for _ in range(50)] == [
        b.randint(0, 1000) for _ in range(50)
    ]


def test_different_seeds_give_different_streams():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10**9) for _ in range(10)] != [
        b.randint(0, 10**9) for _ in range(10)
    ]


def test_fork_is_deterministic_and_label_sensitive():
    base = DeterministicRng(7)
    again = DeterministicRng(7)
    assert base.fork("x").randint(0, 10**9) == again.fork("x").randint(0, 10**9)
    assert base.fork("x").seed != base.fork("y").seed


def test_fork_does_not_perturb_parent_stream():
    plain = DeterministicRng(9)
    forked = DeterministicRng(9)
    forked.fork("child")
    assert plain.randint(0, 10**6) == forked.randint(0, 10**6)


def test_chance_boundaries():
    rng = DeterministicRng(0)
    assert rng.chance(0.0) is False
    assert rng.chance(1.0) is True
    assert rng.chance(-1.0) is False
    assert rng.chance(2.0) is True


def test_chance_frequency_tracks_probability():
    rng = DeterministicRng(5)
    hits = sum(rng.chance(0.25) for _ in range(4000))
    assert 800 < hits < 1200


def test_geometric_mean_is_close_to_requested():
    rng = DeterministicRng(11)
    samples = [rng.geometric(50.0) for _ in range(4000)]
    assert all(s >= 1 for s in samples)
    mean = sum(samples) / len(samples)
    assert 40 < mean < 60


def test_geometric_with_tiny_mean_returns_one():
    rng = DeterministicRng(3)
    assert rng.geometric(0.5) == 1
    assert rng.geometric(1.0) == 1


def test_sample_address_respects_bounds_and_alignment():
    rng = DeterministicRng(13)
    for _ in range(200):
        address = rng.sample_address(base=0x1000, span=0x800, alignment=64)
        assert 0x1000 <= address < 0x1800
        assert address % 64 == 0


def test_sample_address_with_zero_span_returns_base():
    rng = DeterministicRng(13)
    assert rng.sample_address(0x2000, 0) == 0x2000


def test_hot_cold_address_prefers_hot_window():
    rng = DeterministicRng(17)
    hot_hits = 0
    for _ in range(2000):
        address = rng.hot_cold_address(
            base=0, hot_span=1024, cold_span=65536, hot_probability=0.9, alignment=64
        )
        assert 0 <= address < 65536
        if address < 1024:
            hot_hits += 1
    assert hot_hits > 1600


def test_weighted_choice_and_choice_return_members():
    rng = DeterministicRng(19)
    items = ["a", "b", "c"]
    assert rng.choice(items) in items
    assert rng.weighted_choice(items, [1, 1, 8]) in items


def test_gauss_positive_never_returns_nonpositive():
    rng = DeterministicRng(23)
    assert all(rng.gauss_positive(1.0, 5.0) > 0 for _ in range(500))
