"""Tests for the PAT, the PAB, and protection-violation logging."""

from __future__ import annotations

import pytest

from repro.common.addresses import Region
from repro.config.system import PabConfig, PabLookupMode
from repro.errors import ProtectionError
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable
from repro.protection.violations import ProtectionViolation, ViolationKind, ViolationLog

PAGE = 8192


@pytest.fixture
def pat():
    return ProtectionAssistanceTable(physical_memory_bytes=512 * PAGE, page_size=PAGE)


class TestPat:
    def test_paper_sizing_one_bit_per_page(self):
        one_tb = ProtectionAssistanceTable(physical_memory_bytes=1 << 40, page_size=PAGE)
        assert one_tb.size_bytes == 16 * 1024 * 1024  # 16 MB per TB, as in the paper

    def test_mark_and_query(self, pat):
        assert not pat.is_reliable_only(5)
        pat.mark_reliable_page(5)
        assert pat.is_reliable_only(5)
        assert pat.is_reliable_only_address(5 * PAGE + 100)
        pat.mark_open_page(5)
        assert not pat.is_reliable_only(5)

    def test_mark_region(self, pat):
        count = pat.mark_reliable_region(Region("r", 10 * PAGE, 4 * PAGE))
        assert count == 4
        assert list(pat.reliable_pages()) == [10, 11, 12, 13]
        assert pat.reliable_page_count == 4
        pat.mark_open_region(Region("r", 10 * PAGE, 2 * PAGE))
        assert list(pat.reliable_pages()) == [12, 13]

    def test_out_of_range_page_rejected(self, pat):
        with pytest.raises(ProtectionError):
            pat.mark_reliable_page(100000)
        with pytest.raises(ProtectionError):
            pat.is_reliable_only(-1)

    def test_entry_address_uses_backing_region(self):
        backing = Region("pat", 0x10_0000, 0x1000)
        pat = ProtectionAssistanceTable(
            physical_memory_bytes=4096 * PAGE, page_size=PAGE, backing_region=backing
        )
        assert pat.entry_address(0) == 0x10_0000
        assert pat.entry_address(512) == 0x10_0040
        assert pat.entry_address(1023) == 0x10_0040


class TestPab:
    def make_pab(self, pat, mode=PabLookupMode.PARALLEL, hierarchy=None):
        return ProtectionAssistanceBuffer(
            config=PabConfig(entries=4, lookup_mode=mode),
            pat=pat,
            core_id=0,
            hierarchy=hierarchy,
        )

    def test_allows_open_pages_and_blocks_reliable_pages(self, pat):
        pat.mark_reliable_page(7)
        pab = self.make_pab(pat)
        allowed = pab.check_store(3 * PAGE)
        blocked = pab.check_store(7 * PAGE + 64)
        assert allowed.allowed
        assert not blocked.allowed
        assert pab.stats.get("violations_blocked") == 1

    def test_parallel_hits_add_no_latency_serial_adds_two_cycles(self, pat):
        parallel = self.make_pab(pat, PabLookupMode.PARALLEL)
        serial = self.make_pab(pat, PabLookupMode.SERIAL)
        parallel.check_store(0)     # miss fills the entry
        serial.check_store(0)
        assert parallel.check_store(64).latency == 0
        assert serial.check_store(64).latency == 2
        assert serial.check_store(64).serialized

    def test_miss_fetches_pat_block_through_hierarchy(self, pat, small_config):
        hierarchy = MemoryHierarchy(small_config)
        pab = self.make_pab(pat, hierarchy=hierarchy)
        result = pab.check_store(0)
        assert not result.hit
        assert result.latency > 0  # the PAT fill went through the caches
        assert pab.check_store(64).hit

    def test_out_of_range_store_is_blocked(self, pat):
        pab = self.make_pab(pat)
        result = pab.check_store(10**12)
        assert not result.allowed

    def test_lru_eviction_of_entries(self):
        # A PAT covering six PAB blocks' worth of pages (512 pages per block).
        big_pat = ProtectionAssistanceTable(
            physical_memory_bytes=6 * 512 * PAGE, page_size=PAGE
        )
        pab = self.make_pab(big_pat)
        pages_per_entry = pab.pages_per_entry
        for block in range(6):
            pab.check_store(block * pages_per_entry * PAGE)
        assert pab.occupancy == 4
        assert pab.stats.get("evictions") == 2

    def test_demap_invalidates_covering_entry(self, pat):
        pab = self.make_pab(pat)
        pab.check_store(0)
        assert pab.on_tlb_demap(0) is True
        assert pab.on_tlb_demap(0) is False
        assert pab.occupancy == 0

    def test_pat_update_invalidation_and_full_invalidate(self, pat):
        pab = self.make_pab(pat)
        pab.check_store(0)
        assert pab.on_pat_update(1) is True
        pab.check_store(0)
        assert pab.invalidate_all() == 1

    def test_stale_entry_reflects_old_permissions_until_invalidated(self, pat):
        """The PAB is a cache: system software must invalidate it on PAT updates."""
        pab = self.make_pab(pat)
        assert pab.check_store(9 * PAGE).allowed
        pat.mark_reliable_page(9)
        assert pab.check_store(9 * PAGE).allowed          # stale
        pab.on_pat_update(9)
        assert not pab.check_store(9 * PAGE).allowed      # refreshed

    def test_page_size_mismatch_rejected(self, pat):
        with pytest.raises(ProtectionError):
            ProtectionAssistanceBuffer(
                config=PabConfig(page_bytes=4096), pat=pat, core_id=0
            )


class TestViolationLog:
    def test_counts_by_kind(self):
        log = ViolationLog()
        log.record(ProtectionViolation(ViolationKind.PAB_BLOCKED, 10, 0, 1, 0x100))
        log.record(ProtectionViolation(ViolationKind.PAB_BLOCKED, 20, 1, 2, 0x200))
        log.record(ProtectionViolation(ViolationKind.SILENT_CORRUPTION, 30, 2, 3, 0x300))
        assert len(log) == 3
        assert log.count(ViolationKind.PAB_BLOCKED) == 2
        assert log.silent_corruptions == 1
        assert len(list(log.of_kind(ViolationKind.PAB_BLOCKED))) == 2
