"""End-to-end integration tests across the whole stack.

These exercise the public API the way the examples and benchmarks do, on a
scaled-down 16-core machine, and check the qualitative results the paper
leads with: mixed-mode operation speeds up performance applications without
sacrificing the protection of reliable ones.
"""

from __future__ import annotations

import pytest

from repro import (
    FaultRates,
    MixedModeMulticore,
    ReliabilityMode,
    policy_by_name,
)
from repro.config.presets import evaluation_system_config
from repro.core.machine import VmSpec
from repro.faults.campaign import FaultInjectionCampaign
from repro.sim.simulator import SimulationOptions


CONFIG = evaluation_system_config(capacity_scale=16, timeslice_cycles=6_000)
RUN = dict(total_cycles=24_000, warmup_cycles=6_000)


def consolidated(policy, seed=0, performance_vcpus=None):
    return MixedModeMulticore.consolidated_server(
        reliable_workload="oltp",
        performance_workload="apache",
        policy=policy,
        reliable_vcpus=4,
        performance_vcpus=performance_vcpus,
        config=CONFIG,
        seed=seed,
        phase_scale=0.005,
        footprint_scale=1 / 16,
    )


class TestConsolidatedServer:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            policy: consolidated(policy).run(**RUN)
            for policy in ("dmr-base", "mmm-ipc", "mmm-tp")
        }

    def test_headline_claim_mixed_mode_speeds_up_the_performance_vm(self, results):
        base = results["dmr-base"].vm("performance")
        ipc = results["mmm-ipc"].vm("performance")
        tp = results["mmm-tp"].vm("performance")
        cycles = results["dmr-base"].total_cycles
        # MMM-IPC improves per-thread IPC; MMM-TP improves throughput further.
        assert ipc.average_user_ipc(cycles) > base.average_user_ipc(cycles)
        assert tp.throughput(cycles) > ipc.throughput(cycles) > base.throughput(cycles)

    def test_overall_system_throughput_improves(self, results):
        assert (
            results["mmm-tp"].overall_throughput()
            > results["dmr-base"].overall_throughput()
        )

    def test_reliable_vm_keeps_most_of_its_performance(self, results):
        cycles = results["dmr-base"].total_cycles
        base = results["dmr-base"].vm("reliable").average_user_ipc(cycles)
        tp = results["mmm-tp"].vm("reliable").average_user_ipc(cycles)
        assert tp > 0.6 * base

    def test_mmm_tp_exposes_more_performance_vcpus(self, results):
        assert (
            results["mmm-tp"].vm("performance").num_vcpus
            > results["dmr-base"].vm("performance").num_vcpus
        )

    def test_no_silent_corruption_anywhere(self, results):
        for result in results.values():
            assert result.silent_corruptions() == 0


class TestFaultTolerantMixedMode:
    def test_faulty_performance_vm_cannot_corrupt_reliable_state(self):
        system = MixedModeMulticore.consolidated_server(
            reliable_workload="oltp",
            performance_workload="apache",
            policy="mmm-tp",
            reliable_vcpus=4,
            config=CONFIG,
            phase_scale=0.005,
            footprint_scale=1 / 16,
            fault_rates=FaultRates(store_address=0.05, privileged_register=0.2),
            seed=5,
        )
        result = system.run(**RUN)
        injector = system.machine.fault_injector
        assert injector is not None and injector.injected_fault_count > 0
        assert result.violation_counts.get("PAB_BLOCKED", 0) > 0
        assert result.silent_corruptions() == 0

    def test_campaign_shows_mmm_matches_dmr_coverage(self):
        campaign = FaultInjectionCampaign(config=CONFIG, seed=3)
        reports = {r.configuration: r for r in campaign.run(trials_per_site=8)}
        assert reports["mmm"].coverage == reports["always-dmr"].coverage == 1.0
        assert reports["naive-mode-switch"].coverage < 1.0


class TestSingleOsDesktop:
    def test_single_os_mixed_mode_switches_on_syscalls(self):
        system = MixedModeMulticore.single_os_desktop(
            reliable_workload="oltp",
            performance_workload="apache",
            vcpus_per_application=2,
            config=CONFIG,
            phase_scale=0.004,
            footprint_scale=1 / 16,
        )
        result = system.run(total_cycles=24_000, warmup_cycles=4_000)
        performance = result.vm("performance-app")
        assert sum(v.mode_switches for v in performance.vcpus) > 0
        assert performance.user_instructions > 0
        assert result.vm("reliable-app").user_instructions > 0


class TestCustomMachines:
    def test_three_vm_machine_with_explicit_specs(self):
        specs = [
            VmSpec("gold", "oltp", 2, ReliabilityMode.RELIABLE, phase_scale=0.005,
                   footprint_scale=1 / 16),
            VmSpec("silver", "pgbench", 2, ReliabilityMode.RELIABLE, phase_scale=0.005,
                   footprint_scale=1 / 16),
            VmSpec("economy", "apache", 4, ReliabilityMode.PERFORMANCE, phase_scale=0.005,
                   footprint_scale=1 / 16),
        ]
        system = MixedModeMulticore(vm_specs=specs, policy=policy_by_name("mmm-tp"), config=CONFIG)
        result = system.run(total_cycles=18_000, warmup_cycles=6_000)
        assert {vm.name for vm in result.vm_results} == {"gold", "silver", "economy"}
        assert all(vm.user_instructions > 0 for vm in result.vm_results)

    def test_explicit_simulation_options(self):
        system = consolidated("mmm-tp", seed=2)
        options = SimulationOptions(
            total_cycles=8_000, warmup_cycles=2_000, quantum_cycles=3_000,
            transition_cost_scale=0.002,
        )
        result = system.simulator(options).run()
        assert result.total_cycles == 8_000
