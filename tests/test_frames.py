"""Tests for the schema-driven results layer (:mod:`repro.sim.frames`).

Five contracts:

* **assembly** -- the generic fold groups samples per key tuple and applies
  each metric column's aggregation rule (``mean_ci``/``mean``/``sum``/
  ``last``/``derive``), merging partial samples;
* **serialization** -- ``to_json`` -> ``from_json`` round trips
  byte-identically, and ``to_csv`` matches a golden rendering;
* **schema/grid consistency** -- every registered spec declares a
  ``MetricSchema`` whose key axes are grid axes;
* **parity** -- the legacy ``run_*`` wrappers (dataclass views) agree
  numerically with the spec's frame, family by family;
* **diffing** -- identical runs diff clean, perturbed metrics are flagged,
  and the ``repro diff`` CLI exits non-zero on drift.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.common.stats import ConfidenceInterval
from repro.errors import ExperimentError
from repro.sim.experiments import (
    ExperimentSettings,
    collect_frames,
    run_dmr_overhead_experiment,
    run_degradation_experiment,
    run_fault_coverage_experiment,
    run_mixed_mode_experiment,
    run_pab_latency_study,
    run_switch_frequency_experiment,
    run_switch_overhead_experiment,
    run_window_ablation,
)
from repro.sim.frames import (
    FRAME_SCHEMA_VERSION,
    FrameView,
    MetricColumn,
    MetricSchema,
    ResultFrame,
    diff_documents,
    diff_frames,
    document_frames,
    frames_document,
    frames_to_csv,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.specs import EXPERIMENTS

QUICK = ExperimentSettings.quick().with_workloads(("apache",))


def unit_frame() -> ResultFrame:
    schema = MetricSchema(
        keys=("workload", "config"),
        metrics=(
            MetricColumn("ipc", unit="instr/cycle"),
            MetricColumn("cycles", dtype="int", aggregate="sum"),
            MetricColumn("note", dtype="str", aggregate="last"),
        ),
    )
    samples = [
        (("apache", "a"), {"ipc": 1.0, "cycles": 10, "note": "x"}),
        (("apache", "a"), {"ipc": 3.0, "cycles": 5, "note": "y"}),
        (("apache", "b"), {"ipc": 2.0, "cycles": 7, "note": "z"}),
    ]
    return ResultFrame.assemble(schema, samples, name="unit", title="unit frame")


class TestAssembly:
    def test_aggregation_rules(self):
        frame = unit_frame()
        cell = frame.value("ipc", workload="apache", config="a")
        assert isinstance(cell, ConfidenceInterval)
        assert cell.mean == 2.0 and cell.count == 2
        assert frame.value("cycles", workload="apache", config="a") == 15
        assert frame.value("note", workload="apache", config="a") == "y"  # last
        single = frame.value("ipc", workload="apache", config="b")
        assert single.count == 1 and single.half_width == 0.0

    def test_row_order_is_first_seen_sample_order(self):
        frame = unit_frame()
        assert [frame.key_of(row) for row in frame.rows] == [
            ("apache", "a"),
            ("apache", "b"),
        ]
        assert frame.axis_values("config") == ("a", "b")

    def test_partial_samples_merge_and_derive(self):
        schema = MetricSchema(
            keys=("w",),
            metrics=(
                MetricColumn("left", aggregate="last"),
                MetricColumn("right", aggregate="last"),
                MetricColumn(
                    "total",
                    aggregate="derive",
                    derive=lambda row: row["left"] + row["right"],
                ),
            ),
        )
        frame = ResultFrame.assemble(
            schema,
            [(("x",), {"left": 2.0}), (("x",), {"right": 3.0})],
            name="merge",
        )
        (row,) = frame.rows
        assert row["total"] == 5.0

    def test_key_arity_mismatch_is_rejected(self):
        schema = MetricSchema(keys=("a", "b"), metrics=(MetricColumn("m"),))
        with pytest.raises(ExperimentError, match="does not match schema keys"):
            ResultFrame.assemble(schema, [(("only-one",), {"m": 1.0})], name="bad")

    def test_value_rejects_unknown_metric_with_experiment_error(self):
        with pytest.raises(ExperimentError, match="no metric column"):
            unit_frame().value("ipcs", workload="apache", config="a")

    def test_schema_validation(self):
        with pytest.raises(ExperimentError, match="both key and metric"):
            MetricSchema(keys=("m",), metrics=(MetricColumn("m"),))
        with pytest.raises(ExperimentError, match="unknown aggregate"):
            MetricColumn("m", aggregate="median")
        with pytest.raises(ExperimentError, match="unknown metrics"):
            MetricSchema(
                keys=("k",),
                metrics=(MetricColumn("m"),),
                views=(FrameView(title="t", metrics=("nope",)),),
            )


class TestPivotRendering:
    def test_missing_baseline_is_announced_not_silently_raw(self):
        schema = MetricSchema(
            keys=("w", "c"),
            metrics=(MetricColumn("m"),),
            views=(
                FrameView(
                    title="normalised view", metrics=("m",), pivot="c",
                    normalize_to="base",
                ),
            ),
        )
        samples = [(("x", "base"), {"m": 2.0}), (("x", "other"), {"m": 4.0})]
        frame = ResultFrame.assemble(schema, samples, name="p")
        assert "2.000" in frame.to_table()  # 4.0 / 2.0 baseline
        assert "NOT normalised" not in frame.to_table()
        # Without the baseline pivot value, raw numbers must not pose as
        # normalised ratios: the title says so.
        restricted = ResultFrame.assemble(
            schema, [(("x", "other"), {"m": 4.0})], name="p"
        )
        rendered = restricted.to_table()
        assert "NOT normalised" in rendered and "base" in rendered
        assert "x *" in rendered  # the raw row itself is marked

    def test_missing_metric_renders_dash_not_zero(self):
        schema = MetricSchema(
            keys=("w", "c"),
            metrics=(MetricColumn("m", aggregate="last"),),
            views=(FrameView(title="t", metrics=("m",), pivot="c"),),
        )
        frame = ResultFrame.assemble(
            schema, [(("x", "a"), {"m": 1.5}), (("x", "b"), {})], name="p"
        )
        lines = frame.to_table().splitlines()
        assert lines[-1].split()[-1] == "-"


class TestSerialization:
    def test_json_round_trip_is_byte_identical(self):
        frame = unit_frame()
        document = frame.to_json()
        rebuilt = ResultFrame.from_json(json.loads(json.dumps(document)))
        assert json.dumps(document, sort_keys=True) == json.dumps(
            rebuilt.to_json(), sort_keys=True
        )
        # And the round-tripped frame is queryable like the original.
        assert rebuilt.value("cycles", workload="apache", config="a") == 15

    def test_simulated_frame_round_trips(self, tmp_path):
        frame = EXPERIMENTS["figure5"].run(
            QUICK, runner=ExperimentRunner(jobs=1, cache_dir=tmp_path)
        )
        document = json.loads(json.dumps(frame.to_json(), sort_keys=True))
        rebuilt = ResultFrame.from_json(document)
        assert json.dumps(frame.to_json(), sort_keys=True) == json.dumps(
            rebuilt.to_json(), sort_keys=True
        )

    def test_unsupported_version_is_rejected(self):
        payload = unit_frame().to_json()
        payload["frame_version"] = FRAME_SCHEMA_VERSION + 1
        with pytest.raises(ExperimentError, match="unsupported frame version"):
            ResultFrame.from_json(payload)

    def test_csv_golden(self):
        assert unit_frame().to_csv() == (
            "workload,config,ipc_mean,ipc_ci95,ipc_n,cycles,note\n"
            "apache,a,2.0,12.706,2,15,y\n"
            "apache,b,2.0,0.0,1,7,z\n"
        )

    def test_tidy_csv_is_uniform_across_frames(self):
        text = frames_to_csv({"unit": unit_frame()})
        lines = text.splitlines()
        assert lines[0] == "experiment,key,metric,unit,aggregate,value,ci95,n"
        assert "unit,workload=apache;config=a,ipc,instr/cycle,mean_ci,2.0,12.706,2" in lines
        assert "unit,workload=apache;config=a,cycles,,sum,15,," in lines


class TestSchemaGridConsistency:
    def test_every_registered_spec_declares_a_schema(self):
        for name, spec in EXPERIMENTS.items():
            assert spec.schema is not None, name

    def test_schema_keys_are_grid_axes(self):
        for name, spec in EXPERIMENTS.items():
            request = spec.request(QUICK)
            schema = spec.metric_schema(request)
            grid_names = spec.grid(request).names()
            for key in schema.keys:
                assert key in grid_names, (name, key)
            # Seeds are aggregated over, never a frame axis.
            assert "seed" not in schema.keys, name

    def test_faults_sweep_gains_the_rate_axis(self):
        spec = EXPERIMENTS["faults"]
        request = spec.request(QUICK, sweep_rates=(0.5, 1.0), trials=2)
        schema = spec.metric_schema(request)
        assert schema.keys == ("rate", "configuration")
        assert "rate" in spec.grid(request).names()


class TestSpecVsLegacyWrapperParity:
    """The wrappers' dataclass views agree numerically with the frames.

    Spec and wrapper runs share one on-disk cache, so each family's cells
    simulate exactly once."""

    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("parity-cache")

    def engine(self, cache_dir) -> ExperimentRunner:
        return ExperimentRunner(jobs=1, cache_dir=cache_dir)

    def test_figure5(self, cache_dir):
        frame = EXPERIMENTS["figure5"].run(QUICK, runner=self.engine(cache_dir))
        legacy = run_dmr_overhead_experiment(QUICK, runner=self.engine(cache_dir))
        for row in legacy.rows:
            for configuration in row.per_thread_ipc:
                assert row.per_thread_ipc[configuration] == frame.value(
                    "user_ipc", workload=row.workload, configuration=configuration
                )
                assert row.throughput[configuration] == frame.value(
                    "throughput", workload=row.workload, configuration=configuration
                )

    def test_figure6(self, cache_dir):
        frame = EXPERIMENTS["figure6"].run(QUICK, runner=self.engine(cache_dir))
        legacy = run_mixed_mode_experiment(QUICK, runner=self.engine(cache_dir))
        for row in legacy.rows:
            for configuration in row.overall_throughput:
                assert row.overall_throughput[configuration] == frame.value(
                    "overall_throughput",
                    workload=row.workload,
                    configuration=configuration,
                )
                assert row.reliable_ipc[configuration] == frame.value(
                    "reliable_ipc", workload=row.workload, configuration=configuration
                )

    def test_pab(self, cache_dir):
        frame = EXPERIMENTS["pab"].run(QUICK, runner=self.engine(cache_dir))
        legacy = run_pab_latency_study(QUICK, runner=self.engine(cache_dir))
        (row,) = legacy.rows
        assert row.parallel_ipc == frame.value(
            "performance_ipc", workload=row.workload, lookup="parallel"
        )
        assert row.serial_ipc == frame.value(
            "performance_ipc", workload=row.workload, lookup="serial"
        )
        assert row.reliable_serial_ipc == frame.value(
            "reliable_ipc", workload=row.workload, lookup="serial"
        )

    def test_tables_and_derived_overhead(self, cache_dir):
        table1 = run_switch_overhead_experiment(
            workloads=("apache",), transitions_to_measure=2, warmup_cycles=2_000,
            runner=self.engine(cache_dir),
        )
        table2 = run_switch_frequency_experiment(
            workloads=("apache",), phases_to_measure=1, measurement_phase_scale=0.02,
            runner=self.engine(cache_dir),
        )
        settings = ExperimentSettings().with_workloads(("apache",)).with_seeds((0,))
        frame1 = EXPERIMENTS["table1"].run(
            settings, runner=self.engine(cache_dir), explicit_workloads=True,
            transitions_to_measure=2, warmup_cycles=2_000,
        )
        frame2 = EXPERIMENTS["table2"].run(
            settings, runner=self.engine(cache_dir), explicit_workloads=True,
            phases_to_measure=1, measurement_phase_scale=0.02,
        )
        assert table1.row("apache").enter_dmr_cycles == frame1.value(
            "enter_dmr_cycles", workload="apache"
        )
        assert table2.row("apache").user_cycles == frame2.value(
            "user_cycles", workload="apache"
        )
        # single-os: the derive column equals the dataclass property.
        frame = EXPERIMENTS["single-os"].run(
            settings, runner=self.engine(cache_dir), explicit_workloads=True,
            transitions_to_measure=2, warmup_cycles=2_000,
            phases_to_measure=1, measurement_phase_scale=0.02,
        )
        (row,) = frame.rows
        switch = table1.row("apache").enter_dmr_cycles + table1.row("apache").leave_dmr_cycles
        round_trip = table2.row("apache").round_trip_cycles
        assert row["switch_cycles"] == switch
        assert row["overhead_percent"] == pytest.approx(
            switch / (switch + round_trip) * 100.0
        )

    def test_ablation(self, cache_dir):
        frame = EXPERIMENTS["ablation"].run(QUICK, runner=self.engine(cache_dir))
        legacy = run_window_ablation(QUICK, runner=self.engine(cache_dir))
        for row in legacy.rows:
            for variant, ipc in row.ipc_by_variant.items():
                assert ipc == frame.value(
                    "user_ipc", workload=row.workload, variant=variant
                )

    def test_degradation(self, cache_dir):
        frame = EXPERIMENTS["degradation"].run(QUICK, runner=self.engine(cache_dir))
        legacy = run_degradation_experiment(QUICK, runner=self.engine(cache_dir))
        for row in legacy.rows:
            for failed, interval in row.throughput.items():
                assert interval == frame.value(
                    "throughput", workload=row.workload, failed_cores=failed
                )

    def test_faults(self, cache_dir):
        settings = ExperimentSettings().with_seeds((0, 1))
        frame = EXPERIMENTS["faults"].run(
            settings, runner=self.engine(cache_dir), trials=4
        )
        legacy = run_fault_coverage_experiment(
            trials_per_site=4, seeds=(0, 1), runner=self.engine(cache_dir)
        )
        for row in legacy.rows:
            assert frame.value("trials", configuration=row.configuration) == (
                row.report.total
            )
            cell = frame.value("coverage", configuration=row.configuration)
            assert cell == row.coverage_interval
            # Equal per-seed shares: the across-seed mean equals the merged
            # ratio the legacy row reports.
            assert cell.mean == pytest.approx(row.coverage)


class TestDiff:
    def test_identical_frames_diff_clean(self):
        assert diff_frames(unit_frame(), unit_frame()) == []

    def test_value_drift_is_flagged_and_tolerance_respected(self):
        baseline, current = unit_frame(), unit_frame()
        cell = current.rows[0]["ipc"]
        current.rows[0]["ipc"] = ConfidenceInterval(
            mean=cell.mean * 1.001, half_width=cell.half_width, count=cell.count
        )
        drifts = diff_frames(baseline, current)
        assert len(drifts) == 1
        assert drifts[0].kind == "value-drift" and "ipc" in drifts[0].detail
        # A 0.1% drift passes under a 1% relative tolerance.
        assert diff_frames(baseline, current, rel_tol=0.01) == []

    def test_missing_and_extra_rows_and_frames(self):
        baseline, current = unit_frame(), unit_frame()
        current.rows.pop()
        kinds = {d.kind for d in diff_frames(baseline, current)}
        assert kinds == {"missing-row"}
        documents = diff_documents({"a": unit_frame()}, {"b": unit_frame()})
        assert {d.kind for d in documents} == {"missing-frame", "extra-frame"}

    def test_fidelity_round_trip_and_mismatch(self):
        frame = unit_frame()
        frame.fidelity = "fast"
        restored = ResultFrame.from_json(json.loads(json.dumps(frame.to_json())))
        assert restored.fidelity == "fast"
        # Frames without a tier serialize without the key, byte-stable with
        # documents written before the field existed.
        legacy = unit_frame()
        assert "fidelity" not in legacy.to_json()
        other = unit_frame()
        other.fidelity = "accurate"
        drifts = diff_frames(frame, other)
        assert [d.kind for d in drifts] == ["fidelity-mismatch"]
        assert "fast" in drifts[0].detail
        # A legacy (tierless) baseline still value-compares as before.
        assert diff_frames(legacy, frame) == []

    def test_document_round_trip_diffs_clean(self, tmp_path):
        frames = collect_frames(
            QUICK, ["figure5", "pab"], runner=ExperimentRunner(jobs=1, cache_dir=tmp_path)
        )
        document = json.loads(
            json.dumps(frames_document(frames, settings=None), sort_keys=True)
        )
        assert diff_documents(document_frames(document), frames) == []


class TestCliExportAndDiff:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return tmp_path

    BASELINE_ARGV = [
        "run-all", "--quick", "--workloads", "apache",
        "--skip-switching", "--skip-ablation", "--skip-faults", "--json",
    ]

    def test_diff_passes_on_identical_run_and_flags_drift(self, capsys, tmp_path):
        assert main(self.BASELINE_ARGV) == 0
        document = json.loads(capsys.readouterr().out)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")

        # Identical re-run (warm cache): diff is clean and exits 0.
        assert main(["diff", str(baseline)]) == 0
        assert "results match" in capsys.readouterr().out

        # Injected metric drift: non-zero exit naming the drifted cell.
        drifted = document["frames"]["figure5"]["rows"][0]
        drifted["user_ipc"]["mean"] *= 1.5
        baseline.write_text(json.dumps(document), encoding="utf-8")
        assert main(["diff", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "value-drift" in out and "user_ipc" in out

    def test_diff_rejects_fidelity_mismatch_with_clear_message(self, capsys, tmp_path):
        # A fast-tier baseline diffed under accurate settings is a usage
        # error (exit 2), not drift: the tiers legitimately disagree, and
        # re-running the other tier could never match.
        assert main(self.BASELINE_ARGV + ["--fidelity", "fast"]) == 0
        document = json.loads(capsys.readouterr().out)
        baseline = tmp_path / "fast-baseline.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        # A plain diff inherits the baseline's recorded tier and passes.
        assert main(["diff", str(baseline)]) == 0
        capsys.readouterr()
        # Forcing the other tier is refused before paying for the re-run.
        assert main(["diff", str(baseline), "--fidelity", "accurate"]) == 2
        err = capsys.readouterr().err
        assert "fidelity tier mismatch" in err
        assert "'fast'" in err and "--fidelity fast" in err
        # A baseline with no recorded settings (legacy document) defaults
        # to the accurate tier, so its fast frames are a mismatch too.
        document.pop("settings", None)
        baseline.write_text(json.dumps(document), encoding="utf-8")
        assert main(["diff", str(baseline)]) == 2
        assert "fidelity tier mismatch" in capsys.readouterr().err

    def test_diff_rejects_garbage(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"format\": \"something-else\"}", encoding="utf-8")
        assert main(["diff", str(bogus)]) == 2
        assert main(["diff", str(tmp_path / "missing.json")]) == 2
        # Structurally malformed frames are bad input (2), not drift (1).
        malformed = tmp_path / "malformed.json"
        malformed.write_text(
            json.dumps(
                {"format": "repro-results", "frames": {"figure5": {"frame_version": 1}}}
            ),
            encoding="utf-8",
        )
        assert main(["diff", str(malformed)]) == 2

    def test_export_rejects_unknown_experiments_cleanly(self, capsys):
        assert main(["export", "--experiments", "nope"]) == 2

    def test_diff_fails_when_a_baseline_experiment_vanished(self, capsys, tmp_path):
        # A baseline frame whose spec no longer exists is drift (the gate
        # must not silently pass a vanished experiment), not a skip.
        document = frames_document({"retired-experiment": unit_frame()}, settings=None)
        baseline = tmp_path / "vanished.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        assert main(["diff", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "missing-frame" in out and "retired-experiment" in out

    def test_diff_rejects_malformed_settings(self, capsys, tmp_path):
        document = frames_document({}, settings=None)
        document["settings"] = ["not", "an", "object"]
        baseline = tmp_path / "badsettings.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        assert main(["diff", str(baseline)]) == 2
        assert "malformed settings" in capsys.readouterr().err

    def test_export_csv_parses_and_matches_frames(self, capsys):
        import csv as csv_module

        assert main(
            ["export", "--quick", "--workloads", "apache", "--format", "csv",
             "--experiments", "figure5", "pab"]
        ) == 0
        rows = list(csv_module.reader(capsys.readouterr().out.splitlines()))
        assert rows[0] == [
            "experiment", "key", "metric", "unit", "aggregate", "value", "ci95", "n",
        ]
        experiments = {row[0] for row in rows[1:]}
        assert experiments == {"figure5", "pab"}

    def test_export_single_experiment_is_wide_csv(self, capsys):
        assert main(
            ["export", "--quick", "--workloads", "apache", "--format", "csv",
             "--experiments", "figure5"]
        ) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert header.startswith("workload,configuration,user_ipc_mean")

    def test_export_json_is_a_valid_baseline(self, capsys, tmp_path):
        assert main(
            ["export", "--quick", "--workloads", "apache", "--format", "json",
             "--experiments", "figure5"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        frames = document_frames(document)
        assert set(frames) == {"figure5"}
        baseline = tmp_path / "export.json"
        baseline.write_text(json.dumps(document), encoding="utf-8")
        assert main(["diff", str(baseline)]) == 0