"""Tests for the analytic core timing model."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.cpu.timing import CoreAssignment, CoreTimingModel, ExecutionMode, StopReason
from repro.errors import SimulationError
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable
from repro.protection.violations import ViolationKind, ViolationLog
from repro.tlb.page_table import PageFlags, PageTable
from repro.tlb.tlb import TranslationLookasideBuffer
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


def build_stack(config, mark_reliable=False):
    """Build hierarchy, TLBs, PABs, and a timing model on ``config``."""
    layout = AddressSpaceLayout(vm_memory_bytes=1024 * 1024, num_vms=1)
    page_table = PageTable(page_size=config.pab.page_bytes)
    page_table.map_region(
        layout.vm_region(0), PageFlags.USER_READ | PageFlags.USER_WRITE, domain=0
    )
    pat = ProtectionAssistanceTable(
        physical_memory_bytes=layout.total_bytes, page_size=config.pab.page_bytes
    )
    if mark_reliable:
        pat.mark_reliable_region(layout.user_region(0))
    hierarchy = MemoryHierarchy(config)
    pabs = [
        ProtectionAssistanceBuffer(config.pab, pat, core_id, hierarchy)
        for core_id in range(config.num_cores)
    ]
    tlbs = [
        TranslationLookasideBuffer(config.tlb, page_table, pabs[core].on_tlb_demap)
        for core in range(config.num_cores)
    ]
    log = ViolationLog()
    model = CoreTimingModel(
        config=config, hierarchy=hierarchy, tlbs=tlbs, pabs=pabs, violation_log=log
    )
    return layout, model, log


def make_workload(layout, name="oltp", seed=5, phase_scale=0.003):
    return SyntheticWorkload(
        profile=get_profile(name), layout=layout, vm_id=0, vcpu_index=0,
        num_vcpus=2, seed=seed, phase_scale=phase_scale,
    )


def run(model, workload, mode, budget=3000, **kwargs):
    if mode is ExecutionMode.DMR:
        from repro.config.system import InterconnectConfig
        from repro.dmr.fingerprint_network import FingerprintNetwork
        from repro.dmr.reunion import ReunionPair

        pair = ReunionPair(0, 1, model.config.reunion, FingerprintNetwork(model.config.interconnect))
        assignment = CoreAssignment(mode=mode, primary_core=0, secondary_core=1, reunion_pair=pair)
    else:
        assignment = CoreAssignment(mode=mode, primary_core=0)
    return model.run_quantum(workload, assignment, cycle_budget=budget, **kwargs)


class TestBasicExecution:
    def test_budget_is_respected(self, small_config):
        layout, model, _ = build_stack(small_config)
        result = run(model, make_workload(layout), ExecutionMode.BASELINE, budget=2000)
        assert result.stop_reason is StopReason.BUDGET_EXHAUSTED
        assert 2000 <= result.cycles <= 2600  # may overshoot by one instruction's stalls
        assert result.instructions > 0
        assert result.user_instructions + result.os_instructions == result.instructions

    def test_instruction_limit(self, small_config):
        layout, model, _ = build_stack(small_config)
        result = run(
            model, make_workload(layout), ExecutionMode.BASELINE,
            budget=10**6, max_instructions=50,
        )
        assert result.stop_reason is StopReason.INSTRUCTION_LIMIT
        assert result.instructions == 50

    def test_deterministic_given_seed(self, small_config):
        layout, model_a, _ = build_stack(small_config)
        _, model_b, _ = build_stack(small_config)
        a = run(model_a, make_workload(layout, seed=3), ExecutionMode.BASELINE)
        b = run(model_b, make_workload(layout, seed=3), ExecutionMode.BASELINE)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_invalid_budget_rejected(self, small_config):
        layout, model, _ = build_stack(small_config)
        with pytest.raises(SimulationError):
            run(model, make_workload(layout), ExecutionMode.BASELINE, budget=0)

    def test_ipc_properties(self, small_config):
        layout, model, _ = build_stack(small_config)
        result = run(model, make_workload(layout), ExecutionMode.BASELINE)
        assert 0 < result.user_ipc <= result.total_ipc <= small_config.core.issue_width


class TestDmrExecution:
    def test_dmr_is_slower_than_baseline(self, small_config):
        layout, model, _ = build_stack(small_config)
        baseline = run(model, make_workload(layout, seed=7), ExecutionMode.BASELINE,
                       budget=10**8, max_instructions=2000)
        _, model2, _ = build_stack(small_config)
        dmr = run(model2, make_workload(layout, seed=7), ExecutionMode.DMR,
                  budget=10**8, max_instructions=2000)
        assert baseline.stop_reason is StopReason.INSTRUCTION_LIMIT
        assert dmr.stop_reason is StopReason.INSTRUCTION_LIMIT
        assert dmr.cycles > baseline.cycles

    def test_dmr_requires_two_cores(self):
        with pytest.raises(SimulationError):
            CoreAssignment(mode=ExecutionMode.DMR, primary_core=0)
        with pytest.raises(SimulationError):
            CoreAssignment(mode=ExecutionMode.DMR, primary_core=0, secondary_core=0)

    def test_non_dmr_must_not_name_secondary(self):
        with pytest.raises(SimulationError):
            CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=0, secondary_core=1)

    def test_dmr_populates_mute_cache_incoherently(self, small_config):
        layout, model, _ = build_stack(small_config)
        run(model, make_workload(layout), ExecutionMode.DMR, budget=4000)
        mute_lines = model.hierarchy.l2_for(1).resident_lines()
        assert mute_lines
        assert any(not line.coherent for line in mute_lines)

    def test_contention_slows_offcore_accesses(self, small_config):
        layout, model, _ = build_stack(small_config)
        few = run(model, make_workload(layout, seed=9), ExecutionMode.BASELINE,
                  budget=10**6, max_instructions=1500, active_cores=1)
        _, model2, _ = build_stack(small_config)
        many = run(model2, make_workload(layout, seed=9), ExecutionMode.BASELINE,
                   budget=10**6, max_instructions=1500,
                   active_cores=small_config.num_cores)
        assert many.cycles >= few.cycles


class TestStopConditions:
    def test_stop_on_os_entry_and_exit(self, small_config):
        layout, model, _ = build_stack(small_config)
        workload = make_workload(layout, name="apache", phase_scale=0.001)
        entry = run(model, workload, ExecutionMode.BASELINE, budget=10**7,
                    stop_on_os_entry=True)
        assert entry.stop_reason is StopReason.OS_ENTRY
        assert workload.in_os_phase
        exit_ = run(model, workload, ExecutionMode.BASELINE, budget=10**7,
                    stop_on_os_exit=True)
        assert exit_.stop_reason is StopReason.OS_EXIT
        assert not workload.in_os_phase


class TestPabIntegration:
    def test_performance_mode_checks_stores(self, small_config):
        layout, model, _ = build_stack(small_config)
        result = run(model, make_workload(layout), ExecutionMode.PERFORMANCE,
                     budget=10**8, max_instructions=1000)
        assert result.stats.get("pab_checks") > 0
        assert result.stats.get("pab_violations") == 0

    def test_baseline_mode_skips_the_pab(self, small_config):
        layout, model, _ = build_stack(small_config)
        result = run(model, make_workload(layout), ExecutionMode.BASELINE,
                     budget=10**8, max_instructions=1000)
        assert result.stats.get("pab_checks") == 0

    def test_stores_to_reliable_pages_are_blocked_and_logged(self, small_config):
        layout, model, log = build_stack(small_config, mark_reliable=True)
        result = run(model, make_workload(layout), ExecutionMode.PERFORMANCE,
                     budget=10**8, max_instructions=1000)
        assert result.stats.get("pab_violations") > 0
        assert log.count(ViolationKind.PAB_BLOCKED) == result.stats.get("pab_violations")
        assert any(v.kind is ViolationKind.PAB_BLOCKED for v in result.violations)
