"""Tests for the MOSI coherence directory."""

from __future__ import annotations

from repro.mem.directory import Directory


def test_shared_fetch_records_sharers():
    directory = Directory()
    directory.record_shared_fetch(0x100, core_id=0)
    directory.record_shared_fetch(0x100, core_id=1)
    assert directory.owner_of(0x100) is None
    assert directory.sharers_of(0x100) == {0, 1}


def test_exclusive_fetch_claims_ownership_and_returns_invalidation_targets():
    directory = Directory()
    directory.record_shared_fetch(0x200, 0)
    directory.record_shared_fetch(0x200, 1)
    targets = directory.record_exclusive_fetch(0x200, 2)
    assert targets == {0, 1}
    assert directory.owner_of(0x200) == 2
    assert directory.sharers_of(0x200) == set()


def test_exclusive_fetch_by_existing_sharer_excludes_itself():
    directory = Directory()
    directory.record_shared_fetch(0x240, 0)
    directory.record_shared_fetch(0x240, 1)
    targets = directory.record_exclusive_fetch(0x240, 0)
    assert targets == {1}


def test_downgrade_moves_owner_to_sharers():
    directory = Directory()
    directory.record_exclusive_fetch(0x300, 3)
    directory.record_downgrade(0x300, 3)
    assert directory.owner_of(0x300) is None
    assert 3 in directory.sharers_of(0x300)


def test_eviction_removes_core():
    directory = Directory()
    directory.record_exclusive_fetch(0x400, 1)
    directory.record_shared_fetch(0x400, 2)
    directory.record_eviction(0x400, 1)
    assert directory.owner_of(0x400) is None
    directory.record_eviction(0x400, 2)
    assert directory.sharers_of(0x400) == set()
    # Evicting an untracked line is harmless.
    directory.record_eviction(0x9999, 5)


def test_line_granularity_uses_line_address():
    directory = Directory(line_bytes=64)
    directory.record_shared_fetch(0x1000, 0)
    assert 0 in directory.entry(0x103F).sharers
    assert directory.peek(0x1040) is None


def test_drop_core_clears_every_reference():
    directory = Directory()
    directory.record_exclusive_fetch(0x500, 0)
    directory.record_shared_fetch(0x540, 0)
    directory.record_shared_fetch(0x540, 1)
    touched = directory.drop_core(0)
    assert touched == 2
    assert directory.owner_of(0x500) is None
    assert directory.sharers_of(0x540) == {1}


def test_holders_and_cached_anywhere():
    directory = Directory()
    entry = directory.entry(0x600)
    assert not entry.cached_anywhere
    directory.record_exclusive_fetch(0x600, 4)
    directory.record_shared_fetch(0x600, 5)
    entry = directory.entry(0x600)
    assert entry.cached_anywhere
    assert entry.holders() == {4, 5}


def test_len_counts_tracked_lines():
    directory = Directory()
    for index in range(5):
        directory.record_shared_fetch(index * 64, 0)
    assert len(directory) == 5
