"""Tests for the interconnect latency/bandwidth model and the DRAM model."""

from __future__ import annotations

from repro.config.system import InterconnectConfig, MemoryConfig
from repro.mem.dram import MainMemory
from repro.mem.interconnect import Interconnect


def make_interconnect(**kwargs):
    return Interconnect(InterconnectConfig(**kwargs), MemoryConfig())


def test_cache_to_cache_costs_more_than_l3_hit():
    interconnect = make_interconnect()
    l3 = interconnect.l3_access_latency(55)
    c2c = interconnect.cache_to_cache_latency(55, 12)
    assert c2c > l3


def test_invalidation_latency():
    interconnect = make_interconnect(hop_latency=10)
    assert interconnect.invalidation_latency(0) == 0
    assert interconnect.invalidation_latency(3) == 20


def test_fingerprint_latency_matches_config():
    assert make_interconnect(fingerprint_latency=10).fingerprint_latency == 10


class TestBandwidthWindow:
    def test_no_contention_below_capacity(self):
        interconnect = make_interconnect()
        interconnect.begin_window(10_000)
        for _ in range(10):
            interconnect.record_offchip_transfer()
        assert interconnect.offchip_contention_factor() == 1.0

    def test_contention_grows_with_oversubscription(self):
        interconnect = make_interconnect()
        interconnect.begin_window(100)
        # Capacity is ~13.3 bytes/cycle * 100 cycles ~ 1.3 KB; push 64 KB.
        for _ in range(1024):
            interconnect.record_offchip_transfer()
        factor = interconnect.offchip_contention_factor()
        assert factor > 1.0
        assert factor <= 4.0  # capped

    def test_window_reset_clears_traffic(self):
        interconnect = make_interconnect()
        interconnect.begin_window(100)
        for _ in range(2048):
            interconnect.record_offchip_transfer()
        interconnect.begin_window(100)
        assert interconnect.window_offchip_bytes == 0
        assert interconnect.offchip_contention_factor() == 1.0

    def test_custom_transfer_size(self):
        interconnect = make_interconnect()
        interconnect.begin_window(1000)
        interconnect.record_offchip_transfer(bytes_moved=128)
        assert interconnect.window_offchip_bytes == 128


class TestMainMemory:
    def test_base_latency(self):
        memory = MainMemory(MemoryConfig(load_to_use_latency=350))
        assert memory.access_latency() == 350

    def test_contention_scales_latency(self):
        memory = MainMemory(MemoryConfig(load_to_use_latency=350))
        assert memory.access_latency(contention_factor=2.0) == 700
        # A factor below one never speeds memory up.
        assert memory.access_latency(contention_factor=0.5) == 350

    def test_average_latency_and_writebacks(self):
        memory = MainMemory(MemoryConfig(load_to_use_latency=100))
        assert memory.average_latency == 0.0
        memory.access_latency()
        memory.access_latency(2.0)
        assert memory.average_latency == 150.0
        assert memory.writeback_latency() == 0
        assert memory.stats.get("writebacks") == 1
