"""Parity guard for the calibrated fast fidelity tier.

Every registered experiment runs under both tiers on a reduced grid:

* simulation specs must stay within the calibrated tolerances below --
  the fast tier is an approximation, and these bounds are its contract;
* measurement and fault specs must be *identical* -- their cells run
  fine-grained stop conditions or fault hooks, which the fast tier
  delegates to the accurate model unchanged;
* every spec's cache keys must differ between tiers, so fast results can
  never be served from (or poison) an accurate cache.

The grid deliberately runs more, shorter timeslices than ``quick()``
(``quick()`` has so few rounds per VM that the fast tier's MIN_ROUNDS
warm-up would keep everything accurate and the parity test would guard
nothing).  The tolerances were calibrated by sweeping this exact grid:
per-cell residuals measured at most 36% (figure6 ``reliable_ipc``, two
seeds), most specs under 15%, and mean residuals well under 10%.
"""

import dataclasses

import pytest

from repro.cpu.fastpath import FastTimingModel
from repro.errors import ExperimentError
from repro.sim.frames import ConfidenceInterval
from repro.sim.runner import ExperimentRunner
from repro.sim.settings import ExperimentSettings
from repro.sim.specs import EXPERIMENTS, experiment_names

#: Upper bound on any single cell's relative deviation from the accurate
#: tier (headroom over the 36% worst case measured on this grid).
PARITY_RTOL = 0.50

#: Upper bound on a frame's *mean* relative deviation: individual cells
#: are phase-noisy, but the tier must not be systematically biased.
MEAN_RTOL = 0.15

#: The parity grid: quick-sized work, but with enough timeslice rounds
#: per VM (~10) that synthesis actually engages past MIN_ROUNDS.
PARITY_SETTINGS = dataclasses.replace(
    ExperimentSettings.quick().with_workloads(("apache", "pmake")).with_seeds((0, 1)),
    total_cycles=24_000,
    warmup_cycles=4_000,
    timeslice_cycles=2_000,
)

SIMULATION_SPECS = [
    name for name in experiment_names() if EXPERIMENTS[name].family == "simulation"
]
DELEGATING_SPECS = [
    name for name in experiment_names() if EXPERIMENTS[name].family != "simulation"
]

_frames = {}


def frames_for(name: str, settings: ExperimentSettings):
    """Both tiers' frames for one spec, computed once per test session."""
    if name not in _frames:
        spec = EXPERIMENTS[name]
        _frames[name] = {
            tier: spec.run(
                runner=ExperimentRunner(jobs=1, use_cache=False),
                settings=settings.with_fidelity(tier),
            )
            for tier in ("accurate", "fast")
        }
    return _frames[name]


def numeric(value):
    if isinstance(value, ConfidenceInterval):
        return value.mean
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def paired_cells(accurate, fast):
    """(metric, accurate value, fast value) for every comparable cell."""
    keys = accurate.schema.keys
    fast_rows = {tuple(row[k] for k in keys): row for row in fast.rows}
    assert len(fast_rows) == len(fast.rows) == len(accurate.rows)
    for row in accurate.rows:
        fast_row = fast_rows[tuple(row[k] for k in keys)]
        for metric in accurate.schema.metric_names():
            yield metric, numeric(row.get(metric)), numeric(fast_row.get(metric))


class TestSimulationParity:
    @pytest.mark.parametrize("name", SIMULATION_SPECS)
    def test_fast_tier_tracks_accurate(self, name):
        frames = frames_for(name, PARITY_SETTINGS)
        accurate, fast = frames["accurate"], frames["fast"]
        assert accurate.fidelity == "accurate"
        assert fast.fidelity == "fast"
        residuals = []
        for metric, acc, fst in paired_cells(accurate, fast):
            if acc is None or abs(acc) < 1e-9:
                continue
            relative = abs(fst - acc) / abs(acc)
            residuals.append(relative)
            assert relative <= PARITY_RTOL, (
                f"{name}: {metric} fast={fst:.5g} vs accurate={acc:.5g} "
                f"({relative:.1%} > {PARITY_RTOL:.0%})"
            )
        assert residuals, f"{name}: no comparable numeric cells"
        mean = sum(residuals) / len(residuals)
        assert mean <= MEAN_RTOL, (
            f"{name}: mean residual {mean:.1%} > {MEAN_RTOL:.0%} -- "
            "the fast tier has drifted systematically"
        )


class TestDelegation:
    @pytest.mark.parametrize("name", DELEGATING_SPECS)
    def test_measurement_and_fault_specs_are_tier_exact(self, name):
        # Fine-grained stop conditions and fault injection delegate to the
        # accurate model, so these specs must not change at all.
        frames = frames_for(name, ExperimentSettings.quick().with_workloads(("apache",)))
        assert frames["accurate"].rows == frames["fast"].rows


class TestCacheKeys:
    @pytest.mark.parametrize("name", experiment_names())
    def test_cache_keys_differ_by_tier(self, name):
        spec = EXPERIMENTS[name]
        keys = {}
        for tier in ("accurate", "fast"):
            request = spec.request(PARITY_SETTINGS.with_fidelity(tier))
            keys[tier] = {job.cache_key() for job in spec.enumerate_jobs(request)}
            assert keys[tier]
        assert not keys["accurate"] & keys["fast"], (
            f"{name}: a cached fast cell could be served as accurate"
        )


class TestTierSelection:
    def test_unknown_tier_is_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSettings(fidelity="turbo")

    def test_fast_tier_actually_synthesizes(self, monkeypatch):
        # The parity numbers above are only meaningful if synthesis really
        # engages on the parity grid.
        import repro.sim.jobs as jobs_mod
        from repro.sim.jobs import ExperimentJob, simulate_cell

        counts = {"synthesized": 0}

        class Counting(FastTimingModel):
            def _synthesize(self, calibration, cycle_budget):
                counts["synthesized"] += 1
                return super()._synthesize(calibration, cycle_budget)

        monkeypatch.setattr(jobs_mod, "FastTimingModel", Counting)
        job = ExperimentJob(
            kind="figure5",
            workload="apache",
            variant="reunion",
            seed=0,
            settings=PARITY_SETTINGS.with_fidelity("fast").cell_settings(),
        )
        simulate_cell(job)
        assert counts["synthesized"] > 0
