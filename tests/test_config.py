"""Tests for the system configuration dataclasses and presets."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config.presets import (
    evaluation_system_config,
    paper_system_config,
    small_system_config,
)
from repro.config.system import (
    CacheConfig,
    ConsistencyModel,
    CoreConfig,
    MemoryConfig,
    PabConfig,
    PabLookupMode,
    ReunionConfig,
    SystemConfig,
    TlbConfig,
    VirtualizationConfig,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_paper_l2_geometry(self):
        l2 = CacheConfig(name="L2", size_bytes=512 * 1024, associativity=4)
        assert l2.num_lines == 8192
        assert l2.num_sets == 2048

    def test_invalid_line_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=1024, associativity=2, line_bytes=48).validate()

    def test_size_not_multiple_of_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="bad", size_bytes=1000, associativity=2).validate()


class TestCoreConfig:
    def test_defaults_match_paper(self):
        core = CoreConfig()
        assert core.pipeline_stages == 8
        assert core.issue_width == 2
        assert core.window_entries == 128
        assert core.lsq_load_entries == 32
        assert core.lsq_store_entries == 32
        assert core.consistency is ConsistencyModel.SEQUENTIAL

    def test_invalid_mispredict_rate(self):
        with pytest.raises(ConfigurationError):
            replace(CoreConfig(), branch_mispredict_rate=1.5).validate()


class TestPabConfig:
    def test_paper_geometry(self):
        pab = PabConfig()
        # 128 entries x 64 bytes of PAT bits map 512 pages each -> 512 MB.
        assert pab.pages_per_entry == 512
        assert pab.mapped_bytes == 512 * 1024 * 1024
        # ~8.2 KB of storage, as the paper states.
        assert 8 * 1024 <= pab.storage_bytes <= 9 * 1024

    def test_entry_count_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PabConfig(entries=100).validate()


def test_memory_bytes_per_cycle():
    memory = MemoryConfig(bandwidth_gb_per_s=40.0, frequency_ghz=3.0)
    assert 13.0 < memory.bytes_per_cycle() < 13.5


def test_virtualization_state_lines():
    virt = VirtualizationConfig(vcpu_state_bytes=2355)
    assert virt.vcpu_state_lines == 37


class TestSystemConfig:
    def test_paper_preset_validates(self):
        config = paper_system_config()
        assert config.num_cores == 16
        assert config.max_dmr_pairs == 8
        assert config.l3.shared
        assert config.l3.exclusive_of_upper
        assert config.l1d.write_through

    def test_small_preset_validates_and_is_small(self):
        config = small_system_config()
        assert config.num_cores == 4
        assert config.l3.size_bytes < paper_system_config().l3.size_bytes

    def test_odd_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(paper_system_config(), num_cores=15).validate()

    def test_mismatched_line_sizes_rejected(self):
        config = paper_system_config()
        bad_l2 = CacheConfig(name="L2", size_bytes=512 * 1024, associativity=4, line_bytes=128)
        with pytest.raises(ConfigurationError):
            replace(config, l2=bad_l2).validate()

    def test_with_pab_lookup_returns_modified_copy(self):
        config = paper_system_config()
        serial = config.with_pab_lookup(PabLookupMode.SERIAL)
        assert serial.pab.lookup_mode is PabLookupMode.SERIAL
        assert config.pab.lookup_mode is PabLookupMode.PARALLEL

    def test_with_window_and_consistency(self):
        config = paper_system_config()
        modified = config.with_window_entries(256).with_consistency(ConsistencyModel.TSO)
        assert modified.core.window_entries == 256
        assert modified.core.consistency is ConsistencyModel.TSO
        assert config.core.window_entries == 128

    def test_with_timeslice(self):
        config = paper_system_config().with_timeslice(1234)
        assert config.virtualization.timeslice_cycles == 1234


class TestEvaluationPreset:
    def test_scale_one_is_the_paper_machine(self):
        assert evaluation_system_config(capacity_scale=1).l2.size_bytes == 512 * 1024

    def test_capacities_shrink_but_latencies_do_not(self):
        paper = paper_system_config()
        scaled = evaluation_system_config(capacity_scale=8)
        assert scaled.l2.size_bytes == paper.l2.size_bytes // 8
        assert scaled.l3.size_bytes == paper.l3.size_bytes // 8
        assert scaled.l3.hit_latency == paper.l3.hit_latency
        assert scaled.memory.load_to_use_latency == paper.memory.load_to_use_latency
        assert scaled.core == paper.core

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            evaluation_system_config(capacity_scale=0)


def test_reunion_and_tlb_validation():
    with pytest.raises(ConfigurationError):
        ReunionConfig(fingerprint_interval=0).validate()
    with pytest.raises(ConfigurationError):
        TlbConfig(entries=0).validate()
