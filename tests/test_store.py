"""Tests for the packed segment store (`repro.sim.store`).

Four legs:

* **framing** -- every record carries a length/CRC header; the segment
  scanner recovers exactly the complete, uncorrupted prefix and stops at
  the first torn frame, whatever byte the truncation lands on;
* **manifest** -- a fresh process adopts the manifest when it matches the
  segments, rescans unvouched tails, and distrusts (fully rescans) any
  segment shorter than its vouched length; concurrent writers never share
  a segment file;
* **crash safety** -- a process-backend run killed mid-append leaves a
  cache the next run can use: the torn tail reads as a miss, `stats`
  never raises, and only the torn cell re-executes;
* **parity** -- the same sweep produces byte-identical result frames
  across {legacy, packed} layouts x {serial, thread, process, distributed}
  backends, cold and warm.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.sim.distributed import CoordinatorServer, DistributedBackend, run_worker
from repro.sim.experiments import figure5_jobs
from repro.sim.jobs import CACHE_SCHEMA_VERSION, ExperimentJob
from repro.sim.runner import ExperimentRunner
from repro.sim.settings import ExperimentSettings
from repro.sim.store import (
    CACHE_LAYOUTS,
    MANIFEST_NAME,
    SEGMENT_DIR_NAME,
    LegacyResultCache,
    ResultCache,
    _scan_segment,
    make_result_cache,
)

QUICK = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))


def quick_job(variant: str = "no-dmr", seed: int = 0) -> ExperimentJob:
    return ExperimentJob(
        kind="figure5", workload="apache", variant=variant, seed=seed,
        settings=QUICK.cell_settings(),
    )


def segment_files(directory: Path, kind: str = "figure5"):
    return sorted((directory / kind / SEGMENT_DIR_NAME).glob("seg-*.seg"))


def segment_bytes(directory: Path, kind: str = "figure5") -> bytes:
    return b"".join(path.read_bytes() for path in segment_files(directory, kind))


# ===================================================================== #
# Framing
# ===================================================================== #


class TestFraming:
    def test_scan_recovers_every_stored_record(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            cache.store(quick_job(seed=seed), {"m": float(seed)})
        cache.flush()
        data = segment_bytes(tmp_path)
        records, clean_offset = _scan_segment(data, 0)
        assert len(records) == 3
        assert clean_offset == len(data)
        for _offset, _length, payload in records:
            assert payload["schema"] == CACHE_SCHEMA_VERSION
            assert payload["kind"] == "figure5"

    def test_scan_stops_at_any_truncation_point(self, tmp_path):
        # However many bytes a crash chops off the tail, the scanner must
        # keep every complete frame before the tear and nothing after it.
        cache = ResultCache(tmp_path)
        cache.store(quick_job(seed=0), {"m": 0.0})
        cache.flush()
        first = len(segment_bytes(tmp_path))
        cache.store(quick_job(seed=1), {"m": 1.0})
        cache.flush()
        data = segment_bytes(tmp_path)
        assert len(data) > first
        for cut in range(first, len(data)):
            records, clean_offset = _scan_segment(data[:cut], 0)
            assert len(records) == 1, f"cut at {cut} bytes"
            assert clean_offset == first
        records, _ = _scan_segment(data, 0)
        assert len(records) == 2

    def test_scan_rejects_corrupted_payload_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(quick_job(seed=0), {"m": 0.0})
        cache.store(quick_job(seed=1), {"m": 1.0})
        cache.flush()
        data = bytearray(segment_bytes(tmp_path))
        data[len(data) // 2] ^= 0xFF  # flip one byte inside a payload
        records, _ = _scan_segment(bytes(data), 0)
        assert len(records) < 2  # the CRC rejects the damaged frame


# ===================================================================== #
# Manifest and segments
# ===================================================================== #


class TestManifest:
    def test_fresh_instance_loads_via_manifest(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(quick_job(), {"m": 1.0})
        writer.flush()
        assert (tmp_path / "figure5" / SEGMENT_DIR_NAME / MANIFEST_NAME).exists()
        assert ResultCache(tmp_path).load(quick_job()) == {"m": 1.0}

    def test_missing_manifest_rebuilds_by_scanning_segments(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(quick_job(), {"m": 1.0})
        writer.flush()
        (tmp_path / "figure5" / SEGMENT_DIR_NAME / MANIFEST_NAME).unlink()
        assert ResultCache(tmp_path).load(quick_job()) == {"m": 1.0}

    def test_unpublished_tail_is_recovered_by_scan(self, tmp_path):
        # Records appended after the last manifest publish live in the
        # unvouched tail; a fresh instance finds them by scanning.
        writer = ResultCache(tmp_path)
        writer.store(quick_job(seed=0), {"m": 0.0})
        writer.flush()
        writer.store(quick_job(seed=1), {"m": 1.0})  # fsynced, not published
        reader = ResultCache(tmp_path)
        assert reader.load(quick_job(seed=0)) == {"m": 0.0}
        assert reader.load(quick_job(seed=1)) == {"m": 1.0}

    def test_truncated_below_vouched_length_is_distrusted(self, tmp_path):
        # When a segment is shorter than the manifest vouches, the whole
        # segment is rescanned from zero: complete frames before the tear
        # survive, the torn record is a miss, and stats never raises.
        writer = ResultCache(tmp_path)
        writer.store(quick_job(seed=0), {"m": 0.0})
        writer.store(quick_job(seed=1), {"m": 1.0})
        writer.flush()
        segment = segment_files(tmp_path)[0]
        segment.write_bytes(segment.read_bytes()[:-9])
        reader = ResultCache(tmp_path)
        assert reader.load(quick_job(seed=0)) == {"m": 0.0}
        assert reader.load(quick_job(seed=1)) is None
        stats = reader.stats()["figure5"]
        assert stats.entries == 1

    def test_concurrent_writers_never_share_a_segment(self, tmp_path):
        # Two cache instances appending to the same directory claim
        # separate segment files; a third instance sees both streams.
        one, two = ResultCache(tmp_path), ResultCache(tmp_path)
        one.store(quick_job(seed=0), {"m": 0.0})
        two.store(quick_job(seed=1), {"m": 1.0})
        one.flush()
        two.flush()
        assert len(segment_files(tmp_path)) == 2
        reader = ResultCache(tmp_path)
        assert reader.load(quick_job(seed=0)) == {"m": 0.0}
        assert reader.load(quick_job(seed=1)) == {"m": 1.0}

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        ticks = {"now": 1_000_000.0}
        cache = ResultCache(tmp_path, clock=lambda: ticks["now"])
        cache.store(quick_job(), {"m": 1.0})
        ticks["now"] += 10.0
        cache.store(quick_job(), {"m": 2.0})
        cache.flush()
        assert cache.load(quick_job()) == {"m": 2.0}
        # A rebuild-by-scan resolves the duplicate the same way.
        (tmp_path / "figure5" / SEGMENT_DIR_NAME / MANIFEST_NAME).unlink()
        assert ResultCache(tmp_path).load(quick_job()) == {"m": 2.0}

    def test_legacy_read_through_and_migrate(self, tmp_path):
        legacy = LegacyResultCache(tmp_path)
        legacy.store(quick_job(seed=0), {"m": 0.0})
        legacy.store(quick_job(seed=1), {"m": 1.0})
        corrupt = tmp_path / "figure5" / "deadbeef.json"
        corrupt.write_text("{not json", encoding="utf-8")

        cache = ResultCache(tmp_path)
        assert cache.load(quick_job(seed=0)) == {"m": 0.0}  # read-through
        result = cache.migrate()
        assert result.packed == 2 and result.dropped == 1
        assert not list(tmp_path.glob("figure5/*.json"))
        assert ResultCache(tmp_path).load(quick_job(seed=1)) == {"m": 1.0}

    def test_compact_drops_superseded_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in range(5):
            cache.store(quick_job(), {"m": float(value)})
        cache.flush()
        before = sum(path.stat().st_size for path in segment_files(tmp_path))
        result = cache.compact()
        after = sum(path.stat().st_size for path in segment_files(tmp_path))
        assert result.entries == 1
        assert result.reclaimed_bytes > 0
        assert after < before  # four superseded records physically gone
        assert cache.load(quick_job()) == {"m": 4.0}
        assert ResultCache(tmp_path).load(quick_job()) == {"m": 4.0}


# ===================================================================== #
# Crash safety (process-backend run killed mid-append)
# ===================================================================== #


_CRASH_CHILD = """\
import glob, os, sys

from repro.sim.experiments import figure5_jobs
from repro.sim.runner import ExperimentRunner
from repro.sim.settings import ExperimentSettings

cache_dir = sys.argv[1]
settings = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))
runner = ExperimentRunner(jobs=2, backend="process", cache_dir=cache_dir)
runner.run_jobs(figure5_jobs(settings))
print("executed", runner.stats.executed, flush=True)

# Simulate the kill landing mid-append: chop bytes off the newest
# segment's tail (a torn final frame), then die without any cleanup.
pattern = os.path.join(cache_dir, "figure5", "segments", "seg-*.seg")
segment = sorted(glob.glob(pattern), key=os.path.getmtime)[-1]
data = open(segment, "rb").read()
open(segment, "wb").write(data[:-9])
os._exit(1)
"""


class TestCrashSafety:
    def test_killed_process_backend_run_recovers_on_rerun(self, tmp_path):
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        child = subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(cache_dir)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert child.returncode == 1, child.stderr
        assert "executed 3" in child.stdout

        # The torn tail is detected by the CRC scan: stats never raises
        # and exactly one cell (the torn one) is gone.
        stats = ResultCache(cache_dir).stats()["figure5"]
        assert stats.entries == 2

        # The next run re-executes only the torn cell...
        rerun = ExperimentRunner(jobs=1, cache_dir=cache_dir)
        rerun.run_jobs(figure5_jobs(QUICK))
        assert rerun.stats.executed == 1
        assert rerun.stats.cached == 2

        # ...after which the cache is whole again.
        warm = ExperimentRunner(jobs=1, cache_dir=cache_dir)
        warm.run_jobs(figure5_jobs(QUICK))
        assert warm.stats.executed == 0
        assert warm.stats.cached == 3


# ===================================================================== #
# Layout x backend parity
# ===================================================================== #


def _run_once(backend: str, cache) -> str:
    """One cold sweep through `backend` against `cache`; the document."""
    jobs = figure5_jobs(QUICK)
    if backend == "distributed":
        server = CoordinatorServer(port=0).start()
        try:
            worker = threading.Thread(
                target=run_worker, args=(server.url,),
                kwargs={"poll_seconds": 0.05, "max_idle_seconds": 2.0},
                daemon=True,
            )
            worker.start()
            runner = ExperimentRunner(
                jobs=2, cache=cache,
                backend=DistributedBackend(server.url, poll_seconds=2.0),
            )
            results = runner.run_jobs(jobs)
            worker.join(timeout=30)
        finally:
            server.stop()
    else:
        runner = ExperimentRunner(jobs=1 if backend == "serial" else 2,
                                  backend=backend, cache=cache)
        results = runner.run_jobs(jobs)
    assert runner.stats.executed == len(jobs)
    return json.dumps(
        {job.cache_key(): results[job] for job in jobs}, sort_keys=True
    )


@pytest.mark.slow
class TestLayoutBackendParity:
    def test_frames_byte_identical_across_layouts_and_backends(self, tmp_path):
        documents = {}
        for layout in CACHE_LAYOUTS:
            for backend in ("serial", "thread", "process", "distributed"):
                directory = tmp_path / f"{layout}-{backend}"
                cache = make_result_cache(directory, layout=layout)
                documents[(layout, backend)] = _run_once(backend, cache)
                # A warm pass from a fresh instance serves every cell from
                # disk and reproduces the document byte for byte.
                warm_cache = make_result_cache(directory, layout=layout)
                warm = ExperimentRunner(jobs=1, cache=warm_cache)
                results = warm.run_jobs(figure5_jobs(QUICK))
                assert warm.stats.executed == 0
                assert warm.stats.cached == len(results)
                warm_doc = json.dumps(
                    {job.cache_key(): results[job] for job in figure5_jobs(QUICK)},
                    sort_keys=True,
                )
                assert warm_doc == documents[(layout, backend)]
        assert len(set(documents.values())) == 1, sorted(documents)
