"""Shared fixtures for the test suite.

Everything uses the small 4-core configuration (or a 16-core evaluation
configuration scaled far down) so the whole suite runs in seconds while
exercising the same code paths as the full-size experiments.
"""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.config.presets import (
    evaluation_system_config,
    paper_system_config,
    small_system_config,
)
from repro.core.machine import MixedModeMachine, VmSpec
from repro.mem.hierarchy import MemoryHierarchy
from repro.virt.vcpu import ReliabilityMode
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


@pytest.fixture
def small_config():
    """The 4-core test configuration."""
    return small_system_config()


@pytest.fixture
def paper_config():
    """The full 16-core paper configuration (used sparingly)."""
    return paper_system_config()


@pytest.fixture
def eval_config():
    """A heavily scaled 16-core evaluation configuration for fast runs."""
    return evaluation_system_config(capacity_scale=16, timeslice_cycles=6_000)


@pytest.fixture
def layout():
    """A small two-VM physical address-space layout."""
    return AddressSpaceLayout(vm_memory_bytes=2 * 1024 * 1024, num_vms=2)


@pytest.fixture
def rng():
    """A deterministic random source."""
    return DeterministicRng(seed=1234)


@pytest.fixture
def hierarchy(small_config):
    """A memory hierarchy for the small configuration."""
    return MemoryHierarchy(small_config)


@pytest.fixture
def apache_profile():
    """The apache workload profile."""
    return get_profile("apache")


def make_workload(layout, name="apache", vm_id=0, vcpu_index=0, num_vcpus=2,
                  seed=7, phase_scale=0.002):
    """Create a small synthetic workload bound to ``layout``."""
    return SyntheticWorkload(
        profile=get_profile(name),
        layout=layout,
        vm_id=vm_id,
        vcpu_index=vcpu_index,
        num_vcpus=num_vcpus,
        seed=seed,
        phase_scale=phase_scale,
    )


@pytest.fixture
def workload(layout):
    """A small apache workload stream."""
    return make_workload(layout)


def make_small_machine(
    config,
    policy="mmm-tp",
    reliable_vcpus=1,
    performance_vcpus=2,
    workload="apache",
    performance_mode=ReliabilityMode.PERFORMANCE,
    seed=3,
    fault_rates=None,
):
    """Build a tiny two-VM machine on the given configuration."""
    specs = [
        VmSpec(
            name="reliable",
            workload=workload,
            num_vcpus=reliable_vcpus,
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=0.003,
            footprint_scale=0.1,
        ),
        VmSpec(
            name="performance",
            workload=workload,
            num_vcpus=performance_vcpus,
            reliability=performance_mode,
            phase_scale=0.003,
            footprint_scale=0.1,
        ),
    ]
    return MixedModeMachine(
        config=config, vm_specs=specs, policy=policy, seed=seed, fault_rates=fault_rates
    )


@pytest.fixture
def small_machine(small_config):
    """A tiny two-VM MMM-TP machine on the 4-core configuration."""
    return make_small_machine(small_config)
