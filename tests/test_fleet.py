"""Tests for the fleet subsystem: topology, generators, scheduler, cells.

Four legs:

* **topology** -- deterministic rack/power-domain layout and lookups;
* **determinism** -- the same (model, params, seed) produces identical
  scripts and plans in-process, and byte-identical per-machine timeline
  serializations *across processes* (the property that keeps fleet cells
  cacheable and the backends parity-safe);
* **scheduler** -- storm evacuation is rack-scoped, upgrades account their
  exposure window, flash crowds place without drops;
* **engine** -- a fleet runs through the serial, process and distributed
  backends with byte-identical ResultFrame documents, warm-cache reruns
  execute zero jobs, and availability reflects the storm.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.sim.distributed import CoordinatorServer, DistributedBackend, run_worker
from repro.sim.fleet.cells import (
    execute_fleet_cell,
    fleet_jobs,
    fleet_plan,
    fleet_topology,
    roster_from_json,
    roster_to_json,
    tail_percentile,
)
from repro.sim.fleet.cluster import FleetTopology
from repro.sim.fleet.traffic import SCENARIO_NAMES, CoreOutage, scenario_model
from repro.sim.runner import ExperimentRunner
from repro.sim.settings import ExperimentSettings
from repro.sim.specs import experiment
from repro.sim.timeline import CoreFailed, ReliabilityModeChanged

QUICK = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))

SRC = str(Path(__file__).resolve().parents[1] / "src")


def quick_plan(scenario: str, seed: int = 0):
    return fleet_plan(QUICK, scenario, seed)


# ===================================================================== #
# Topology
# ===================================================================== #


class TestTopology:
    def test_even_layout_names_and_domains(self):
        topology = FleetTopology.build(8, 2)
        assert topology.machines() == (
            "r0m0", "r0m1", "r0m2", "r0m3", "r1m0", "r1m1", "r1m2", "r1m3",
        )
        assert topology.racks() == ("rack0", "rack1")
        # Adjacent rack pairs share a power domain.
        assert topology.power_domains() == ("pd0",)
        assert len(topology.sites_in_rack("rack0")) == 4
        assert topology.site("r1m2").rack == "rack1"

    def test_remainder_goes_to_earlier_racks(self):
        topology = FleetTopology.build(7, 3)
        assert [len(topology.sites_in_rack(rack)) for rack in topology.racks()] == [
            3, 2, 2,
        ]

    def test_invalid_shapes_are_rejected(self):
        with pytest.raises(ExperimentError):
            FleetTopology.build(0, 1)
        with pytest.raises(ExperimentError):
            FleetTopology.build(2, 3)
        with pytest.raises(ExperimentError):
            FleetTopology.build(8, 2).site("r9m9")

    def test_unknown_scenario_is_a_helpful_error(self):
        with pytest.raises(ExperimentError, match="failure-storm"):
            scenario_model("meteor-strike")


# ===================================================================== #
# Determinism
# ===================================================================== #


def _plan_digest(settings: ExperimentSettings) -> str:
    digest = hashlib.sha256()
    for scenario in SCENARIO_NAMES:
        for seed in (0, 1):
            plan = fleet_plan(settings, scenario, seed)
            for machine in plan.machines:
                digest.update(machine.timeline.to_json().encode())
                digest.update(roster_to_json(machine.roster).encode())
    return digest.hexdigest()


_DIGEST_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.sim.settings import ExperimentSettings
from repro.sim.fleet.cells import fleet_plan, roster_to_json
from repro.sim.fleet.traffic import SCENARIO_NAMES
settings = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))
digest = hashlib.sha256()
for scenario in SCENARIO_NAMES:
    for seed in (0, 1):
        plan = fleet_plan(settings, scenario, seed)
        for machine in plan.machines:
            digest.update(machine.timeline.to_json().encode())
            digest.update(roster_to_json(machine.roster).encode())
print(digest.hexdigest())
"""


class TestDeterminism:
    def test_scripts_are_reproducible_in_process(self):
        topology = fleet_topology(QUICK)
        for name in SCENARIO_NAMES:
            model = scenario_model(name)
            assert model.script(topology, QUICK, 3) == model.script(topology, QUICK, 3)

    def test_plans_are_reproducible_in_process(self):
        for name in SCENARIO_NAMES:
            assert quick_plan(name, seed=2) == quick_plan(name, seed=2)

    def test_timelines_are_byte_identical_across_processes(self):
        # The cache-soundness property: a fresh interpreter (fresh hash
        # randomisation, fresh import order) serializes the exact same
        # per-machine timelines for the same (model, params, seed).
        code = _DIGEST_SCRIPT.format(src=SRC)
        runs = [
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert runs[0] == runs[1] == _plan_digest(QUICK)

    def test_jobs_and_cache_keys_are_stable(self):
        first, second = fleet_jobs(QUICK), fleet_jobs(QUICK)
        assert first == second
        keys = [job.cache_key() for job in first]
        assert len(set(keys)) == len(keys)  # every machine is its own cell
        assert all(job.kind == "fleet" for job in first)

    def test_roster_round_trips(self):
        roster = quick_plan("failure-storm").machines[0].roster
        assert roster_from_json(roster_to_json(roster)) == roster
        with pytest.raises(ExperimentError):
            roster_from_json("not json")


# ===================================================================== #
# Scheduler policy
# ===================================================================== #


class TestScheduler:
    def test_storm_is_rack_scoped_and_evacuates_across_racks(self):
        plan = quick_plan("failure-storm")
        struck = {
            machine.site.rack
            for machine in plan.machines
            if any(isinstance(e, CoreFailed) for e in machine.timeline.events)
        }
        assert len(struck) == 1  # the storm hits exactly one rack
        victim = next(iter(struck))
        assert plan.total_migrations() > 0
        for machine in plan.machines:
            if machine.migrations_in:
                assert machine.site.rack != victim  # refugees land outside it
            if machine.migrations_out:
                assert machine.site.rack == victim

    def test_storm_script_strikes_half_the_cores(self):
        topology = fleet_topology(QUICK)
        script = scenario_model("failure-storm").script(topology, QUICK, 0)
        outages = [e for e in script.events if isinstance(e, CoreOutage)]
        num_cores = QUICK.config().num_cores
        struck_machines = {outage.machine for outage in outages}
        assert struck_machines == set(
            site.name for site in topology.sites_in_rack(sorted({
                topology.site(machine).rack for machine in struck_machines
            })[0])
        )
        for machine in struck_machines:
            assert sum(1 for o in outages if o.machine == machine) == num_cores // 2

    def test_rolling_upgrade_accounts_exposure_on_every_machine(self):
        plan = quick_plan("rolling-upgrade")
        for machine in plan.machines:
            assert machine.exposure_cycles > 0
            changes = [
                e
                for e in machine.timeline.events
                if isinstance(e, ReliabilityModeChanged)
            ]
            assert [c.mode for c in changes] == ["PERFORMANCE", "RELIABLE"]
        assert plan.total_exposure_cycles() == sum(
            machine.exposure_cycles for machine in plan.machines
        )

    def test_flash_crowd_places_without_drops(self):
        plan = quick_plan("flash-crowd")
        assert plan.dropped == 0
        assert sum(machine.placements for machine in plan.machines) == len(
            plan.machines
        )

    def test_tail_percentile_interpolates(self):
        assert tail_percentile([], 0.01) == 0.0
        assert tail_percentile([5.0], 0.01) == 5.0
        values = [float(v) for v in range(1, 101)]
        assert tail_percentile(values, 0.01) == pytest.approx(1.99)
        assert tail_percentile(values, 0.0) == 1.0


# ===================================================================== #
# Engine integration
# ===================================================================== #


def _frame_bytes(frame) -> str:
    return json.dumps(frame.to_json(), sort_keys=True)


def start_worker_thread(url: str) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(url,),
        kwargs={"poll_seconds": 0.05, "max_idle_seconds": 2.0},
        daemon=True,
    )
    thread.start()
    return thread


class TestEngineIntegration:
    def test_fleet_spec_is_registered_with_schema(self):
        spec = experiment("fleet")
        request = spec.request(QUICK)
        grid = spec.grid(request)
        assert grid.size() == len(spec.enumerate_jobs(request)) == 8
        assert spec.metric_schema(request).keys == ("scenario",)

    def test_storm_availability_is_degraded_only_on_the_victim_rack(self):
        plan = quick_plan("failure-storm")
        jobs = fleet_jobs(QUICK)
        by_machine = {job.param("machine"): job for job in jobs}
        victim = next(
            machine for machine in plan.machines
            if any(isinstance(e, CoreFailed) for e in machine.timeline.events)
        )
        untouched = next(
            machine for machine in plan.machines
            if machine.site.rack != victim.site.rack
        )
        degraded = execute_fleet_cell(by_machine[victim.site.name])
        healthy = execute_fleet_cell(by_machine[untouched.site.name])
        assert 0.0 < degraded["availability"] < 1.0
        assert healthy["availability"] == pytest.approx(1.0)
        assert degraded["events_applied"] > 0

    def test_backends_agree_byte_for_byte(self):
        # The acceptance bar: an 8-machine fleet under a correlated failure
        # storm produces byte-identical ResultFrame documents through the
        # serial, process and distributed backends.
        spec = experiment("fleet")
        serial = _frame_bytes(
            spec.run(QUICK, runner=ExperimentRunner(jobs=1, use_cache=False))
        )
        pooled = _frame_bytes(
            spec.run(QUICK, runner=ExperimentRunner(jobs=2, use_cache=False))
        )
        server = CoordinatorServer(port=0).start()
        try:
            worker = start_worker_thread(server.url)
            distributed = _frame_bytes(
                spec.run(
                    QUICK,
                    runner=ExperimentRunner(
                        jobs=2,
                        use_cache=False,
                        backend=DistributedBackend(server.url, poll_seconds=2.0),
                    ),
                )
            )
            worker.join(timeout=30)
        finally:
            server.stop()
        assert serial == pooled == distributed

    def test_warm_cache_executes_zero_jobs(self, tmp_path):
        spec = experiment("fleet")
        cold_runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        cold = _frame_bytes(spec.run(QUICK, runner=cold_runner))
        assert cold_runner.stats.executed == 8

        warm_runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        warm = _frame_bytes(spec.run(QUICK, runner=warm_runner))
        assert warm_runner.stats.executed == 0
        assert warm == cold
