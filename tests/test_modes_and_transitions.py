"""Tests for reliability-mode decisions and the mode-transition engine."""

from __future__ import annotations

import pytest

from repro.core.modes import is_mode_transition_boundary, requires_dmr
from repro.core.transitions import ModeTransitionEngine, TransitionFlavor
from repro.errors import TransitionError
from repro.isa.instructions import PrivilegeLevel
from repro.protection.violations import ViolationKind
from repro.virt.vcpu import ReliabilityMode


class TestModeDecisions:
    def test_hypervisor_always_reliable(self):
        for mode in ReliabilityMode:
            assert requires_dmr(mode, PrivilegeLevel.HYPERVISOR)

    def test_reliable_mode_everywhere(self):
        for privilege in PrivilegeLevel:
            assert requires_dmr(ReliabilityMode.RELIABLE, privilege)

    def test_performance_mode_only_escalates_for_the_hypervisor(self):
        assert not requires_dmr(ReliabilityMode.PERFORMANCE, PrivilegeLevel.USER)
        assert not requires_dmr(ReliabilityMode.PERFORMANCE, PrivilegeLevel.GUEST_OS)
        assert requires_dmr(ReliabilityMode.PERFORMANCE, PrivilegeLevel.HYPERVISOR)

    def test_user_only_mode_escalates_for_any_privileged_code(self):
        assert not requires_dmr(ReliabilityMode.PERFORMANCE_USER_ONLY, PrivilegeLevel.USER)
        assert requires_dmr(ReliabilityMode.PERFORMANCE_USER_ONLY, PrivilegeLevel.GUEST_OS)

    def test_transition_boundary_detection(self):
        assert is_mode_transition_boundary(
            ReliabilityMode.PERFORMANCE_USER_ONLY,
            PrivilegeLevel.USER,
            PrivilegeLevel.GUEST_OS,
        )
        assert not is_mode_transition_boundary(
            ReliabilityMode.RELIABLE, PrivilegeLevel.USER, PrivilegeLevel.GUEST_OS
        )
        assert not is_mode_transition_boundary(
            ReliabilityMode.PERFORMANCE, PrivilegeLevel.USER, PrivilegeLevel.GUEST_OS
        )


@pytest.fixture
def machine(small_machine):
    return small_machine


def reliable_vcpu(machine):
    return machine.vms[0].vcpus[0]


def performance_vcpus(machine):
    return machine.vms[1].vcpus


class TestTransitionEngine:
    def test_enter_and_leave_report_positive_costs(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        enter = engine.enter_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        leave = engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        assert enter.total_cycles > 0
        assert leave.total_cycles > 0
        assert enter.kind == "enter_dmr"
        assert leave.kind == "leave_dmr"

    def test_leave_tp_is_dominated_by_the_l2_flush(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        leave = engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        assert leave.flush_cycles >= machine.config.l2.num_lines

    def test_leave_tp_costs_more_than_enter_on_the_paper_machine(self, paper_config):
        """Table 1's asymmetry: the 8192-line L2 flush dominates Leave DMR."""
        from tests.conftest import make_small_machine

        machine = make_small_machine(paper_config, reliable_vcpus=1, performance_vcpus=2)
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        # Warm the scratchpad slots so compulsory misses do not hide the shape.
        engine.enter_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        enter = engine.enter_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        leave = engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        assert leave.flush_cycles >= 8192
        assert leave.flush_cycles > leave.save_cycles
        assert leave.total_cycles > enter.total_cycles
        # The paper reports ~2.2-2.4k for Enter and ~10k for Leave.
        assert 1_000 <= enter.total_cycles <= 5_000
        assert 8_500 <= leave.total_cycles <= 16_000

    def test_ipc_flavor_skips_the_flush_and_is_cheaper(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        tp = engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_TP)
        ipc = engine.leave_dmr(2, 3, vcpu, flavor=TransitionFlavor.MMM_IPC)
        assert ipc.flush_cycles == 0
        assert ipc.total_cycles < tp.total_cycles

    def test_context_switch_transitions_move_outgoing_and_incoming_state(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        outgoing = performance_vcpus(machine)
        enter = engine.enter_dmr(
            0, 1, vcpu,
            outgoing_vocal_vcpu=outgoing[0], outgoing_mute_vcpu=outgoing[1],
            flavor=TransitionFlavor.MMM_TP,
        )
        assert enter.save_cycles > 0
        assert enter.load_cycles > 0
        leave = engine.leave_dmr(
            0, 1, vcpu,
            incoming_vocal_vcpu=outgoing[0], incoming_mute_vcpu=outgoing[1],
            flavor=TransitionFlavor.MMM_TP,
        )
        assert leave.load_cycles > 0

    def test_same_core_pair_rejected(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        with pytest.raises(TransitionError):
            engine.enter_dmr(1, 1, vcpu)
        with pytest.raises(TransitionError):
            engine.leave_dmr(1, 1, vcpu)

    def test_verification_catches_privileged_corruption(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        # Establish the redundant copy, corrupt a privileged register while
        # "in performance mode", then re-enter DMR.
        engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_IPC)
        vcpu.arch_state.privileged["tba"] ^= 0x80
        enter = engine.enter_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_IPC)
        assert enter.verify_failed
        assert engine.violation_log.count(ViolationKind.TRANSITION_VERIFY_FAILED) == 1
        # Recovery restored the register from the redundant copy.
        assert vcpu.arch_state.privileged["tba"] == 0

    def test_verification_passes_without_corruption(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        engine.leave_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_IPC)
        enter = engine.enter_dmr(0, 1, vcpu, flavor=TransitionFlavor.MMM_IPC)
        assert not enter.verify_failed

    def test_average_accounting(self, machine):
        engine = machine.transition_engine
        vcpu = reliable_vcpu(machine)
        assert engine.average_enter_cycles() == 0.0
        assert engine.average_leave_cycles() == 0.0
        engine.enter_dmr(0, 1, vcpu)
        engine.leave_dmr(0, 1, vcpu)
        assert engine.average_enter_cycles() > 0
        assert engine.average_leave_cycles() > 0
