"""Tests for the synthetic data-address generator."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.errors import WorkloadError
from repro.isa.instructions import PrivilegeLevel
from repro.workloads.address_stream import AddressStreamModel
from repro.workloads.profiles import get_profile


@pytest.fixture
def layout():
    return AddressSpaceLayout(vm_memory_bytes=4 * 1024 * 1024, num_vms=2)


def make_model(layout, vm_id=0, vcpu_index=0, num_vcpus=4, name="oltp", seed=3):
    return AddressStreamModel(
        profile=get_profile(name),
        layout=layout,
        vm_id=vm_id,
        vcpu_index=vcpu_index,
        num_vcpus=num_vcpus,
        rng=DeterministicRng(seed),
    )


def test_user_addresses_stay_inside_the_vm_region(layout):
    model = make_model(layout, vm_id=1)
    region = layout.vm_region(1)
    for _ in range(500):
        address, _ = model.next_address(PrivilegeLevel.USER, is_store=False)
        assert region.contains(address)


def test_os_addresses_stay_inside_kernel_region(layout):
    model = make_model(layout)
    kernel = layout.kernel_region(0)
    for _ in range(500):
        address, _ = model.next_address(PrivilegeLevel.GUEST_OS, is_store=True)
        assert kernel.contains(address)


def test_private_windows_of_different_vcpus_do_not_overlap(layout):
    a = make_model(layout, vcpu_index=0)
    b = make_model(layout, vcpu_index=1)
    base_a, span_a = a.user_private_window
    base_b, span_b = b.user_private_window
    assert base_a + span_a <= base_b or base_b + span_b <= base_a


def test_shared_flag_marks_shared_region_accesses(layout):
    model = make_model(layout, name="oltp")
    shared_base, shared_span = model.shared_window
    shared_count = 0
    for _ in range(3000):
        address, is_shared = model.next_address(PrivilegeLevel.USER, is_store=False)
        if is_shared:
            shared_count += 1
            assert shared_base <= address < shared_base + shared_span
    # oltp has an 8% shared-access fraction.
    assert 100 < shared_count < 500


def test_pmake_generates_almost_no_shared_accesses(layout):
    model = make_model(layout, name="pmake")
    shared = sum(
        model.next_address(PrivilegeLevel.USER, is_store=False)[1] for _ in range(2000)
    )
    assert shared < 80


def test_addresses_are_line_aligned(layout):
    model = make_model(layout)
    for _ in range(200):
        address, _ = model.next_address(PrivilegeLevel.USER, is_store=True)
        assert address % 64 == 0


def test_hot_set_absorbs_most_accesses(layout):
    model = make_model(layout, name="pmake")
    profile = get_profile("pmake")
    base, _ = model.user_private_window
    hot_end = base + profile.user_hot_bytes
    in_hot = 0
    total = 0
    for _ in range(3000):
        address, is_shared = model.next_address(PrivilegeLevel.USER, is_store=False)
        if is_shared:
            continue
        total += 1
        if address < hot_end:
            in_hot += 1
    assert in_hot / total > 0.85


def test_warm_addresses_cover_hot_and_cold_windows(layout):
    model = make_model(layout)
    addresses = model.warm_addresses()
    base, span = model.user_private_window
    covered = {a for a in addresses if base <= a < base + span}
    assert len(covered) == span // 64
    # The hot set is touched again at the very end so it stays most recently
    # used (the last warmed address is the last line of the user hot set).
    profile = get_profile("oltp")
    assert addresses[-1] == base + profile.user_hot_bytes - 64
    # Deterministic: same model parameters give the same warm list.
    again = make_model(layout)
    assert addresses == again.warm_addresses()


def test_invalid_vcpu_index_rejected(layout):
    with pytest.raises(WorkloadError):
        make_model(layout, vcpu_index=9, num_vcpus=4)
    with pytest.raises(WorkloadError):
        make_model(layout, num_vcpus=0)
