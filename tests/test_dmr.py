"""Tests for the Reunion DMR substrate (pairing, fingerprints, network)."""

from __future__ import annotations

import pytest

from repro.config.system import InterconnectConfig, ReunionConfig
from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.dmr.reunion import ReunionPair
from repro.errors import SchedulingError
from repro.isa.fingerprints import Fingerprint
from repro.isa.instructions import Instruction, InstructionClass


def make_pair(interval=4, recovery=100):
    network = FingerprintNetwork(InterconnectConfig())
    return ReunionPair(
        vocal_core_id=0,
        mute_core_id=1,
        config=ReunionConfig(fingerprint_interval=interval, recovery_penalty_cycles=recovery),
        network=network,
    )


def make_instruction(seq, result=0):
    return Instruction(seq=seq, iclass=InstructionClass.ALU, result=result)


class TestReunionPair:
    def test_pair_needs_two_distinct_cores(self):
        with pytest.raises(SchedulingError):
            ReunionPair(0, 0, ReunionConfig(), FingerprintNetwork(InterconnectConfig()))

    def test_fault_free_intervals_match(self):
        pair = make_pair(interval=4)
        outcomes = [pair.observe_commit(make_instruction(seq, seq)) for seq in range(8)]
        checks = [o for o in outcomes if o is not None]
        assert len(checks) == 2
        assert all(check.matched for check in checks)
        assert all(check.penalty_cycles == 0 for check in checks)
        assert pair.mismatch_count() == 0

    def test_corrupted_instruction_is_detected_within_its_interval(self):
        pair = make_pair(interval=4, recovery=250)
        outcomes = []
        for seq in range(4):
            outcomes.append(
                pair.observe_commit(make_instruction(seq, seq), mute_corrupted=(seq == 1))
            )
        final = outcomes[-1]
        assert final is not None
        assert not final.matched
        assert final.penalty_cycles == 250
        assert pair.mismatch_count() == 1

    def test_vocal_corruption_also_detected(self):
        pair = make_pair(interval=2)
        pair.observe_commit(make_instruction(0))
        outcome = pair.observe_commit(make_instruction(1), vocal_corrupted=True)
        assert outcome is not None and not outcome.matched

    def test_synchronize_flushes_partial_interval(self):
        pair = make_pair(interval=16)
        pair.observe_commit(make_instruction(0, 5))
        pair.observe_commit(make_instruction(1, 6))
        outcome = pair.synchronize()
        assert outcome is not None
        assert outcome.matched
        assert outcome.interval_instructions == 2
        assert pair.synchronize() is None

    def test_synchronize_detects_pending_corruption(self):
        pair = make_pair(interval=16)
        pair.observe_commit(make_instruction(0), mute_corrupted=True)
        outcome = pair.synchronize()
        assert outcome is not None and not outcome.matched

    def test_cores_property(self):
        assert make_pair().cores == (0, 1)

    def test_comparison_uses_the_network(self):
        pair = make_pair(interval=1)
        pair.observe_commit(make_instruction(0))
        assert pair.network.stats.get("exchanges") == 1


class TestFingerprintNetwork:
    def test_exchange_latency_matches_config(self):
        network = FingerprintNetwork(InterconnectConfig(fingerprint_latency=10))
        assert network.latency == 10
        assert network.exchange_latency() == 10
        assert network.stats.get("exchanges") == 1

    def test_explicit_messages_arrive_after_latency(self):
        network = FingerprintNetwork(InterconnectConfig(fingerprint_latency=10))
        fingerprint = Fingerprint(value=1, first_seq=0, last_seq=3, count=4)
        network.send(0, 1, fingerprint, now=100)
        assert network.pending() is not None
        assert network.deliveries_until(105) == []
        deliveries = network.deliveries_until(110)
        assert len(deliveries) == 1
        assert deliveries[0].arrival_cycle == 110
        assert deliveries[0].receiver_core == 1
        assert network.pending() is None
