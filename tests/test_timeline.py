"""Tests for the event-driven simulation timeline.

Four contracts:

* **timeline values** -- events validate, serialize canonically, and round
  trip through JSON (what the job identity digests);
* **machine lifecycle** -- retire/restore cores, admit/drain VMs and policy
  hot swaps enforce their invariants;
* **event application** -- events apply exactly at their cycle (cycle 0, the
  measurement boundary, two events inside one nominal quantum) and reshape
  the run deterministically;
* **engine determinism** -- the same events and seed produce byte-identical
  results across the serial/process/thread backends and any job chunking,
  and the two new specs are registered and ride ``run_all_experiments``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.faults.injector import FaultRates
from repro.sim.experiments import (
    ExperimentSettings,
    churn_jobs,
    degradation_jobs,
    run_all_experiments,
)
from repro.sim.jobs import simulate_cell
from repro.sim.runner import ExperimentRunner
from repro.sim.simulator import SimulationOptions, Simulator
from repro.sim.specs import EXPERIMENTS
from repro.sim.timeline import (
    CoreFailed,
    CoreRepaired,
    FaultRateBurst,
    PolicyChanged,
    ReliabilityModeChanged,
    Timeline,
    VmArrived,
    VmDeparted,
)
from repro.core.machine import MixedModeMachine, VmSpec
from repro.virt.vcpu import ReliabilityMode
from tests.conftest import make_small_machine

QUICK = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))


def run_machine(machine, timeline=None, **options):
    defaults = dict(total_cycles=8_000, warmup_cycles=2_000)
    defaults.update(options)
    return Simulator(machine, SimulationOptions(**defaults), timeline=timeline).run()


def make_deferred_machine(config, seed=3):
    """A consolidated server plus one deferred burst VM."""
    specs = [
        VmSpec(
            name="reliable",
            workload="apache",
            num_vcpus=1,
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=0.003,
            footprint_scale=0.1,
        ),
        VmSpec(
            name="performance",
            workload="apache",
            num_vcpus=2,
            reliability=ReliabilityMode.PERFORMANCE,
            phase_scale=0.003,
            footprint_scale=0.1,
        ),
        VmSpec(
            name="late",
            workload="apache",
            num_vcpus=1,
            reliability=ReliabilityMode.PERFORMANCE,
            phase_scale=0.003,
            footprint_scale=0.1,
            present_at_start=False,
        ),
    ]
    return MixedModeMachine(config=config, vm_specs=specs, policy="mmm-tp", seed=seed)


# ===================================================================== #
# Timeline values
# ===================================================================== #


class TestTimelineValues:
    def test_json_round_trip(self):
        timeline = Timeline.of(
            CoreFailed(cycle=100, core_id=3),
            CoreRepaired(cycle=900, core_id=3),
            VmArrived(cycle=200, vm_name="burst0"),
            VmDeparted(cycle=800, vm_name="burst0"),
            PolicyChanged(cycle=300, policy="mmm-ipc"),
            ReliabilityModeChanged(cycle=400, vm_name="late", mode="RELIABLE"),
            FaultRateBurst(cycle=500, scale=4.0, duration_cycles=100),
        )
        assert Timeline.from_json(timeline.to_json()) == timeline

    def test_serialization_is_canonical(self):
        # Same schedule, same bytes: the job cache key depends on this.
        a = Timeline.of(CoreFailed(cycle=10, core_id=1)).to_json()
        b = Timeline.of(CoreFailed(cycle=10, core_id=1)).to_json()
        assert a == b
        assert json.loads(a)[0]["kind"] == "core-failed"

    def test_construction_order_does_not_change_identity(self):
        # The same schedule listed in a different cross-cycle order must
        # compare equal and share a canonical serialization (cache key).
        a = Timeline.of(
            CoreFailed(cycle=200, core_id=1), CoreFailed(cycle=100, core_id=0)
        )
        b = Timeline.of(
            CoreFailed(cycle=100, core_id=0), CoreFailed(cycle=200, core_id=1)
        )
        assert a == b
        assert a.to_json() == b.to_json()

    def test_sorted_events_is_stable_for_ties(self):
        first = VmArrived(cycle=50, vm_name="a")
        second = VmDeparted(cycle=50, vm_name="a")
        timeline = Timeline.of(first, second)
        assert timeline.sorted_events() == [first, second]

    def test_validation_rejects_bad_events(self):
        with pytest.raises(SimulationError):
            Timeline.of(CoreFailed(cycle=-1, core_id=0))
        with pytest.raises(SimulationError):
            Timeline.of(FaultRateBurst(cycle=0, scale=0.0, duration_cycles=10))
        with pytest.raises(SimulationError):
            Timeline.of(FaultRateBurst(cycle=0, scale=2.0, duration_cycles=0))

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError, match="unknown timeline event kind"):
            Timeline.from_json('[{"kind": "meteor-strike", "cycle": 5}]')
        with pytest.raises(SimulationError):
            Timeline.from_json("{not json")

    def test_misspelled_or_missing_fields_are_rejected(self):
        # A typo must not silently deserialize to a default-field event
        # (which would quietly run a different scenario).
        with pytest.raises(SimulationError, match="unknown field"):
            Timeline.from_json('[{"kind": "core-failed", "cycle": 100, "core": 5}]')
        with pytest.raises(SimulationError, match="missing field"):
            Timeline.from_json('[{"kind": "core-failed", "cycle": 100}]')


# ===================================================================== #
# Machine lifecycle
# ===================================================================== #


class TestMachineLifecycle:
    def test_retire_and_restore_cores(self, small_config):
        machine = make_small_machine(small_config)
        assert machine.num_healthy_cores == 4
        machine.retire_core(3)
        assert machine.retired_cores == frozenset({3})
        assert machine.num_healthy_cores == 3
        with pytest.raises(Exception):
            machine.retire_core(3)  # already retired
        machine.restore_core(3)
        assert machine.num_healthy_cores == 4
        with pytest.raises(Exception):
            machine.restore_core(3)  # not retired

    def test_last_healthy_core_cannot_be_retired(self, small_config):
        machine = make_small_machine(small_config)
        for core in (0, 1, 2):
            machine.retire_core(core)
        with pytest.raises(ConfigurationError, match="last healthy core"):
            machine.retire_core(3)

    def test_retired_cores_never_appear_in_plans(self, small_config):
        machine = make_small_machine(small_config)
        machine.retire_core(0)
        machine.allocator.reset()
        plan = machine.policy.plan_quantum(
            machine.vms[0].vcpus, machine.allocator, machine.pair_factory
        ).validate(machine.num_cores, machine.retired_cores)
        used = {core for p in plan.placements for core in p.occupied_cores}
        assert 0 not in used

    def test_admit_and_drain_vms(self, small_config):
        machine = make_deferred_machine(small_config)
        assert [vm.name for vm in machine.active_vms] == ["reliable", "performance"]
        with pytest.raises(ConfigurationError):
            machine.drain_vm("late")  # not active yet
        machine.admit_vm("late")
        assert machine.vm_by_name("late").active
        with pytest.raises(ConfigurationError):
            machine.admit_vm("late")  # already active
        machine.drain_vm("late")
        assert not machine.vm_by_name("late").active

    def test_last_active_vm_cannot_be_drained(self, small_config):
        machine = make_small_machine(small_config)
        machine.drain_vm("performance")
        with pytest.raises(ConfigurationError, match="last active VM"):
            machine.drain_vm("reliable")

    def test_machine_needs_one_present_vm(self, small_config):
        spec = VmSpec(
            name="only",
            workload="apache",
            num_vcpus=1,
            reliability=ReliabilityMode.RELIABLE,
            present_at_start=False,
        )
        with pytest.raises(ConfigurationError, match="present at start"):
            MixedModeMachine(config=small_config, vm_specs=[spec], policy="no-dmr")

    def test_policy_and_reliability_hot_swap(self, small_config):
        machine = make_small_machine(small_config)
        machine.set_policy("mmm-ipc")
        assert machine.policy.name == "mmm-ipc"
        machine.set_vm_reliability("performance", ReliabilityMode.RELIABLE)
        vm = machine.vm_by_name("performance")
        assert vm.is_reliable
        assert all(
            vcpu.mode_register is ReliabilityMode.RELIABLE for vcpu in vm.vcpus
        )


# ===================================================================== #
# Event application
# ===================================================================== #


class TestEventApplication:
    def test_core_failure_mid_run_degrades_the_machine(self, small_config):
        # Four performance VCPUs fill the 4-core chip during their slice;
        # retiring a core mid-run leaves one of them unplaceable.
        baseline = run_machine(
            make_small_machine(small_config, performance_vcpus=4)
        )
        timeline = Timeline.of(CoreFailed(cycle=4_000, core_id=3))
        degraded = run_machine(
            make_small_machine(small_config, performance_vcpus=4),
            timeline=timeline,
        )
        assert degraded.timeline_events_applied == 1
        assert degraded.timeline_stats == {"core-failed": 1}
        assert degraded.paused_vcpu_quanta > baseline.paused_vcpu_quanta
        # The measured capacity reflects the failure (3 healthy cores from
        # the failure onward), and fewer VCPU-quanta were placed.
        assert (
            degraded.quantum_stats["core_cycles_capacity"]
            < baseline.quantum_stats["core_cycles_capacity"]
        )
        assert (
            degraded.quantum_stats["placed_vcpus"]
            < baseline.quantum_stats["placed_vcpus"]
        )

    def test_event_at_cycle_zero_is_equivalent_to_prefailed_machine(
        self, small_config
    ):
        # An event at cycle 0 reshapes the machine before the first quantum,
        # so the run must be indistinguishable from starting with the core
        # already retired.  (Functional warming is disabled: the pre-failed
        # machine never warms the dead core, the timeline one would.)
        timeline = Timeline.of(CoreFailed(cycle=0, core_id=3))
        with_event = run_machine(
            make_small_machine(small_config),
            timeline=timeline,
            functional_warming=False,
        )
        prefailed_machine = make_small_machine(small_config)
        prefailed_machine.retire_core(3)
        prefailed = run_machine(prefailed_machine, functional_warming=False)
        assert with_event.timeline_events_applied == 1
        assert [vm.vcpus for vm in with_event.vm_results] == [
            vm.vcpus for vm in prefailed.vm_results
        ]
        assert with_event.quantum_stats == prefailed.quantum_stats

    def test_event_at_the_measurement_boundary(self, small_config):
        # The event applies exactly as measurement begins: the whole
        # measured window sees the degraded machine.
        boundary = Timeline.of(CoreFailed(cycle=2_000, core_id=3))
        at_boundary = run_machine(
            make_small_machine(small_config), timeline=boundary
        )
        from_start = run_machine(
            make_small_machine(small_config),
            timeline=Timeline.of(CoreFailed(cycle=0, core_id=3)),
        )
        assert at_boundary.timeline_events_applied == 1
        # Both runs measure a 3-core machine; warmup cache state may differ
        # but the degraded capacity must be identical.
        assert (
            at_boundary.quantum_stats["core_cycles_capacity"]
            == from_start.quantum_stats["core_cycles_capacity"]
        )

    def test_two_events_in_one_quantum_split_it(self, small_config):
        machine = make_small_machine(small_config)
        base = run_machine(make_small_machine(small_config), warmup_cycles=0)
        # FaultRateBurst on a machine without an injector changes nothing
        # except the quantum boundaries, so the only visible effect is the
        # split: two extra quanta.
        timeline = Timeline.of(
            FaultRateBurst(cycle=1_000, scale=2.0, duration_cycles=500),
            FaultRateBurst(cycle=2_500, scale=2.0, duration_cycles=500),
        )
        split = run_machine(machine, timeline=timeline, warmup_cycles=0)
        assert split.timeline_events_applied == 2
        assert split.quantum_stats["quanta"] == base.quantum_stats["quanta"] + 2

    def test_events_beyond_the_run_never_fire(self, small_config):
        timeline = Timeline.of(CoreFailed(cycle=1_000_000, core_id=3))
        result = run_machine(make_small_machine(small_config), timeline=timeline)
        assert result.timeline_events_applied == 0
        assert result.timeline_events_pending == 1

    def test_vm_churn_mid_run(self, small_config):
        machine = make_deferred_machine(small_config)
        timeline = Timeline.of(
            VmArrived(cycle=4_000, vm_name="late"),
            VmDeparted(cycle=12_000, vm_name="late"),
        )
        result = run_machine(machine, timeline=timeline, total_cycles=18_000)
        assert result.timeline_events_applied == 2
        # The burst VM ran during its stay...
        assert result.vm("late").user_instructions > 0
        # ...and left the schedule again.
        assert not machine.vm_by_name("late").active
        # Without the arrival the deferred VM never runs.
        quiet = run_machine(
            make_deferred_machine(small_config), total_cycles=18_000
        )
        assert quiet.vm("late").user_instructions == 0

    def test_policy_change_mid_run(self, small_config):
        machine = make_small_machine(small_config, policy="dmr-base",
                                     performance_mode=ReliabilityMode.RELIABLE)
        timeline = Timeline.of(PolicyChanged(cycle=4_000, policy="no-dmr"))
        result = run_machine(machine, timeline=timeline)
        assert result.timeline_events_applied == 1
        assert result.policy_name == "no-dmr"
        assert machine.policy.name == "no-dmr"

    def test_policy_change_keeps_the_boundary_leave_charge(self, small_config):
        # A policy hot-swap at a reliable-to-performance boundary must not
        # erase the Leave-DMR cost of the pairs that just executed.
        machine = make_small_machine(small_config, policy="mmm-ipc")
        swap = Timeline.of(PolicyChanged(cycle=4_000, policy="mmm-tp"))
        with_swap = run_machine(machine, timeline=swap, warmup_cycles=0,
                                total_cycles=12_000)
        without = run_machine(
            make_small_machine(small_config, policy="mmm-ipc"),
            warmup_cycles=0, total_cycles=12_000,
        )
        assert with_swap.timeline_events_applied == 1
        assert with_swap.leave_dmr_transitions >= without.leave_dmr_transitions > 0

    def test_reliability_mode_change_mid_run(self, small_config):
        machine = make_small_machine(small_config)
        timeline = Timeline.of(
            ReliabilityModeChanged(cycle=4_000, vm_name="performance",
                                   mode="RELIABLE")
        )
        result = run_machine(machine, timeline=timeline)
        assert result.timeline_events_applied == 1
        assert machine.vm_by_name("performance").is_reliable

    def test_reliability_flip_keeps_the_executed_slice_transition(self, small_config):
        # The reliable VM's slice runs under DMR; the event flips its mode
        # at the very boundary where the Leave-DMR cost is charged.  The
        # charge must follow the mode that actually executed, so the leave
        # transition is still paid.
        machine = make_small_machine(small_config)
        timeline = Timeline.of(
            ReliabilityModeChanged(cycle=4_000, vm_name="reliable",
                                   mode="PERFORMANCE")
        )
        result = run_machine(machine, timeline=timeline, warmup_cycles=0,
                             total_cycles=12_000)
        assert result.timeline_events_applied == 1
        assert result.leave_dmr_transitions >= 1

    def test_unknown_reliability_mode_raises(self, small_config):
        machine = make_small_machine(small_config)
        timeline = Timeline.of(
            ReliabilityModeChanged(cycle=0, vm_name="performance", mode="TURBO")
        )
        with pytest.raises(SimulationError, match="unknown reliability mode"):
            run_machine(machine, timeline=timeline)

    def test_fault_rate_burst_scales_and_restores_rates(self, small_config):
        rates = FaultRates(privileged_register=0.001)
        machine = make_small_machine(small_config, fault_rates=rates)
        timeline = Timeline.of(
            FaultRateBurst(cycle=3_000, scale=100.0, duration_cycles=2_000)
        )
        result = run_machine(machine, timeline=timeline)
        assert result.timeline_events_applied == 1
        # The burst ended mid-run: the base rates must be restored.
        assert machine.fault_injector.rates == rates
        # A heavy burst injects more faults than the quiet baseline.
        quiet = make_small_machine(small_config, fault_rates=rates)
        run_machine(quiet)
        assert (
            machine.fault_injector.injected_fault_count
            >= quiet.fault_injector.injected_fault_count
        )


# ===================================================================== #
# Warmup clamp
# ===================================================================== #


class TestWarmupClamp:
    def test_unaligned_warmup_is_clamped_and_surfaced(self, small_config):
        machine = make_small_machine(small_config)
        result = run_machine(machine, warmup_cycles=2_500, total_cycles=6_000)
        # The warmup boundary falls mid-quantum (timeslice 4000): the final
        # warmup quantum is clamped by 1500 cycles so measurement starts
        # exactly at cycle 2500.
        assert result.warmup_clamp_cycles == 1_500
        assert result.total_cycles == 6_000

    def test_aligned_warmup_needs_no_clamp(self, small_config):
        machine = make_small_machine(small_config)
        result = run_machine(machine, warmup_cycles=4_000, total_cycles=6_000)
        assert result.warmup_clamp_cycles == 0

    def test_clamped_run_measures_the_full_window(self, small_config):
        # Measurement must start exactly at the warmup boundary: the final
        # warmup quantum is split there, so the measured window contains one
        # more quantum than the aligned equivalent (the boundary partial
        # slice) and still commits a full window of work.
        unaligned = run_machine(
            make_small_machine(small_config), warmup_cycles=2_500,
            total_cycles=8_000,
        )
        aligned = run_machine(
            make_small_machine(small_config), warmup_cycles=4_000,
            total_cycles=8_000,
        )
        assert unaligned.warmup_clamp_cycles == 1_500
        assert (
            unaligned.quantum_stats["quanta"]
            == aligned.quantum_stats["quanta"] + 1
        )
        assert unaligned.total_user_instructions > 0


# ===================================================================== #
# Plan reuse (the hot-path optimisation)
# ===================================================================== #


class TestPlanReuse:
    def test_unchanged_decisions_reuse_the_previous_plan(self, small_config):
        # A single-VM machine with several quanta per timeslice re-plans
        # only when something changed.
        machine = make_small_machine(small_config)
        result = run_machine(make_small_machine(small_config), quantum_cycles=1_000)
        assert result.quantum_stats.get("plan_reuses", 0) > 0

    def test_events_invalidate_the_previous_plan(self, small_config):
        # Cycle 5000 sits inside a timeslice (not on a VM boundary), where
        # the plan would otherwise have been reused.
        timeline = Timeline.of(CoreFailed(cycle=5_000, core_id=3))
        with_event = run_machine(
            make_small_machine(small_config), timeline=timeline,
            quantum_cycles=1_000,
        )
        without = run_machine(
            make_small_machine(small_config), quantum_cycles=1_000
        )
        assert (
            with_event.quantum_stats["plan_reuses"]
            < without.quantum_stats["plan_reuses"]
        )

    def test_policy_change_invalidates_cached_plans(self, small_config):
        # Cycle 5000 sits inside a timeslice: without the event the plan
        # would have been reused, so a policy hot-swap must cost reuses.
        timeline = Timeline.of(PolicyChanged(cycle=5_000, policy="no-dmr"))
        with_event = run_machine(
            make_small_machine(small_config), timeline=timeline,
            quantum_cycles=1_000,
        )
        without = run_machine(
            make_small_machine(small_config), quantum_cycles=1_000
        )
        assert (
            with_event.quantum_stats["plan_reuses"]
            < without.quantum_stats["plan_reuses"]
        )

    def test_reliability_mode_change_replans_with_dmr_pairs(self, small_config):
        # A cached plan must not survive a ReliabilityModeChanged event:
        # the very next placement of the flipped VM has to carry DMR pairs.
        machine = make_small_machine(small_config)
        timeline = Timeline.of(
            ReliabilityModeChanged(cycle=1_000, vm_name="performance",
                                   mode="RELIABLE")
        )
        sim = Simulator(
            machine,
            SimulationOptions(total_cycles=8_000, warmup_cycles=2_000),
            timeline=timeline,
        )
        vm = next(v for v in machine.active_vms if v.name == "performance")
        plan, reused = sim._phase_place(vm)
        assert not reused
        assert all(
            p.assignment.secondary_core is None for p in plan.placements
        )
        again, reused = sim._phase_place(vm)
        assert reused and again is plan
        sim._apply_due_events(1_000)
        replanned, reused = sim._phase_place(vm)
        assert not reused
        assert all(
            p.assignment.secondary_core is not None
            for p in replanned.placements
        )

    def test_fault_injected_machines_always_replan(self, small_config):
        # Reusing a plan would carry ReunionPair fingerprint state across
        # quanta, making fault-detection timing depend on cache hits.
        machine = make_small_machine(
            small_config, fault_rates=FaultRates(execution_result=0.0001)
        )
        result = run_machine(machine, quantum_cycles=1_000)
        assert result.quantum_stats.get("plan_reuses", 0) == 0

    def test_stateful_policies_are_never_reused(self, small_config):
        machine = make_small_machine(
            small_config,
            policy="mmm-adaptive",
            performance_mode=ReliabilityMode.PERFORMANCE_USER_ONLY,
        )
        result = run_machine(machine, quantum_cycles=1_000,
                             fine_grained_switching=False)
        assert result.quantum_stats.get("plan_reuses", 0) == 0


# ===================================================================== #
# Fuzz-found regression scenarios
# ===================================================================== #


def run_fuzz_regression(vm_specs, policy, seed, timeline, total, warmup):
    """Replay one frozen fuzz scenario under full oracle observation.

    The rosters and timelines below are the gnarliest scenarios surfaced by
    the 180-case default `repro fuzz` campaign, frozen verbatim (generator
    changes must not silently rewrite them).  Each runs on the evaluation
    config with every invariant oracle attached; regressions in event
    application, lifecycle accounting or plan shape fail here first.
    """
    from repro.sim.fuzz.oracles import OracleContext, observe_run, run_oracles

    settings = ExperimentSettings()
    machine = MixedModeMachine(
        config=settings.config(), vm_specs=vm_specs, policy=policy, seed=seed
    )
    options = SimulationOptions(total_cycles=total, warmup_cycles=warmup)
    result, observations = observe_run(machine, options, timeline=timeline)
    context = OracleContext(
        machine=machine,
        result=result,
        options=options,
        timeline=timeline,
        observations=observations,
        roster_names=tuple(spec.name for spec in vm_specs),
        initial_active=frozenset(
            spec.name for spec in vm_specs if spec.present_at_start
        ),
    )
    assert run_oracles(context, "regression") == []
    return machine, result


def fuzz_vm(name, workload, vcpus, mode, present):
    return VmSpec(
        name=name,
        workload=workload,
        num_vcpus=vcpus,
        reliability=mode,
        phase_scale=0.01,
        footprint_scale=0.125,
        present_at_start=present,
    )


class TestFuzzRegressions:
    def test_mode_change_on_a_vm_that_has_not_arrived_yet(self):
        # fuzz case mixed:0:5 -- fuzz2's reliability flips while it is still
        # deferred, then it arrives, the policy hot-swaps and two cores fail
        # and repair inside the measured window.
        machine, result = run_fuzz_regression(
            vm_specs=[
                fuzz_vm("fuzz0", "oltp", 3, ReliabilityMode.RELIABLE, True),
                fuzz_vm("fuzz1", "pgbench", 1, ReliabilityMode.PERFORMANCE, True),
                fuzz_vm("fuzz2", "apache", 2, ReliabilityMode.PERFORMANCE, False),
            ],
            policy="mmm-ipc",
            seed=5,
            timeline=Timeline.of(
                ReliabilityModeChanged(cycle=3342, vm_name="fuzz2", mode="RELIABLE"),
                PolicyChanged(cycle=3858, policy="mmm-tp"),
                VmArrived(cycle=4036, vm_name="fuzz2"),
                ReliabilityModeChanged(cycle=7391, vm_name="fuzz1", mode="RELIABLE"),
                VmDeparted(cycle=12834, vm_name="fuzz0"),
                CoreFailed(cycle=14911, core_id=12),
                CoreRepaired(cycle=16633, core_id=12),
                CoreFailed(cycle=16948, core_id=3),
                CoreRepaired(cycle=17109, core_id=3),
            ),
            total=21384,
            warmup=977,
        )
        assert result.timeline_events_applied == 9
        # The pre-arrival flip stuck: fuzz2 entered the schedule reliable.
        assert machine.vm_by_name("fuzz2").is_reliable
        assert {vm.name for vm in machine.active_vms} == {"fuzz1", "fuzz2"}
        assert machine.retired_cores == frozenset()

    def test_adaptive_policy_with_mid_warmup_churn_and_core_failure(self):
        # fuzz case mixed:5:1 -- the stateful adaptive policy sees a VM
        # arrive during warmup, three reliability flips, a core failure that
        # lasts most of the run, and a policy swap to mmm-tp near the end.
        machine, result = run_fuzz_regression(
            vm_specs=[
                fuzz_vm("fuzz0", "oltp", 1, ReliabilityMode.PERFORMANCE, True),
                fuzz_vm("fuzz1", "pmake", 3, ReliabilityMode.RELIABLE, True),
                fuzz_vm("fuzz2", "apache", 2, ReliabilityMode.PERFORMANCE, True),
                fuzz_vm("fuzz3", "apache", 3, ReliabilityMode.PERFORMANCE, False),
            ],
            policy="mmm-adaptive",
            seed=1,
            timeline=Timeline.of(
                VmArrived(cycle=5847, vm_name="fuzz3"),
                ReliabilityModeChanged(cycle=8375, vm_name="fuzz2", mode="RELIABLE"),
                ReliabilityModeChanged(cycle=13266, vm_name="fuzz3", mode="PERFORMANCE"),
                CoreFailed(cycle=14785, core_id=0),
                ReliabilityModeChanged(cycle=18468, vm_name="fuzz1", mode="RELIABLE"),
                PolicyChanged(cycle=28313, policy="mmm-tp"),
                FaultRateBurst(cycle=30487, scale=5.5324, duration_cycles=1589),
                CoreRepaired(cycle=40658, core_id=0),
            ),
            total=40957,
            warmup=14166,
        )
        assert result.timeline_events_applied == 8
        assert result.policy_name == "mmm-tp"
        assert machine.retired_cores == frozenset()

    def test_vm_departs_and_rearrives_with_a_pending_tail_event(self):
        # fuzz case churn-heavy:1:5 -- fuzz3 departs and re-arrives within
        # one run, fuzz1 and fuzz2 churn around a core failure window, and
        # the final arrival lands beyond the horizon (pending, never
        # applied).
        machine, result = run_fuzz_regression(
            vm_specs=[
                fuzz_vm("fuzz0", "pgoltp", 3, ReliabilityMode.PERFORMANCE, True),
                fuzz_vm("fuzz1", "pgbench", 1, ReliabilityMode.RELIABLE, False),
                fuzz_vm("fuzz2", "pgoltp", 1, ReliabilityMode.PERFORMANCE, True),
                fuzz_vm("fuzz3", "oltp", 3, ReliabilityMode.PERFORMANCE, False),
            ],
            policy="mmm-tp",
            seed=5,
            timeline=Timeline.of(
                FaultRateBurst(cycle=2691, scale=6.1604, duration_cycles=4978),
                VmArrived(cycle=2970, vm_name="fuzz1"),
                CoreFailed(cycle=22880, core_id=9),
                VmArrived(cycle=25298, vm_name="fuzz3"),
                VmDeparted(cycle=27486, vm_name="fuzz1"),
                CoreRepaired(cycle=28316, core_id=9),
                VmDeparted(cycle=35878, vm_name="fuzz3"),
                VmArrived(cycle=36046, vm_name="fuzz3"),
                VmDeparted(cycle=39176, vm_name="fuzz2"),
                VmArrived(cycle=51251, vm_name="fuzz1"),
            ),
            total=35265,
            warmup=10119,
        )
        assert result.timeline_events_applied == 9
        assert result.timeline_events_pending == 1
        assert {vm.name for vm in machine.active_vms} == {"fuzz0", "fuzz3"}


# ===================================================================== #
# Engine determinism and spec registration
# ===================================================================== #


def fresh(jobs: int = 1, backend=None) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, use_cache=False, backend=backend)


def canonical(results) -> str:
    return json.dumps(
        {job.cache_key(): metrics for job, metrics in results.items()},
        sort_keys=True,
    )


class TestTimelineDeterminism:
    @pytest.fixture(scope="class")
    def dynamic_jobs(self):
        return degradation_jobs(QUICK, (0, 2)) + churn_jobs(QUICK, 1)

    def test_events_are_part_of_the_job_identity(self):
        plain = degradation_jobs(QUICK, (0,))
        failing = degradation_jobs(QUICK, (2,))
        assert {job.cache_key() for job in plain}.isdisjoint(
            {job.cache_key() for job in failing}
        )

    def test_simulate_cell_is_deterministic(self, dynamic_jobs):
        job = [j for j in dynamic_jobs if j.param("timeline")][0]
        assert simulate_cell(job) == simulate_cell(job)

    @pytest.mark.slow
    def test_byte_identical_across_all_backends(self, dynamic_jobs):
        serial = fresh().run_jobs(dynamic_jobs)
        process = fresh(jobs=2, backend="process").run_jobs(dynamic_jobs)
        threads = fresh(jobs=2, backend="thread").run_jobs(dynamic_jobs)
        assert canonical(serial) == canonical(process) == canonical(threads)

    def test_chunking_does_not_change_results(self, dynamic_jobs):
        whole = fresh().run_jobs(dynamic_jobs)
        chunked_runner = fresh()
        half = len(dynamic_jobs) // 2
        chunked = dict(chunked_runner.run_jobs(dynamic_jobs[:half]))
        chunked.update(chunked_runner.run_jobs(dynamic_jobs[half:]))
        reordered = fresh().run_jobs(list(reversed(dynamic_jobs)))
        assert canonical(whole) == canonical(chunked) == canonical(reordered)

    def test_events_fire_mid_run_in_the_degradation_cells(self, dynamic_jobs):
        results = fresh().run_jobs(dynamic_jobs)
        for job, metrics in results.items():
            if job.kind == "degradation" and job.param("failed_cores"):
                assert metrics["events_applied"] == job.param("failed_cores")
            if job.kind == "churn":
                assert metrics["events_applied"] == 2  # arrive + depart

    def test_specs_are_registered_and_ride_run_all(self):
        assert "degradation" in EXPERIMENTS
        assert "consolidation-churn" in EXPERIMENTS
        everything = run_all_experiments(
            QUICK,
            runner=fresh(),
            include_switching=False,
            include_ablation=False,
            include_faults=False,
        )
        assert "degradation" in everything.frames
        assert "consolidation-churn" in everything.frames
        rendered = everything.render()
        assert "Graceful degradation" in rendered
        assert "Consolidation churn" in rendered
