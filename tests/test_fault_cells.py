"""Tests for the cell-shaped fault-injection campaign.

The campaign's engine contract mirrors the simulation cells':

* **identity** -- a cell is fully described by (configuration, fault site,
  seed, trials chunk, fault rate), and chunking shapes cells without
  changing the assembled report;
* **determinism** -- serial, process-pool and warm-cache runs assemble
  byte-identical coverage reports, and trial outcomes are independent of
  the order cells execute in;
* **serialization** -- trial records and coverage reports survive the JSON
  round trip the on-disk result cache applies.
"""

from __future__ import annotations

import json

import pytest

from repro.config.presets import paper_system_config
from repro.errors import FaultInjectionError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    PAB_WITH_DMR,
    SWEEP_CONFIGURATIONS,
    TRIAL_SITES,
    FaultInjectionCampaign,
    run_trial_chunk,
    trial_rng,
)
from repro.faults.cells import (
    assemble_coverage_reports,
    assemble_seed_coverage_reports,
    execute_fault_cell,
    fault_campaign_jobs,
)
from repro.faults.models import FaultSite, FaultSpec
from repro.faults.outcomes import CoverageReport, FaultOutcome, TrialRecord
from repro.sim.experiments import (
    run_fault_coverage_experiment,
    run_fault_rate_sweep,
)
from repro.sim.runner import ExperimentRunner


def small_jobs(**overrides):
    defaults = dict(trials_per_site=10, seeds=(0,), trials_per_cell=4)
    defaults.update(overrides)
    return fault_campaign_jobs(**defaults)


def fresh_runner(jobs: int = 1, **kwargs) -> ExperimentRunner:
    kwargs.setdefault("use_cache", False)
    return ExperimentRunner(jobs=jobs, **kwargs)


def serialized_reports(reports) -> str:
    return json.dumps([r.to_dict() for r in reports.values()], sort_keys=True)


class TestEnumeration:
    def test_one_cell_per_configuration_site_seed_chunk(self):
        jobs = small_jobs(seeds=(0, 1))
        # 3 configurations x 4 sites x 2 seeds x ceil(10/4)=3 chunks.
        assert len(jobs) == 3 * 4 * 2 * 3
        assert {job.kind for job in jobs} == {"faults"}
        assert {job.workload for job in jobs} == set(TRIAL_SITES)
        assert {job.variant for job in jobs} == {c.name for c in DEFAULT_CONFIGURATIONS}

    def test_chunks_partition_the_trials(self):
        jobs = small_jobs()
        per_family = {}
        for job in jobs:
            key = (job.variant, job.workload)
            per_family.setdefault(key, []).append(
                (job.param("first_trial"), job.param("trials"))
            )
        for chunks in per_family.values():
            chunks.sort()
            assert sum(count for _, count in chunks) == 10
            expected_start = 0
            for first, count in chunks:
                assert first == expected_start
                expected_start += count

    def test_jobs_are_picklable_and_cache_keyed(self):
        import pickle

        job = small_jobs()[0]
        assert pickle.loads(pickle.dumps(job)) == job
        assert job.cache_key() == small_jobs()[0].cache_key()
        # The fault rate is part of the cell identity.
        other = small_jobs(fault_rate=0.5)[0]
        assert other.cache_key() != job.cache_key()

    def test_input_validation(self):
        with pytest.raises(FaultInjectionError):
            fault_campaign_jobs(trials_per_site=0)
        with pytest.raises(FaultInjectionError):
            fault_campaign_jobs(trials_per_cell=0)
        with pytest.raises(FaultInjectionError):
            fault_campaign_jobs(seeds=())

    def test_duplicate_seeds_do_not_duplicate_cells(self):
        assert small_jobs(seeds=(0, 0, 1)) == small_jobs(seeds=(0, 1))


class TestDeterminism:
    def test_serial_and_pool_reports_are_byte_identical(self):
        jobs = small_jobs(seeds=(0, 1))
        serial = assemble_coverage_reports(jobs, fresh_runner(1).run_jobs(jobs))
        pooled = assemble_coverage_reports(jobs, fresh_runner(4).run_jobs(jobs))
        assert serialized_reports(serial) == serialized_reports(pooled)

    def test_outcomes_independent_of_cell_execution_order(self):
        jobs = small_jobs()
        forward = fresh_runner(1).run_jobs(jobs)
        backward = fresh_runner(1).run_jobs(list(reversed(jobs)))
        for job in jobs:
            assert forward[job] == backward[job]

    def test_chunking_does_not_change_the_assembled_report(self):
        fine = small_jobs(trials_per_cell=2)
        coarse = small_jobs(trials_per_cell=10)
        assert len(fine) > len(coarse)
        fine_reports = assemble_coverage_reports(fine, fresh_runner(1).run_jobs(fine))
        coarse_reports = assemble_coverage_reports(
            coarse, fresh_runner(1).run_jobs(coarse)
        )
        assert serialized_reports(fine_reports) == serialized_reports(coarse_reports)

    def test_trial_rng_depends_only_on_trial_identity(self):
        a = trial_rng(3, "mmm", "store-reliable", 7)
        b = trial_rng(3, "mmm", "store-reliable", 7)
        assert a.randint(0, 1 << 30) == b.randint(0, 1 << 30)
        c = trial_rng(3, "mmm", "store-reliable", 8)
        assert a.seed != c.seed

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        jobs = small_jobs()
        cold = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        cold_reports = assemble_coverage_reports(jobs, cold.run_jobs(jobs))
        assert cold.stats.executed == len(jobs)

        warm = ExperimentRunner(jobs=2, cache_dir=tmp_path)
        warm_reports = assemble_coverage_reports(jobs, warm.run_jobs(jobs))
        assert warm.stats.executed == 0
        assert warm.stats.cached == len(jobs)
        assert serialized_reports(cold_reports) == serialized_reports(warm_reports)


class TestSerialization:
    def test_trial_record_json_round_trip(self):
        record = run_trial_chunk(
            config=paper_system_config(),
            configuration=DEFAULT_CONFIGURATIONS[1],
            site="store-reliable",
            seed=5,
            first_trial=3,
            trials=1,
        )[0]
        payload = json.loads(json.dumps(record.to_dict()))
        assert TrialRecord.from_dict(payload) == record

    def test_coverage_report_json_round_trip(self):
        report = CoverageReport(configuration="mmm")
        report.extend(
            run_trial_chunk(
                config=paper_system_config(),
                configuration=DEFAULT_CONFIGURATIONS[1],
                site="privileged-register",
                seed=0,
                first_trial=0,
                trials=4,
            )
        )
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = CoverageReport.from_dict(payload)
        assert rebuilt == report
        assert rebuilt.coverage == report.coverage

    def test_fault_spec_round_trip_preserves_every_field(self):
        spec = FaultSpec(
            site=FaultSite.STORE_ADDRESS_PATH,
            target_address=0x1234,
            core_id=2,
            duration_operations=3,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultSpace:
    def test_unknown_site_is_rejected(self):
        campaign = FaultInjectionCampaign(config=paper_system_config())
        with pytest.raises(FaultInjectionError, match="known sites"):
            campaign.run_trial(DEFAULT_CONFIGURATIONS[0], "bogus-site", 0)

    def test_pab_with_dmr_keeps_full_coverage(self):
        result = run_fault_coverage_experiment(
            trials_per_site=10, configurations=(PAB_WITH_DMR,), seeds=(0,),
            runner=fresh_runner(),
        )
        row = result.row("dmr-plus-pab")
        assert row.coverage == 1.0
        assert row.report.count(FaultOutcome.DETECTED_DMR) > 0

    def test_fault_rate_scales_silent_corruption(self):
        sweep = run_fault_rate_sweep(
            fault_rates=(0.1, 1.0), trials_per_site=20,
            configurations=SWEEP_CONFIGURATIONS, seeds=(0, 1),
            runner=fresh_runner(),
        )
        naive_low = sweep.by_rate[0.1].row("naive-mode-switch")
        naive_full = sweep.by_rate[1.0].row("naive-mode-switch")
        assert naive_low.silent_corruption_rate < naive_full.silent_corruption_rate
        # Rate-masked trials never break the protected designs.
        for rate in (0.1, 1.0):
            assert sweep.by_rate[rate].row("mmm").coverage == 1.0
            assert sweep.by_rate[rate].row("dmr-plus-pab").coverage == 1.0

    def test_multi_seed_reports_and_intervals(self):
        result = run_fault_coverage_experiment(
            trials_per_site=8, seeds=(0, 1, 2), runner=fresh_runner()
        )
        for row in result.rows:
            assert row.report.total == 8 * len(TRIAL_SITES) * 3
            assert set(row.coverage_by_seed) == {0, 1, 2}
            assert row.coverage_interval.count == 3

    def test_inline_campaign_matches_engine_cells(self):
        # The legacy inline driver and the cell-shaped path are two views of
        # the same trial space: same trials, same outcomes.
        campaign = FaultInjectionCampaign(config=paper_system_config(), seed=0)
        inline = {r.configuration: r for r in campaign.run(trials_per_site=10)}
        jobs = small_jobs()
        engine = assemble_coverage_reports(jobs, fresh_runner().run_jobs(jobs))
        for name, report in engine.items():
            assert report.to_dict() == inline[name].to_dict()


class TestAssembly:
    def test_assembly_ignores_non_fault_jobs(self):
        from repro.sim.experiments import figure5_jobs
        from repro.sim.settings import ExperimentSettings

        jobs = small_jobs()
        extra = figure5_jobs(ExperimentSettings.quick().with_workloads(("apache",)))
        results = fresh_runner().run_jobs(jobs)
        padded = dict(results)
        for job in extra:
            padded[job] = {"user_ipc": 0.0, "throughput": 0.0}
        reports = assemble_coverage_reports([*jobs, *extra], padded)
        assert set(reports) == {c.name for c in DEFAULT_CONFIGURATIONS}

    def test_seed_assembly_partitions_the_merged_report(self):
        jobs = small_jobs(seeds=(0, 1))
        results = fresh_runner().run_jobs(jobs)
        merged = assemble_coverage_reports(jobs, results)
        per_seed = assemble_seed_coverage_reports(jobs, results)
        for name, report in merged.items():
            assert report.total == sum(
                per_seed[(name, seed)].total for seed in (0, 1)
            )

    def test_execute_fault_cell_requires_config(self):
        from dataclasses import replace

        from repro.errors import ExperimentError

        job = replace(small_jobs()[0], config=None)
        with pytest.raises(ExperimentError):
            execute_fault_cell(job)
