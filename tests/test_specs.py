"""Tests for the declarative experiment-spec API (:mod:`repro.sim.specs`).

Four contracts:

* **registry completeness** -- every legacy ``run_*`` entry point is
  subsumed by a registered spec, and the registry drives both
  ``run_all_experiments`` and the CLI;
* **parity** -- running an experiment through its spec produces the same
  result as the legacy wrapper (they share enumerators and assemblers);
* **backend determinism** -- ``serial``, ``process`` and ``thread``
  backends produce byte-identical results for one spec of each family
  (simulation, measurement, faults);
* **uniform rendering** -- ``to_table``/``to_json`` are generated from the
  spec's ``MetricSchema`` and stay consistent with the legacy dataclass
  views (full numeric parity lives in ``tests/test_frames.py``).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.sim.experiments import (
    ExperimentSettings,
    run_dmr_overhead_experiment,
    run_fault_coverage_experiment,
    run_single_os_overhead_study,
    run_window_ablation,
)
from repro.sim.runner import ExperimentRunner
from repro.sim.specs import (
    EXPERIMENTS,
    ExperimentSpec,
    ParameterGrid,
    SpecRequest,
    experiment,
    experiment_names,
    jsonify,
    register_experiment,
)

QUICK = ExperimentSettings.quick().with_workloads(("apache",))

#: Every legacy entry point and the spec that subsumes it.
LEGACY_ENTRY_POINTS = {
    "run_dmr_overhead_experiment": "figure5",
    "run_mixed_mode_experiment": "figure6",
    "run_pab_latency_study": "pab",
    "run_switch_overhead_experiment": "table1",
    "run_switch_frequency_experiment": "table2",
    "run_single_os_overhead_study": "single-os",
    "run_window_ablation": "ablation",
    "run_fault_coverage_experiment": "faults",
    "run_fault_rate_sweep": "faults",
}


def fresh(jobs: int = 1, backend=None) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, use_cache=False, backend=backend)


class TestParameterGrid:
    def test_points_are_row_major_and_sized(self):
        grid = ParameterGrid.of(("a", (1, 2)), ("b", ("x", "y", "z")))
        points = list(grid.points())
        assert len(points) == grid.size() == 6
        assert points[0] == {"a": 1, "b": "x"}
        assert points[1] == {"a": 1, "b": "y"}  # last axis varies fastest
        assert points[-1] == {"a": 2, "b": "z"}

    def test_axis_lookup_and_describe(self):
        grid = ParameterGrid.of(("workload", ("apache",)), ("seed", (0, 1)))
        assert grid.axis("seed") == (0, 1)
        assert grid.names() == ("workload", "seed")
        assert grid.describe() == "workload(1) x seed(2)"
        with pytest.raises(ExperimentError):
            grid.axis("nope")

    def test_empty_grid(self):
        assert ParameterGrid(()).size() == 0
        assert ParameterGrid(()).describe() == "(empty)"


class TestRegistry:
    def test_every_legacy_entry_point_has_a_spec(self):
        for entry_point, name in LEGACY_ENTRY_POINTS.items():
            assert name in EXPERIMENTS, entry_point
            assert entry_point in EXPERIMENTS[name].legacy_entry_points

    def test_registry_covers_exactly_the_paper_experiments(self):
        assert set(experiment_names()) >= {
            "figure5", "figure6", "pab", "table1", "table2", "single-os",
            "ablation", "faults",
        }

    def test_every_spec_grid_matches_its_job_count(self):
        # The grid is the declared cell space: its size must equal the
        # number of enumerated jobs for any request.
        for name, spec in EXPERIMENTS.items():
            request = spec.request(QUICK)
            assert spec.grid(request).size() == len(spec.enumerate_jobs(request)), name

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ExperimentError):
            register_experiment(EXPERIMENTS["figure5"])

    def test_unknown_experiment_lookup(self):
        with pytest.raises(ExperimentError, match="registered"):
            experiment("figure7")


class TestRequestResolution:
    def test_workload_limit_applies_only_without_explicit_workloads(self):
        spec = EXPERIMENTS["ablation"]
        wide = ExperimentSettings.quick()  # two workloads; limit is two
        assert spec.request(wide).settings.workloads == wide.workloads
        six = ExperimentSettings()
        assert len(spec.request(six).settings.workloads) == 2
        assert (
            spec.request(six, explicit_workloads=True).settings.workloads
            == six.workloads
        )

    def test_single_seed_specs_keep_only_the_first_seed(self):
        spec = EXPERIMENTS["table1"]
        request = spec.request(QUICK.with_seeds((7, 8, 9)))
        assert request.settings.seeds == (7,)
        for job in spec.enumerate_jobs(request):
            assert job.seed == 7

    def test_options_reach_the_request(self):
        request = SpecRequest(settings=QUICK, options={"trials": 3})
        assert request.option("trials") == 3
        assert request.option("missing", 42) == 42
        # Explicit None falls back to the default too.
        assert SpecRequest(settings=QUICK, options={"x": None}).option("x", 1) == 1


class TestSpecRunsMatchLegacyWrappers:
    """Specs return frames; the legacy wrappers return dataclass views.

    Full numeric spec-vs-wrapper parity for every family lives in
    ``tests/test_frames.py``; these tests pin the contract itself."""

    def test_figure5_frame_matches_wrapper_rows(self):
        frame = EXPERIMENTS["figure5"].run(QUICK, runner=fresh())
        legacy = run_dmr_overhead_experiment(QUICK, runner=fresh())
        for row in legacy.rows:
            for configuration, interval in row.per_thread_ipc.items():
                assert interval == frame.value(
                    "user_ipc", workload=row.workload, configuration=configuration
                )

    def test_ablation_default_restriction(self):
        # Legacy default restricted the ablation to two workloads; the
        # spec's workload_limit keeps that behaviour.
        frame = EXPERIMENTS["ablation"].run(QUICK, runner=fresh())
        legacy = run_window_ablation(QUICK, runner=fresh())
        assert tuple(row.workload for row in legacy.rows) == frame.axis_values(
            "workload"
        )
        for row in legacy.rows:
            for variant, ipc in row.ipc_by_variant.items():
                assert ipc == frame.value(
                    "user_ipc", workload=row.workload, variant=variant
                )

    def test_single_os_spec_equals_composed_study(self):
        frame = EXPERIMENTS["single-os"].run(
            QUICK,
            runner=fresh(),
            transitions_to_measure=2,
            warmup_cycles=2_000,
            phases_to_measure=1,
            measurement_phase_scale=0.02,
        )
        legacy = run_single_os_overhead_study(workloads=("apache",), runner=fresh())
        # Different measurement knobs => different numbers; same workloads
        # and shape, and both positive overheads.
        assert frame.axis_values("workload") == tuple(
            row.workload for row in legacy.rows
        )
        for row in frame.rows:
            assert row["switch_cycles"] > 0
            assert 0 < row["overhead_percent"] < 100

    def test_faults(self):
        frame = EXPERIMENTS["faults"].run(
            ExperimentSettings().with_seeds((0, 1)), runner=fresh(), trials=4
        )
        via_wrapper = run_fault_coverage_experiment(
            trials_per_site=4, seeds=(0, 1), runner=fresh()
        )
        assert frame.axis_values("configuration") == tuple(
            row.configuration for row in via_wrapper.rows
        )
        for row in via_wrapper.rows:
            cell = frame.value("coverage", configuration=row.configuration)
            assert cell.mean == pytest.approx(row.coverage)
            assert cell == row.coverage_interval
            assert frame.value("trials", configuration=row.configuration) == (
                row.report.total
            )


@pytest.mark.slow
class TestBackendDeterminism:
    """serial == process == thread, byte for byte, one spec per family."""

    CASES = {
        "figure5": dict(),                      # simulation family
        "table2": dict(phases_to_measure=1, measurement_phase_scale=0.02),
        "faults": dict(trials=4),               # faults family
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_backends_agree(self, name):
        spec = EXPERIMENTS[name]
        settings = QUICK.with_seeds((0, 1)) if spec.multi_seed else QUICK
        documents = {}
        for backend in ("serial", "process", "thread"):
            result = spec.run(
                settings, runner=fresh(jobs=2, backend=backend), **self.CASES[name]
            )
            documents[backend] = json.dumps(spec.to_json(result), sort_keys=True)
        assert documents["serial"] == documents["process"] == documents["thread"]


class TestUniformRendering:
    def test_to_table_is_generated_from_the_schema_views(self):
        frame = EXPERIMENTS["figure5"].run(QUICK, runner=fresh())
        rendered = EXPERIMENTS["figure5"].to_table(frame)
        # Both schema views render, in order, with the paper's titles.
        assert rendered.index("Figure 5(a)") < rendered.index("Figure 5(b)")
        assert "apache" in rendered
        # The legacy dataclass view formats the same normalised numbers.
        legacy = run_dmr_overhead_experiment(QUICK, runner=fresh())
        normalized = legacy.rows[0].normalized_ipc()["reunion"]
        assert f"{normalized:.3f}" in rendered

    def test_to_json_is_serializable_and_tagged(self):
        spec = EXPERIMENTS["figure5"]
        result = spec.run(QUICK, runner=fresh())
        document = spec.to_json(result)
        assert document["experiment"] == "figure5"
        assert document["family"] == "simulation"
        parsed = json.loads(json.dumps(document))
        assert parsed["result"]["rows"][0]["workload"] == "apache"

    def test_jsonify_handles_enums_dataclass_and_odd_keys(self):
        from enum import Enum

        class Colour(Enum):
            RED = 1

        assert jsonify(Colour.RED) == "RED"
        assert jsonify({1: (Colour.RED,)}) == {"1": ["RED"]}
        assert jsonify(frozenset(["x"])) == ["x"]
        assert jsonify(object()).startswith("<object object")


class TestCustomSpecIntegration:
    def test_registered_spec_joins_run_all_extras(self, tmp_path):
        from repro.sim.experiments import run_all_experiments
        from repro.sim.jobs import ExperimentJob

        spec = ExperimentSpec(
            name="spec-test-extra",
            title="test extra",
            grid=lambda request: ParameterGrid.of(("seed", request.settings.seeds)),
            enumerate_jobs=lambda request: [
                ExperimentJob(
                    kind="figure5", workload="apache", variant="no-dmr", seed=seed,
                    settings=request.settings.cell_settings(),
                )
                for seed in request.settings.seeds
            ],
            assemble=lambda request, jobs, results: sorted(
                results[job]["user_ipc"] for job in jobs
            ),
            tables=lambda result: [f"extra ipcs: {result}"],
        )
        register_experiment(spec)
        try:
            everything = run_all_experiments(
                QUICK,
                runner=ExperimentRunner(jobs=1, cache_dir=tmp_path),
                include_switching=False,
                include_ablation=False,
                include_faults=False,
            )
            assert everything.extras["spec-test-extra"]
            assert "extra ipcs:" in everything.render()
        finally:
            del EXPERIMENTS["spec-test-extra"]
