"""Tests for the three-level cache hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import MemorySystemError
from repro.mem.hierarchy import MemoryHierarchy
from repro.mem.lines import LineState


@pytest.fixture
def hierarchy(small_config):
    return MemoryHierarchy(small_config)


ADDR = 0x4_0000


class TestCoherentLoads:
    def test_first_load_misses_to_memory(self, hierarchy):
        result = hierarchy.load(0, ADDR)
        assert result.level == "memory"
        assert result.offchip
        assert result.latency >= hierarchy.config.memory.load_to_use_latency

    def test_second_load_hits_l1(self, hierarchy):
        hierarchy.load(0, ADDR)
        result = hierarchy.load(0, ADDR)
        assert result.level == "l1"
        assert result.latency == hierarchy.config.l1d.hit_latency

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.load(0, ADDR)
        # Thrash the L1 set containing ADDR so it falls back to the L2.
        l1 = hierarchy.l1d_for(0)
        stride = l1.config.num_sets * 64
        for way in range(1, l1.config.associativity + 2):
            hierarchy.load(0, ADDR + way * stride)
        result = hierarchy.load(0, ADDR)
        assert result.level in ("l2", "l1")

    def test_remote_clean_copy_served_by_cache_to_cache(self, hierarchy):
        hierarchy.load(0, ADDR)
        result = hierarchy.load(1, ADDR)
        assert result.level == "c2c"
        assert result.c2c
        # A 3-hop transfer costs more than a plain L3 hit.
        assert result.latency > hierarchy.config.l3.hit_latency

    def test_exclusive_l3_holds_l2_victims(self, hierarchy):
        l2 = hierarchy.l2_for(0)
        stride = l2.config.num_sets * 64
        base = 0x10_0000
        # Fill one L2 set beyond its associativity to force victims into L3.
        for way in range(l2.config.associativity + 2):
            hierarchy.load(0, base + way * stride)
        assert hierarchy.l3.occupancy >= 1


class TestCoherentStores:
    def test_store_gains_ownership(self, hierarchy):
        hierarchy.store(0, ADDR)
        assert hierarchy.directory.owner_of(ADDR) == 0
        line = hierarchy.l2_for(0).lookup(ADDR)
        assert line.state is LineState.MODIFIED
        assert line.dirty

    def test_store_invalidates_remote_sharers(self, hierarchy):
        hierarchy.load(0, ADDR)
        hierarchy.load(1, ADDR)
        result = hierarchy.store(2, ADDR)
        assert result.invalidations >= 1
        assert not hierarchy.l2_for(0).contains(ADDR)
        assert not hierarchy.l1d_for(1).contains(ADDR)
        assert hierarchy.directory.owner_of(ADDR) == 2

    def test_store_hit_in_own_l2_is_cheap(self, hierarchy):
        hierarchy.store(0, ADDR)
        result = hierarchy.store(0, ADDR)
        assert result.level == "l2"
        assert result.latency == hierarchy.config.l2.hit_latency


class TestMuteAccesses:
    def test_mute_fill_does_not_touch_directory(self, hierarchy):
        hierarchy.load(1, ADDR, coherent=False)
        assert hierarchy.directory.peek(ADDR) is None
        line = hierarchy.l2_for(1).lookup(ADDR)
        assert line is not None
        assert not line.coherent

    def test_mute_read_of_vocal_line_is_c2c_and_leaves_owner_intact(self, hierarchy):
        hierarchy.store(0, ADDR)  # vocal owns the line dirty
        result = hierarchy.load(1, ADDR, coherent=False)
        assert result.level == "c2c"
        assert hierarchy.directory.owner_of(ADDR) == 0
        assert hierarchy.l2_for(0).lookup(ADDR).dirty

    def test_mute_store_never_marks_lines_coherent(self, hierarchy):
        hierarchy.store(1, ADDR, coherent=False)
        line = hierarchy.l2_for(1).lookup(ADDR)
        assert line.dirty and not line.coherent
        assert not line.needs_writeback

    def test_mute_l3_read_does_not_remove_the_line(self, hierarchy):
        # Put the line into the L3 by filling core 0's L2 set and evicting it.
        hierarchy.load(0, ADDR)
        l2 = hierarchy.l2_for(0)
        stride = l2.config.num_sets * 64
        for way in range(1, l2.config.associativity + 1):
            hierarchy.load(0, ADDR + way * stride)
        if hierarchy.l3.contains(ADDR):
            result = hierarchy.load(1, ADDR, coherent=False)
            assert result.level in ("l3", "c2c")
            assert hierarchy.l3.contains(ADDR) or result.level == "c2c"


class TestFlush:
    def test_flush_cost_is_one_cycle_per_frame(self, hierarchy):
        result = hierarchy.flush_l2(0)
        assert result.lines_inspected == hierarchy.config.l2.num_lines
        assert result.cycles >= hierarchy.config.l2.num_lines

    def test_flush_writes_back_coherent_dirty_lines_only(self, hierarchy):
        hierarchy.store(0, ADDR)                      # coherent dirty
        hierarchy.store(0, ADDR + 0x800_0, coherent=False)  # incoherent dirty
        result = hierarchy.flush_l2(0)
        assert result.dirty_writebacks == 1
        assert result.incoherent_dropped >= 1
        assert hierarchy.l2_for(0).occupancy == 0
        assert hierarchy.l1d_for(0).occupancy == 0
        # The coherent dirty line survived in the L3.
        assert hierarchy.l3.contains(ADDR)

    def test_flush_cost_scales_with_l2_size(self, small_config, paper_config):
        small = MemoryHierarchy(small_config).flush_l2(0).cycles
        # The paper's 512 KB L2 flush is ~8k cycles (8192 frames).
        large = MemoryHierarchy(paper_config).flush_l2(0)
        assert large.lines_inspected == 8192
        assert large.cycles >= 8192
        assert small < large.cycles

    def test_invalidate_incoherent_lines(self, hierarchy):
        hierarchy.load(1, ADDR, coherent=False)
        hierarchy.load(1, ADDR + 0x40, coherent=False)
        hierarchy.store(1, ADDR + 0x8000)  # coherent
        dropped = hierarchy.invalidate_incoherent_lines(1)
        assert dropped >= 2
        assert hierarchy.l2_for(1).contains(ADDR + 0x8000)


class TestErrorsAndStats:
    def test_unknown_core_rejected(self, hierarchy):
        with pytest.raises(MemorySystemError):
            hierarchy.load(99, ADDR)

    def test_negative_address_rejected(self, hierarchy):
        with pytest.raises(MemorySystemError):
            hierarchy.load(0, -4)

    def test_merged_stats_include_memory_counters(self, hierarchy):
        hierarchy.load(0, ADDR)
        merged = hierarchy.merged_stats()
        assert merged.get("accesses") >= 1
        assert merged.get("l1d.misses") >= 1

    def test_c2c_counter(self, hierarchy):
        hierarchy.store(0, ADDR)
        hierarchy.load(1, ADDR)
        assert hierarchy.c2c_transfer_count() >= 1
