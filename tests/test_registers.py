"""Tests for the architectural register state."""

from __future__ import annotations

import pytest

from repro.isa.registers import (
    ArchitecturalState,
    PRIVILEGED_REGISTERS,
    SANITY_CHECK_ONLY,
    USER_REGISTERS,
)


def test_fresh_state_has_all_registers_zeroed():
    state = ArchitecturalState()
    assert set(state.user) == set(USER_REGISTERS)
    assert set(state.privileged) == set(PRIVILEGED_REGISTERS)
    assert all(value == 0 for value in state.user.values())
    assert all(value == 0 for value in state.privileged.values())


def test_copy_is_independent():
    state = ArchitecturalState()
    copy = state.copy()
    state.write_user("r1", 42)
    state.write_privileged("tba", 0x1000)
    assert copy.read_user("r1") == 0
    assert copy.read_privileged("tba") == 0


def test_writes_mask_to_64_bits():
    state = ArchitecturalState()
    state.write_user("r2", 1 << 80)
    assert state.read_user("r2") == 0


def test_unknown_register_raises():
    state = ArchitecturalState()
    with pytest.raises(KeyError):
        state.write_user("nope", 1)
    with pytest.raises(KeyError):
        state.write_privileged("nope", 1)


def test_verify_privileged_matches_identical_copies():
    state = ArchitecturalState()
    ok, mismatches = state.verify_privileged_against(state.copy())
    assert ok
    assert mismatches == ()


def test_verify_detects_corruption():
    state = ArchitecturalState()
    redundant = state.copy()
    state.privileged["tba"] ^= 0x40
    ok, mismatches = state.verify_privileged_against(redundant)
    assert not ok
    assert mismatches == ("tba",)


def test_sanity_check_only_registers_may_differ():
    state = ArchitecturalState()
    redundant = state.copy()
    for name in SANITY_CHECK_ONLY:
        state.privileged[name] = 99
    ok, mismatches = state.verify_privileged_against(redundant)
    assert ok
    assert mismatches == ()


def test_privileged_digest_changes_with_state_and_is_stable():
    state = ArchitecturalState()
    before = state.privileged_digest()
    assert before == state.privileged_digest()
    state.write_privileged("pil", 7)
    assert state.privileged_digest() != before


def test_state_bytes_is_plausible_for_sparc_like_state():
    # The paper quotes ~2.3 KB of VCPU state; the register portion alone
    # should be a few hundred bytes.
    assert 300 <= ArchitecturalState().state_bytes() <= 1024
