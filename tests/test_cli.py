"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep every CLI invocation's result cache inside the test's tmp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def cached_entries(cache_dir, kind):
    """Entry count for one kind, read through a fresh cache instance."""
    from repro.sim.runner import make_result_cache

    stats = make_result_cache(cache_dir).stats().get(kind)
    return stats.entries if stats is not None else 0


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in (
        "run", "figure5", "figure6", "table1", "table2", "faults", "report",
        "run-all", "list", "cache",
    ):
        assert command in out


def test_subcommands_are_generated_from_the_registry(capsys):
    # Every registered spec is a subcommand with the shared engine flags --
    # the CLI has no hand-written per-experiment parser blocks left.
    from repro.sim.specs import EXPERIMENTS

    parser = build_parser()
    for name, spec in EXPERIMENTS.items():
        args = parser.parse_args([name, "--jobs", "2", "--backend", "thread",
                                  "--seeds", "1", "--no-cache"])
        assert args.command == name
        assert args.jobs == 2 and args.backend == "thread"
        for option in spec.options:
            assert hasattr(args, option.name)


def test_list_enumerates_every_registered_spec(capsys):
    from repro.sim.specs import EXPERIMENTS

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name, spec in EXPERIMENTS.items():
        assert name in out
        assert spec.family in out
    assert "workload" in out  # grid axes are shown


def test_command_is_required():
    with pytest.raises(SystemExit):
        main([])


def test_list_workloads_prints_all_six(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("apache", "oltp", "pgoltp", "pmake", "pgbench", "zeus"):
        assert name in out


def test_run_consolidated_server_summary(capsys):
    exit_code = main(
        [
            "run",
            "--policy", "mmm-tp",
            "--reliable", "oltp",
            "--performance", "apache",
            "--reliable-vcpus", "2",
            "--cycles", "8000",
            "--warmup", "2000",
            "--timeslice", "4000",
            "--capacity-scale", "16",
            "--phase-scale", "0.004",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "reliable" in out and "performance" in out
    assert "overall throughput" in out
    assert "silent corruptions: 0" in out


def test_run_single_os_desktop(capsys):
    exit_code = main(
        [
            "run",
            "--single-os",
            "--reliable-vcpus", "1",
            "--cycles", "8000",
            "--warmup", "2000",
            "--timeslice", "4000",
            "--capacity-scale", "16",
            "--phase-scale", "0.004",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "mmm-ipc" in out


def test_figure5_quick_subset(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5(a)" in out
    assert "Figure 5(b)" in out
    assert "apache" in out
    # Every engine-backed command reports its cache effectiveness.
    assert "experiment engine: 3 executed, 0 from cache, 0 memoized" in out
    # The engine cached every cell on disk (in the packed segment store).
    assert cached_entries(isolated_cache, "figure5") == 3


def test_figure5_seed_sweep_multiplies_cells(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache", "--seeds", "0,1"]) == 0
    out = capsys.readouterr().out
    assert "experiment engine: 6 executed" in out
    assert cached_entries(isolated_cache, "figure5") == 6


def test_figure5_no_cache_leaves_no_files(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache", "--no-cache"]) == 0
    assert "Figure 5(a)" in capsys.readouterr().out
    assert not isolated_cache.exists()


@pytest.mark.slow
def test_run_all_quick(capsys, tmp_path):
    argv = [
        "run-all", "--quick", "--workloads", "apache", "--jobs", "2",
        "--cache-dir", str(tmp_path / "explicit"),
        "--skip-switching", "--skip-faults",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Figure 5(a)" in out
    assert "Figure 6(b)" in out
    assert "experiment engine:" in out
    assert "0 from cache" in out

    # A warm re-run against the same cache directory simulates nothing.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 executed" in out


def test_figure5_thread_backend_matches_serial(capsys, isolated_cache):
    serial_argv = ["figure5", "--quick", "--workloads", "apache", "--no-cache"]
    assert main(serial_argv) == 0
    serial_out = capsys.readouterr().out
    threaded_argv = serial_argv + ["--jobs", "2", "--backend", "thread"]
    assert main(threaded_argv) == 0
    threaded_out = capsys.readouterr().out
    assert "backend: thread" in threaded_out
    # Identical tables, whatever the backend.
    assert (
        serial_out.split("experiment engine:")[0]
        == threaded_out.split("experiment engine:")[0]
    )


def test_json_output_is_the_spec_document(capsys):
    import json

    assert main(
        ["figure5", "--quick", "--workloads", "apache", "--no-cache", "--json"]
    ) == 0
    captured = capsys.readouterr()
    # stdout is a clean, redirectable document; engine stats go to stderr.
    document = json.loads(captured.out)
    assert "experiment engine:" in captured.err
    assert document["experiment"] == "figure5"
    assert document["grid"]["workload"] == ["apache"]
    assert document["result"]["rows"][0]["workload"] == "apache"


def test_cache_stats_and_clear_by_kind(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    assert main(["faults", "--trials", "2", "--seeds", "1"]) == 0
    capsys.readouterr()

    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "figure5" in out and "faults" in out and "total" in out

    assert main(["cache", "clear", "--kind", "figure5"]) == 0
    assert "removed 3 cached 'figure5' entries" in capsys.readouterr().out
    assert cached_entries(isolated_cache, "figure5") == 0
    assert cached_entries(isolated_cache, "faults") > 0

    assert main(["cache", "clear"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    assert "no entries" in capsys.readouterr().out


def test_cache_stats_reports_schema_version_breakdown(capsys, isolated_cache):
    import json

    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    # Plant a pre-redesign (version 1) entry next to the fresh ones: it
    # must show up in the breakdown even though loads treat it as a miss.
    stale = isolated_cache / "figure5" / "deadbeef.json"
    stale.write_text(
        json.dumps({"schema": 1, "key": "deadbeef", "metrics": {"user_ipc": 1.0}}),
        encoding="utf-8",
    )
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "versions" in out
    assert "v1:1" in out and "v3:3" in out


def test_faults_subcommand(capsys):
    assert main(["faults", "--trials", "5", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "always-dmr" in out
    assert "naive-mode-switch" in out
    assert "experiment engine:" in out


def test_faults_parallel_matches_serial_and_warm_cache(capsys, isolated_cache):
    argv = ["faults", "--trials", "4", "--seeds", "2", "--jobs", "2"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "0 from cache" in cold

    # A second run serves every campaign cell from the cache, with an
    # identical coverage table.
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "0 executed" in warm
    assert cold.split("experiment engine:")[0] == warm.split("experiment engine:")[0]


def test_faults_rate_sweep_and_extra_configurations(capsys):
    argv = [
        "faults", "--trials", "4", "--seeds", "1", "--no-cache",
        "--sweep-rates", "0.5,1.0", "--all-configurations",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Fault-space sweep" in out
    assert "dmr-plus-pab" in out
    assert "rate 0.5" in out and "rate 1" in out


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure5", "--workloads", "speccpu"])


def test_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--policy", "tmr"])


def test_rejects_nonpositive_jobs():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure5", "--jobs", "0"])


@pytest.mark.parametrize("bad", ["", "0", "x", "1,x", ","])
def test_rejects_malformed_seed_lists(bad):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure5", "--seeds", bad])


@pytest.mark.parametrize("bad", ["0", "-1,1", "1.5", "x", "nan", "0.5,nan"])
def test_rejects_malformed_rate_sweeps(bad):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["faults", "--sweep-rates", bad])


def test_seed_list_and_count_forms():
    parser = build_parser()
    assert parser.parse_args(["figure5", "--seeds", "3"]).seeds == (0, 1, 2)
    assert parser.parse_args(["figure5", "--seeds", "4,7"]).seeds == (4, 7)
    # Duplicate seeds would double-count cells in a sweep; they are dropped.
    assert parser.parse_args(["figure5", "--seeds", "4,4,7"]).seeds == (4, 7)


def test_single_seed_measurements_announce_dropped_seeds(capsys):
    assert main(["table2", "--workloads", "apache", "--seeds", "5,6"]) == 0
    out = capsys.readouterr().out
    assert "note: this measurement uses a single seed; taking seed 5" in out
    assert "Table 2" in out


def test_engine_stats_stderr_line_is_machine_readable(capsys, isolated_cache):
    import json

    assert main(["figure5", "--quick", "--workloads", "apache", "--seeds", "1"]) == 0
    captured = capsys.readouterr()
    stats_lines = [
        line for line in captured.err.splitlines() if line.startswith("engine-stats: ")
    ]
    assert len(stats_lines) == 1
    stats = json.loads(stats_lines[0][len("engine-stats: "):])
    assert stats["executed"] > 0
    assert stats["backend"] == "serial" and stats["workers"] == 1
    assert stats["wall_seconds"] > 0
    assert "execute" in stats["phases"] and "enumerate" in stats["phases"]
    # The human summary carries the same timing suffix.
    assert "s wall (" in captured.out


def test_cache_prune_requires_a_limit(capsys, isolated_cache):
    assert main(["cache", "prune"]) == 2
    assert "--max-age" in capsys.readouterr().err


def test_cache_prune_by_age_and_size(capsys, isolated_cache):
    # Populate the cache, then prune with limits that keep everything...
    assert main(["figure5", "--quick", "--workloads", "apache", "--seeds", "1"]) == 0
    capsys.readouterr()
    assert main(["cache", "prune", "--max-age", "7d", "--max-bytes", "1g"]) == 0
    out = capsys.readouterr().out
    assert "pruned 0 entries" in out
    # ...then with a zero age horizon that removes everything.
    assert main(["cache", "prune", "--max-age", "0s"]) == 0
    out = capsys.readouterr().out
    assert "kept 0 entries" in out
    # A warm re-run is gone: the next run executes again.
    assert main(["figure5", "--quick", "--workloads", "apache", "--seeds", "1"]) == 0
    assert "0 from cache" in capsys.readouterr().out


def test_cache_migrate_packs_legacy_entries(capsys, isolated_cache, monkeypatch):
    # Populate a legacy per-file cache, migrate it into the packed layout,
    # then confirm a packed run serves every cell warm.
    monkeypatch.setenv("REPRO_CACHE_LAYOUT", "legacy")
    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    capsys.readouterr()
    assert len(list(isolated_cache.glob("figure5/*.json"))) == 3

    monkeypatch.delenv("REPRO_CACHE_LAYOUT")
    assert main(["cache", "migrate"]) == 0
    out = capsys.readouterr().out
    assert "packed 3 legacy entries across 1 kinds" in out
    assert not list(isolated_cache.glob("figure5/*.json"))

    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    assert "0 executed, 3 from cache" in capsys.readouterr().out


def test_cache_compact_reclaims_overwritten_records(capsys, isolated_cache):
    from repro.sim.jobs import ExperimentJob
    from repro.sim.runner import ResultCache

    cache = ResultCache(isolated_cache)
    job = ExperimentJob(kind="figure5", workload="apache")
    for value in range(4):  # three superseded records for one live one
        cache.store(job, {"m": float(value)})
    cache.flush()
    assert main(["cache", "compact"]) == 0
    out = capsys.readouterr().out
    assert "compacted 1 entries across 1 kinds" in out
    assert "reclaimed" in out
    assert ResultCache(isolated_cache).load(job) == {"m": 3.0}


@pytest.mark.parametrize(
    "text,seconds",
    [("45", 45.0), ("30m", 1800.0), ("12h", 43200.0), ("7d", 604800.0), ("1w", 604800.0)],
)
def test_parse_duration_forms(text, seconds):
    from repro.cli import parse_duration

    assert parse_duration(text) == seconds


@pytest.mark.parametrize(
    "text,size",
    [("1048576", 1048576), ("512k", 524288), ("100m", 104857600), ("2g", 2147483648)],
)
def test_parse_size_forms(text, size):
    from repro.cli import parse_size

    assert parse_size(text) == size


@pytest.mark.parametrize("bad", ["", "x", "3q", "-5"])
def test_parse_duration_rejects_garbage(bad):
    import argparse

    from repro.cli import parse_duration

    with pytest.raises(argparse.ArgumentTypeError):
        parse_duration(bad)


def test_serve_and_worker_subcommands_parse():
    parser = build_parser()
    serve = parser.parse_args(["serve", "--port", "0", "--lease-seconds", "30"])
    assert serve.command == "serve" and serve.lease_seconds == 30.0
    worker = parser.parse_args(
        ["worker", "--coordinator", "http://127.0.0.1:1", "--jobs", "2"]
    )
    assert worker.command == "worker"
    assert worker.coordinator == "http://127.0.0.1:1" and worker.jobs == 2


def test_run_accepts_the_distributed_backend_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["run-all", "--quick", "--backend", "distributed",
         "--coordinator", "http://127.0.0.1:1"]
    )
    assert args.backend == "distributed"
    assert args.coordinator == "http://127.0.0.1:1"
