"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep every CLI invocation's result cache inside the test's tmp dir."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in (
        "run", "figure5", "figure6", "table1", "table2", "faults", "report", "run-all"
    ):
        assert command in out


def test_command_is_required():
    with pytest.raises(SystemExit):
        main([])


def test_list_workloads_prints_all_six(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("apache", "oltp", "pgoltp", "pmake", "pgbench", "zeus"):
        assert name in out


def test_run_consolidated_server_summary(capsys):
    exit_code = main(
        [
            "run",
            "--policy", "mmm-tp",
            "--reliable", "oltp",
            "--performance", "apache",
            "--reliable-vcpus", "2",
            "--cycles", "8000",
            "--warmup", "2000",
            "--timeslice", "4000",
            "--capacity-scale", "16",
            "--phase-scale", "0.004",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "reliable" in out and "performance" in out
    assert "overall throughput" in out
    assert "silent corruptions: 0" in out


def test_run_single_os_desktop(capsys):
    exit_code = main(
        [
            "run",
            "--single-os",
            "--reliable-vcpus", "1",
            "--cycles", "8000",
            "--warmup", "2000",
            "--timeslice", "4000",
            "--capacity-scale", "16",
            "--phase-scale", "0.004",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "mmm-ipc" in out


def test_figure5_quick_subset(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5(a)" in out
    assert "Figure 5(b)" in out
    assert "apache" in out
    # The engine cached every cell on disk (one JSON file per cell).
    assert len(list(isolated_cache.glob("figure5/*.json"))) == 3


def test_figure5_no_cache_leaves_no_files(capsys, isolated_cache):
    assert main(["figure5", "--quick", "--workloads", "apache", "--no-cache"]) == 0
    assert "Figure 5(a)" in capsys.readouterr().out
    assert not isolated_cache.exists()


@pytest.mark.slow
def test_run_all_quick(capsys, tmp_path):
    argv = [
        "run-all", "--quick", "--workloads", "apache", "--jobs", "2",
        "--cache-dir", str(tmp_path / "explicit"),
        "--skip-switching", "--skip-faults",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "Figure 5(a)" in out
    assert "Figure 6(b)" in out
    assert "experiment engine:" in out
    assert "0 from cache" in out

    # A warm re-run against the same cache directory simulates nothing.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 executed" in out


def test_faults_subcommand(capsys):
    assert main(["faults", "--trials", "5"]) == 0
    out = capsys.readouterr().out
    assert "always-dmr" in out
    assert "naive-mode-switch" in out


def test_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure5", "--workloads", "speccpu"])


def test_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--policy", "tmr"])


def test_rejects_nonpositive_jobs():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure5", "--jobs", "0"])
