"""Tests for the scenario-fuzzing subsystem: generator, oracles, shrinker.

Four contracts:

* **generation** -- scenarios are valid by construction, a pure function of
  ``(settings, profile, case, seed)``, byte-identical across processes
  (the property that keeps fuzz cells cacheable), and round trip through
  their canonical JSON form;
* **oracles** -- every shipped oracle passes on the existing named specs'
  scenarios (figure5/figure6/degradation/churn machines), and the
  white-box ``ObservedSimulator`` sees every quantum;
* **shrinking** -- a planted-bug case provably shrinks to the known
  minimal timeline (one arrival event, no warmup, single-VCPU roster),
  deterministically;
* **engine** -- the ``fuzz`` spec is registered with its profiles axis, a
  50-case campaign is byte-identical through the serial, process and
  distributed backends, warm reruns execute zero cells, and
  ``--reproduce`` maps clean/breached/unknown cases to exits 0/1/2.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.sim import jobs as jobs_module
from repro.sim.distributed import CoordinatorServer, DistributedBackend, run_worker
from repro.sim.fuzz.cells import (
    check_scenario,
    execute_fuzz_cell,
    fuzz_jobs,
    reproduce_case,
    scenario_machine,
)
from repro.sim.fuzz.generate import (
    FUZZ_PROFILES,
    PROFILE_NAMES,
    FuzzScenario,
    generate_scenario,
    parse_case_id,
)
from repro.sim.fuzz.oracles import (
    ORACLES,
    ObservedSimulator,
    OracleContext,
    planted_arrival_oracle,
    run_oracles,
)
from repro.sim.fuzz.shrink import repro_snippet, shrink
from repro.sim.experiments import churn_jobs, degradation_jobs
from repro.sim.jobs import simulate_cell
from repro.sim.runner import ExperimentRunner
from repro.sim.settings import ExperimentSettings
from repro.sim.specs import experiment

QUICK = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))

SRC = str(Path(__file__).resolve().parents[1] / "src")


def check_case(profile: str, case: int, seed: int = 0, planted: bool = False):
    scenario = generate_scenario(QUICK, profile, case, seed)
    return scenario, check_scenario(QUICK, scenario, planted=planted)


def planted_checker(candidate: FuzzScenario):
    return check_scenario(QUICK, candidate, planted=True)[0]


# ===================================================================== #
# Generation
# ===================================================================== #


def _scenario_digest(settings: ExperimentSettings) -> str:
    import hashlib

    digest = hashlib.sha256()
    for profile in PROFILE_NAMES:
        for case in range(3):
            digest.update(
                generate_scenario(settings, profile, case, 0).to_json().encode()
            )
    return digest.hexdigest()


_DIGEST_SCRIPT = """
import hashlib, sys
sys.path.insert(0, {src!r})
from repro.sim.settings import ExperimentSettings
from repro.sim.fuzz.generate import PROFILE_NAMES, generate_scenario
settings = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))
digest = hashlib.sha256()
for profile in PROFILE_NAMES:
    for case in range(3):
        digest.update(generate_scenario(settings, profile, case, 0).to_json().encode())
print(digest.hexdigest())
"""


class TestGeneration:
    def test_scenarios_are_reproducible_in_process(self):
        for profile in PROFILE_NAMES:
            first = generate_scenario(QUICK, profile, 1, 7)
            second = generate_scenario(QUICK, profile, 1, 7)
            assert first == second
            assert first.to_json() == second.to_json()

    def test_scenarios_are_byte_identical_across_processes(self):
        # The cache-soundness property: a fresh interpreter (fresh hash
        # randomisation) generates the exact same scenarios.
        code = _DIGEST_SCRIPT.format(src=SRC)
        fresh_process = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.strip()
        assert fresh_process == _scenario_digest(QUICK)

    def test_distinct_identities_give_distinct_scenarios(self):
        scenarios = {
            generate_scenario(QUICK, profile, case, seed).to_json()
            for profile in PROFILE_NAMES
            for case in range(3)
            for seed in (0, 1)
        }
        assert len(scenarios) == len(PROFILE_NAMES) * 3 * 2

    def test_scenarios_are_valid_by_construction(self):
        # The generator's lifecycle model must line up with the machine's
        # guards: every generated scenario simulates without a crash and
        # passes every shipped oracle.
        for profile in PROFILE_NAMES:
            for case in range(4):
                scenario, (violations, _) = check_case(profile, case)
                assert violations == [], f"{scenario.case_id}: {violations}"

    def test_roster_and_horizon_respect_their_bounds(self):
        for profile in PROFILE_NAMES:
            scenario = generate_scenario(QUICK, profile, 0, 0)
            assert 2 <= len(scenario.roster) <= 4
            assert scenario.roster[0].present_at_start
            assert all(1 <= vm.vcpus <= 3 for vm in scenario.roster)
            assert scenario.total_cycles <= QUICK.total_cycles
            assert 0 <= scenario.warmup_cycles <= QUICK.warmup_cycles
            assert 2 <= len(scenario.timeline) <= 10

    def test_profiles_skew_the_event_mix(self):
        def kind_counts(profile: str):
            counts: dict = {}
            for case in range(12):
                scenario = generate_scenario(QUICK, profile, case, 0)
                for event in scenario.timeline.events:
                    counts[event.KIND] = counts.get(event.KIND, 0) + 1
            return counts

        churn = kind_counts("churn-heavy")
        failure = kind_counts("failure-heavy")
        churn_events = churn.get("vm-arrived", 0) + churn.get("vm-departed", 0)
        failure_events = failure.get("core-failed", 0) + failure.get(
            "core-repaired", 0
        )
        assert churn_events > failure.get("vm-arrived", 0) + failure.get(
            "vm-departed", 0
        )
        assert failure_events > churn.get("core-failed", 0) + churn.get(
            "core-repaired", 0
        )

    def test_scenario_round_trips_through_canonical_json(self):
        scenario = generate_scenario(QUICK, "mixed", 2, 5)
        assert FuzzScenario.from_json(scenario.to_json()) == scenario
        with pytest.raises(ExperimentError):
            FuzzScenario.from_json("{not json")
        with pytest.raises(ExperimentError):
            FuzzScenario.from_json('{"profile": "mixed"}')

    def test_case_ids_parse_and_reject(self):
        assert parse_case_id("mixed:3:1") == ("mixed", 3, 1)
        with pytest.raises(ExperimentError, match="malformed"):
            parse_case_id("garbage")
        with pytest.raises(ExperimentError, match="unknown fuzz profile"):
            parse_case_id("meteor:0:0")
        with pytest.raises(ExperimentError, match="integers"):
            parse_case_id("mixed:x:0")
        with pytest.raises(ExperimentError, match="non-negative"):
            parse_case_id("mixed:-1:0")

    def test_unknown_profile_is_a_helpful_error(self):
        with pytest.raises(ExperimentError, match="known:"):
            generate_scenario(QUICK, "meteor-strike", 0, 0)


# ===================================================================== #
# Oracles
# ===================================================================== #


class _RecordingSimulator(ObservedSimulator):
    """Stands in for ``Simulator`` inside ``simulate_cell`` so the existing
    specs' machines run under observation."""

    instances: list = []

    def __init__(self, machine, options, timeline=None) -> None:
        super().__init__(machine, options, timeline=timeline)
        _RecordingSimulator.instances.append(self)


class TestOracles:
    def test_all_shipped_oracles_are_registered(self):
        assert set(ORACLES) == {
            "cycle-accounting",
            "pause-accounting",
            "vm-conservation",
            "dmr-pairs",
            "retired-cores",
            "timeline-ledger",
            "fault-detection",
        }

    def test_oracles_pass_on_the_existing_specs_scenarios(self, monkeypatch):
        # The acceptance bar for oracle soundness: the named specs'
        # machines (single-VM Figure 5, the consolidated server, core
        # failures on a schedule, VM churn) breach nothing.
        jobs = (
            [experiment("figure5").enumerate_jobs(
                experiment("figure5").request(QUICK)
            )[0]]
            + [experiment("figure6").enumerate_jobs(
                experiment("figure6").request(QUICK)
            )[0]]
            + degradation_jobs(QUICK, (0, 2))
            + churn_jobs(QUICK, 1)
        )
        monkeypatch.setattr(jobs_module, "Simulator", _RecordingSimulator)
        for job in jobs:
            _RecordingSimulator.instances.clear()
            result = simulate_cell(job)
            (simulator,) = _RecordingSimulator.instances
            machine = simulator.machine
            context = OracleContext(
                machine=machine,
                result=result,
                options=simulator.options,
                timeline=simulator.timeline,
                observations=simulator.observations,
                roster_names=tuple(spec.name for spec in machine.vm_specs),
                initial_active=frozenset(
                    spec.name
                    for spec in machine.vm_specs
                    if spec.present_at_start
                ),
            )
            assert run_oracles(context, job.label) == []

    def test_observer_sees_every_quantum(self):
        scenario = generate_scenario(QUICK, "mixed", 0, 0)
        machine = scenario_machine(QUICK, scenario)
        options = replace(
            QUICK.options(),
            total_cycles=scenario.total_cycles,
            warmup_cycles=scenario.warmup_cycles,
        )
        simulator = ObservedSimulator(machine, options, timeline=scenario.timeline)
        result = simulator.run()
        measured = sum(1 for obs in simulator.observations if obs.measuring)
        assert measured == result.quantum_stats["quanta"]

    def test_planted_oracle_fires_only_on_applied_arrivals(self):
        # churn-heavy:0:0 applies an arrival; the quick mixed:0:0 does not.
        _, (violations, _) = check_case("churn-heavy", 0, planted=True)
        assert any(v.oracle == "planted-arrival" for v in violations)
        _, (clean, _) = check_case("mixed", 0, planted=True)
        assert not any(v.oracle == "planted-arrival" for v in clean)

    def test_violations_render_with_oracle_and_case(self):
        scenario, (violations, _) = check_case("churn-heavy", 0, planted=True)
        planted = next(v for v in violations if v.oracle == "planted-arrival")
        assert str(planted).startswith(f"[planted-arrival] {scenario.case_id}:")


# ===================================================================== #
# Shrinking
# ===================================================================== #


class TestShrinking:
    @pytest.fixture(scope="class")
    def shrunk(self):
        scenario = generate_scenario(QUICK, "churn-heavy", 0, 0)
        return shrink(scenario, planted_checker)

    def test_planted_bug_shrinks_to_the_minimal_timeline(self, shrunk):
        # The planted invariant ("no VM may arrive") has a provably minimal
        # reproduction: exactly one arrival event, nothing else.
        minimal = shrunk.scenario
        assert len(minimal.timeline) == 1
        (event,) = minimal.timeline.events
        assert event.KIND == "vm-arrived"
        assert minimal.warmup_cycles == 0
        assert all(vm.vcpus == 1 for vm in minimal.roster)
        # Only the arriving VM and one present-at-start anchor remain.
        assert len(minimal.roster) == 2
        assert shrunk.steps > 0
        assert shrunk.attempts >= shrunk.steps

    def test_shrunk_scenario_still_reproduces(self, shrunk):
        violations = planted_checker(shrunk.scenario)
        assert any(v.oracle == "planted-arrival" for v in violations)

    def test_shrinking_is_deterministic(self, shrunk):
        again = shrink(
            generate_scenario(QUICK, "churn-heavy", 0, 0), planted_checker
        )
        assert again.scenario.to_json() == shrunk.scenario.to_json()
        assert (again.steps, again.attempts) == (shrunk.steps, shrunk.attempts)

    def test_clean_scenarios_shrink_to_themselves(self):
        scenario = generate_scenario(QUICK, "mixed", 0, 0)
        result = shrink(scenario, lambda candidate: [])
        assert result.scenario is scenario
        assert result.steps == 0 and result.violations == ()

    def test_snippet_carries_the_replay_command(self, shrunk):
        snippet = repro_snippet(shrunk.scenario, shrunk.violations)
        assert (
            f"python -m repro fuzz --reproduce {shrunk.scenario.case_id}"
            in snippet
        )
        assert "Timeline.of(" in snippet
        assert "VmSpec(" in snippet


# ===================================================================== #
# Engine integration and CLI
# ===================================================================== #


def _frame_bytes(frame) -> str:
    return json.dumps(frame.to_json(), sort_keys=True)


def start_worker_thread(url: str) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(url,),
        kwargs={"poll_seconds": 0.05, "max_idle_seconds": 2.0},
        daemon=True,
    )
    thread.start()
    return thread


PARITY = replace(QUICK, fuzz_cases=50, fuzz_profiles=("mixed",))


class TestEngineIntegration:
    def test_fuzz_spec_is_registered_with_profiles_axis(self):
        spec = experiment("fuzz")
        request = spec.request(QUICK)
        grid = spec.grid(request)
        assert grid.size() == len(spec.enumerate_jobs(request))
        assert grid.axis("profile") == QUICK.fuzz_profiles
        assert spec.metric_schema(request).keys == ("profile",)

    def test_cells_are_pure_and_cacheable(self):
        (job,) = fuzz_jobs(replace(QUICK, fuzz_cases=1, fuzz_profiles=("mixed",)))
        assert job.kind == "fuzz"
        first, second = execute_fuzz_cell(job), execute_fuzz_cell(job)
        assert first == second
        assert first["violations"] == 0 and first["repro"] == ""

    @pytest.mark.slow
    def test_backends_agree_byte_for_byte_over_50_cases(self):
        # The acceptance bar: a 50-case campaign produces byte-identical
        # ResultFrame documents through serial, process and distributed.
        spec = experiment("fuzz")
        serial = _frame_bytes(
            spec.run(PARITY, runner=ExperimentRunner(jobs=1, use_cache=False))
        )
        pooled = _frame_bytes(
            spec.run(PARITY, runner=ExperimentRunner(jobs=2, use_cache=False))
        )
        server = CoordinatorServer(port=0).start()
        try:
            worker = start_worker_thread(server.url)
            distributed = _frame_bytes(
                spec.run(
                    PARITY,
                    runner=ExperimentRunner(
                        jobs=2,
                        use_cache=False,
                        backend=DistributedBackend(server.url, poll_seconds=2.0),
                    ),
                )
            )
            worker.join(timeout=60)
        finally:
            server.stop()
        assert serial == pooled == distributed

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        spec = experiment("fuzz")
        cold_runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        cold = _frame_bytes(spec.run(QUICK, runner=cold_runner))
        assert cold_runner.stats.executed == len(
            spec.enumerate_jobs(spec.request(QUICK))
        )
        warm_runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        warm = _frame_bytes(spec.run(QUICK, runner=warm_runner))
        assert warm_runner.stats.executed == 0
        assert warm == cold

    def test_reproduce_exit_codes(self, capsys):
        assert reproduce_case(QUICK, "mixed:0:0") == 0
        assert "case is clean" in capsys.readouterr().out
        assert reproduce_case(QUICK, "churn-heavy:0:0", planted=True) == 1
        assert "--reproduce churn-heavy:0:0" in capsys.readouterr().out
        with pytest.raises(ExperimentError):
            reproduce_case(QUICK, "garbage")

    def test_cli_maps_unknown_case_to_exit_2(self, capsys):
        assert main(["fuzz", "--quick", "--reproduce", "garbage"]) == 2
        assert "cannot reproduce" in capsys.readouterr().err

    def test_list_json_reports_the_fuzz_kind_and_axis(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fuzz" in payload["registered_job_kinds"]
        (entry,) = [s for s in payload["specs"] if s["name"] == "fuzz"]
        assert entry["job_kinds"] == ["fuzz"]
        assert entry["axes"]["profile"] == list(PROFILE_NAMES)
