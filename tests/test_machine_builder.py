"""Tests for the machine builder and the MixedModeMulticore façade."""

from __future__ import annotations

import pytest

from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.mmm import MixedModeMulticore
from repro.errors import ConfigurationError
from repro.isa.instructions import PrivilegeLevel
from repro.sim.simulator import SimulationOptions
from repro.virt.vcpu import ReliabilityMode
from repro.workloads.profiles import get_profile


class TestVmSpec:
    def test_profile_resolution_by_name_and_object(self):
        by_name = VmSpec("a", "apache", 2, ReliabilityMode.RELIABLE)
        by_object = VmSpec("b", get_profile("apache"), 2, ReliabilityMode.RELIABLE)
        assert by_name.profile().name == "apache"
        assert by_object.profile().name == "apache"

    def test_footprint_scale_applies(self):
        spec = VmSpec("a", "oltp", 2, ReliabilityMode.RELIABLE, footprint_scale=0.5)
        assert spec.profile().user_footprint_bytes == get_profile("oltp").user_footprint_bytes // 2


class TestMachineBuilder:
    def test_builds_expected_structure(self, small_machine, small_config):
        machine = small_machine
        assert machine.num_cores == small_config.num_cores
        assert len(machine.tlbs) == small_config.num_cores
        assert len(machine.pabs) == small_config.num_cores
        assert len(machine.cores) == small_config.num_cores
        assert machine.total_vcpus == 3
        assert [vm.name for vm in machine.vms] == ["reliable", "performance"]

    def test_vcpu_ids_are_globally_unique_and_dense(self, small_machine):
        ids = sorted(small_machine.vcpus)
        assert ids == list(range(len(ids)))

    def test_reliable_vm_memory_marked_in_pat(self, small_machine):
        machine = small_machine
        reliable_region = machine.layout.vm_region(0)
        performance_region = machine.layout.vm_region(1)
        assert machine.pat.is_reliable_only_address(reliable_region.base)
        assert not machine.pat.is_reliable_only_address(performance_region.base)
        assert machine.pat.is_reliable_only_address(machine.layout.scratchpad_region().base)
        assert machine.pat.is_reliable_only_address(machine.layout.pat_region().base)

    def test_page_table_covers_every_vm_region(self, small_machine):
        machine = small_machine
        for vm_id in range(len(machine.vms)):
            for region in (
                machine.layout.user_region(vm_id),
                machine.layout.shared_region(vm_id),
                machine.layout.kernel_region(vm_id),
            ):
                assert machine.page_table.lookup_address(region.base) is not None

    def test_kernel_pages_are_privileged_only(self, small_machine):
        machine = small_machine
        entry = machine.page_table.lookup_address(machine.layout.kernel_region(0).base)
        assert not entry.user_writable

    def test_single_vm_machines_use_hypervisor_privilege_for_os_phases(self, small_config):
        spec = VmSpec("only", "apache", 1, ReliabilityMode.RELIABLE, phase_scale=0.002,
                      footprint_scale=0.1)
        machine = MixedModeMachine(small_config, [spec], policy="no-dmr")
        workload = machine.vms[0].vcpus[0].workload
        privileges = {i.privilege for i in workload.take(4000) if not i.is_user}
        assert privileges == {PrivilegeLevel.HYPERVISOR}

    def test_multi_vm_machines_use_guest_os_privilege(self, small_machine):
        workload = small_machine.vms[1].vcpus[0].workload
        privileges = {i.privilege for i in workload.take(4000) if not i.is_user}
        assert privileges == {PrivilegeLevel.GUEST_OS}

    def test_pair_factory_produces_distinct_pairs(self, small_machine):
        pair = small_machine.pair_factory(0, 1)
        assert pair.cores == (0, 1)

    def test_lookup_helpers(self, small_machine):
        assert small_machine.vm_by_name("reliable").vm_id == 0
        with pytest.raises(ConfigurationError):
            small_machine.vm_by_name("missing")
        assert small_machine.vcpu(0).vcpu_id == 0
        with pytest.raises(ConfigurationError):
            small_machine.vcpu(99)

    def test_machine_requires_at_least_one_vm(self, small_config):
        with pytest.raises(ConfigurationError):
            MixedModeMachine(small_config, [], policy="mmm-tp")

    def test_no_fault_injector_by_default(self, small_machine):
        assert small_machine.fault_injector is None


class TestFacade:
    def test_consolidated_server_defaults(self, eval_config):
        system = MixedModeMulticore.consolidated_server(
            config=eval_config, policy="mmm-tp", reliable_vcpus=2,
            phase_scale=0.003, footprint_scale=0.05,
        )
        assert system.policy_name == "mmm-tp"
        names = [vm.name for vm in system.machine.vms]
        assert names == ["reliable", "performance"]
        # MMM-TP exposes one performance VCPU per core by default.
        assert system.machine.vms[1].num_vcpus == eval_config.num_cores

    def test_consolidated_server_ipc_policy_uses_half_the_vcpus(self, eval_config):
        system = MixedModeMulticore.consolidated_server(
            config=eval_config, policy="mmm-ipc", reliable_vcpus=2,
            phase_scale=0.003, footprint_scale=0.05,
        )
        assert system.machine.vms[1].num_vcpus == eval_config.num_cores // 2

    def test_single_os_desktop_uses_user_only_mode_and_ipc_policy(self, eval_config):
        system = MixedModeMulticore.single_os_desktop(
            config=eval_config, vcpus_per_application=1,
            phase_scale=0.003, footprint_scale=0.05,
        )
        assert system.policy_name == "mmm-ipc"
        assert system.machine.vms[1].reliability is ReliabilityMode.PERFORMANCE_USER_ONLY

    def test_baseline_requires_at_least_one_vcpu(self, eval_config):
        with pytest.raises(ConfigurationError):
            MixedModeMulticore.baseline("apache", 0, "no-dmr", config=eval_config)

    def test_run_returns_results(self, eval_config):
        system = MixedModeMulticore.consolidated_server(
            config=eval_config, policy="mmm-tp", reliable_vcpus=1,
            performance_vcpus=2, phase_scale=0.003, footprint_scale=0.05,
        )
        result = system.run(total_cycles=6_000, warmup_cycles=2_000)
        assert result.total_cycles == 6_000
        assert result.vm("performance").user_instructions > 0
        assert result.overall_throughput() > 0

    def test_simulator_accepts_explicit_options(self, eval_config):
        system = MixedModeMulticore.baseline(
            "pmake", 2, "no-dmr", config=eval_config, phase_scale=0.003,
            footprint_scale=0.05,
        )
        simulator = system.simulator(SimulationOptions(total_cycles=3_000, warmup_cycles=0))
        result = simulator.run()
        assert result.policy_name == "no-dmr"

    def test_small_test_config_helper(self):
        assert MixedModeMulticore.small_test_config().num_cores == 4
