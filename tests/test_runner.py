"""Tests for the experiment engine: jobs, cache, runner, determinism.

The engine's contract has three legs, each asserted here:

* **identity** -- a job's cache key is a deterministic digest of everything
  that influences its result, and of nothing else (restricting a sweep's
  workload selection must not invalidate cached cells);
* **determinism** -- a cell produces byte-identical serialized results
  whether it runs in-process, in a process-pool worker, serially or in a
  multi-worker batch (this is what makes the cache sound);
* **incrementality** -- a warm cache re-run executes zero simulation jobs.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

import pytest

import repro.sim.jobs as jobs_module

from repro.config.presets import paper_system_config
from repro.errors import ExperimentError
from repro.sim.experiments import (
    ExperimentSettings,
    figure5_jobs,
    figure6_jobs,
    pab_jobs,
    run_all_experiments,
    run_dmr_overhead_experiment,
    run_mixed_mode_experiment,
    run_pab_latency_study,
    run_single_os_overhead_study,
    run_switch_frequency_experiment,
    run_switch_overhead_experiment,
    run_window_ablation,
    switch_overhead_jobs,
    window_ablation_jobs,
)
from repro.sim.jobs import (
    ExperimentJob,
    execute_job,
    register_job_kind,
    registered_job_kinds,
    simulate_cell,
)
from repro.sim.runner import (
    ExperimentRunner,
    LegacyResultCache,
    ResultCache,
    RunnerBackend,
    SerialBackend,
    backend_by_name,
    default_runner,
    register_runner_backend,
    registered_backends,
    set_default_runner,
    using_runner,
)

QUICK = ExperimentSettings.quick().with_workloads(("apache",))


def quick_job(variant: str = "no-dmr", seed: int = 0) -> ExperimentJob:
    return ExperimentJob(
        kind="figure5", workload="apache", variant=variant, seed=seed,
        settings=QUICK.cell_settings(),
    )


class TestJobModel:
    def test_cache_key_is_stable(self):
        assert quick_job().cache_key() == quick_job().cache_key()

    def test_cache_key_distinguishes_every_identity_field(self):
        baseline = quick_job()
        different = [
            quick_job(variant="reunion"),
            quick_job(seed=1),
            replace(baseline, kind="figure6"),
            replace(baseline, workload="pmake"),
            replace(baseline, settings=replace(QUICK.cell_settings(), total_cycles=999)),
            replace(baseline, params=(("x", 1),)),
        ]
        keys = {job.cache_key() for job in different}
        assert baseline.cache_key() not in keys
        assert len(keys) == len(different)

    def test_workload_selection_does_not_leak_into_cell_identity(self):
        # A sweep restricted to one workload reuses the cells of the full
        # sweep: the enumerators normalise the selection away.
        wide = ExperimentSettings.quick()  # apache + pmake
        narrow = wide.with_workloads(("apache",))
        assert set(figure5_jobs(narrow)) <= set(figure5_jobs(wide))
        assert set(figure6_jobs(narrow)) <= set(figure6_jobs(wide))
        assert set(pab_jobs(narrow)) <= set(pab_jobs(wide))
        assert set(window_ablation_jobs(narrow)) <= set(window_ablation_jobs(wide))

    def test_cache_key_digests_the_simulating_code(self, monkeypatch):
        # Any edit to the package must invalidate cached cells, so results
        # simulated by different code are never served as current.
        import repro.sim.jobs as jobs_module

        before = quick_job().cache_key()
        monkeypatch.setattr(jobs_module, "_CODE_FINGERPRINT", "different-code")
        assert quick_job().cache_key() != before

    def test_jobs_are_hashable_and_picklable(self):
        import pickle

        job = quick_job()
        assert pickle.loads(pickle.dumps(job)) == job
        assert len({job, quick_job()}) == 1

    def test_table1_jobs_carry_config_and_params(self):
        (job,) = switch_overhead_jobs(("apache",), transitions_to_measure=2,
                                      warmup_cycles=500, seed=3)
        assert job.kind == "table1"
        assert job.config == paper_system_config()
        assert job.param("transitions_to_measure") == 2
        assert job.param("warmup_cycles") == 500
        assert job.param("missing", 42) == 42

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ExperimentError, match="registered kinds"):
            execute_job(replace(quick_job(), kind="figure7"))

    def test_settings_driven_kinds_require_settings(self):
        with pytest.raises(ExperimentError):
            simulate_cell(replace(quick_job(), settings=None))


class TestJobKindRegistry:
    def test_every_builtin_kind_is_registered(self):
        # Importing the package registers the simulation kinds *and* the
        # fault-campaign kind (repro.faults.cells) -- the same chain a
        # process-pool worker follows when it unpickles execute_job.
        assert set(registered_job_kinds()) >= {
            "figure5", "figure6", "pab", "ablation", "table1", "table2", "faults",
        }

    def test_registered_kind_dispatches(self):
        def fake(job):
            return {"answer": 42.0}

        register_job_kind("registry-test", fake)
        try:
            assert execute_job(replace(quick_job(), kind="registry-test")) == {
                "answer": 42.0
            }
        finally:
            del jobs_module._EXECUTORS["registry-test"]

    def test_decorator_form_and_duplicate_rejection(self):
        @register_job_kind("registry-dup")
        def first(job):
            return {}

        try:
            # Re-registering the same function is a harmless no-op...
            register_job_kind("registry-dup", first)
            # ...but a different executor must be explicit about replacing.
            with pytest.raises(ExperimentError):
                register_job_kind("registry-dup", lambda job: {})
            register_job_kind("registry-dup", lambda job: {"v": 1.0}, replace=True)
        finally:
            del jobs_module._EXECUTORS["registry-dup"]

    def test_module_reload_reregistration_is_harmless(self):
        # Reloading a registering module creates new function objects with
        # the same module/qualname; that must not raise.
        import importlib

        import repro.faults.cells as cells_module

        before = jobs_module._EXECUTORS["faults"]
        importlib.reload(cells_module)
        assert jobs_module._EXECUTORS["faults"] is not before
        assert "faults" in registered_job_kinds()


class TestResultCache:
    def test_store_and_load_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = quick_job()
        assert cache.load(job) is None
        cache.store(job, {"user_ipc": 0.5, "throughput": 1.25})
        assert cache.load(job) == {"user_ipc": 0.5, "throughput": 1.25}
        # The result lands in a packed segment file, not a per-key file.
        assert list((tmp_path / job.kind / "segments").glob("seg-*.seg"))
        assert not cache.path_for(job).exists()

    def test_corrupt_legacy_entries_are_misses(self, tmp_path):
        # Per-file corruption semantics of the legacy layout (the packed
        # layout's torn-frame handling is covered in test_store.py).
        cache = LegacyResultCache(tmp_path)
        job = quick_job()
        cache.store(job, {"user_ipc": 0.5})
        cache.path_for(job).write_text("{not json", encoding="utf-8")
        assert cache.load(job) is None

    @pytest.mark.parametrize(
        "garbage",
        [
            b"",                        # zero-length file (killed before any write)
            b'{"schema": 1, "key": ',   # truncated mid-write
            b"null",                    # valid JSON, wrong shape
            b"[1, 2, 3]",               # valid JSON, wrong shape
            b"\xff\xfe garbage bytes",  # undecodable
        ],
    )
    def test_truncated_or_malformed_entries_never_raise(self, tmp_path, garbage):
        # A run killed mid-write must leave a cache the next run can use:
        # the bad entry reads as a miss and the re-run simply overwrites it.
        cache = ResultCache(tmp_path)
        job = quick_job()
        cache.path_for(job).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(job).write_bytes(garbage)
        assert cache.load(job) is None
        cache.store(job, {"user_ipc": 0.5})
        assert cache.load(job) == {"user_ipc": 0.5}

    def test_non_dict_metrics_is_a_miss(self, tmp_path):
        # Schema and key check out, but the metrics payload is garbage.
        from repro.sim.jobs import CACHE_SCHEMA_VERSION

        cache = ResultCache(tmp_path)
        job = quick_job()
        path = cache.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"schema": CACHE_SCHEMA_VERSION, "key": job.cache_key(), "metrics": 7}
            ),
            encoding="utf-8",
        )
        assert cache.load(job) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = LegacyResultCache(tmp_path)
        job, other = quick_job(), quick_job(variant="reunion")
        cache.store(job, {"user_ipc": 0.5})
        # Simulate a renamed/moved entry: contents describe a different cell.
        cache.path_for(job).replace(cache.path_for(other))
        assert cache.load(other) is None

    def test_key_mismatch_in_legacy_read_through_is_a_miss(self, tmp_path):
        # The packed cache probes legacy per-key files on a miss; a moved
        # legacy file whose contents describe a different cell must not hit.
        legacy = LegacyResultCache(tmp_path)
        job, other = quick_job(), quick_job(variant="reunion")
        legacy.store(job, {"user_ipc": 0.5})
        legacy.path_for(job).replace(legacy.path_for(other))
        cache = ResultCache(tmp_path)
        assert cache.load(other) is None

    def test_clear_removes_every_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(quick_job(), {"a": 1.0})
        cache.store(quick_job(variant="reunion"), {"a": 2.0})
        assert cache.clear() == 2
        assert cache.load(quick_job()) is None

    def test_clear_by_kind_prunes_only_that_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        figure5 = quick_job()
        figure6 = replace(quick_job(), kind="figure6")
        cache.store(figure5, {"a": 1.0})
        cache.store(figure6, {"b": 2.0})
        assert cache.clear(kind="figure5") == 1
        assert cache.load(figure5) is None
        assert cache.load(figure6) == {"b": 2.0}
        assert cache.clear(kind="no-such-kind") == 0

    def test_stats_reports_entries_and_bytes_per_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats() == {}
        cache.store(quick_job(), {"a": 1.0})
        cache.store(quick_job(variant="reunion"), {"a": 2.0})
        cache.store(replace(quick_job(), kind="figure6"), {"b": 3.0})
        stats = cache.stats()
        assert set(stats) == set(cache.kinds()) == {"figure5", "figure6"}
        assert stats["figure5"].entries == 2
        assert stats["figure6"].entries == 1
        for kind_stats in stats.values():
            assert kind_stats.bytes > 0

    def test_stats_reports_unknown_version_for_partial_entries(self, tmp_path):
        # A zero-byte or mid-write entry must not be counted under a real
        # schema version: the tail sniff is only trusted for complete dumps
        # (ending in the closing brace), otherwise a writer caught between
        # open and flush would inflate a version bucket with an entry that
        # loads as a miss.
        cache = ResultCache(tmp_path)
        cache.store(quick_job(), {"a": 1.0})
        kind_dir = cache.path_for(quick_job()).parent
        (kind_dir / "zero.json").write_bytes(b"")
        # Truncated mid-write, but the tail still contains a schema match.
        (kind_dir / "partial.json").write_bytes(b'{"metrics": {"a": 1.0}, "schema": 3')
        stats = cache.stats()["figure5"]
        assert stats.entries == 3
        assert stats.versions["?"] == 2
        known = {v: n for v, n in stats.versions.items() if v != "?"}
        assert sum(known.values()) == 1

    def test_stats_full_parse_fallback_for_unsniffable_complete_entries(self, tmp_path):
        # Hand-edited entries (schema not last, trailing whitespace) are
        # complete files: they fall back to a full parse, not to "?".
        cache = ResultCache(tmp_path)
        job = quick_job()
        path = cache.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        padding = " " * 512  # push the schema field out of the 256-byte tail
        path.write_text(
            '{"schema": 2, "pad": "' + padding + '"}\n', encoding="utf-8"
        )
        stats = cache.stats()["figure5"]
        assert stats.versions == {"2": 1}

    def test_store_leaves_no_temporary_files(self, tmp_path):
        # Appends and the atomic manifest publish must clean up after
        # themselves: only segment files and the manifest remain.
        cache = ResultCache(tmp_path)
        job = quick_job()
        cache.store(job, {"a": 1.0})
        cache.flush()
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers  # at least one segment plus the manifest
        for path in leftovers:
            assert path.name == "manifest.json" or (
                path.name.startswith("seg-") and path.suffix == ".seg"
            ), f"unexpected leftover {path}"
        assert cache.load(job) == {"a": 1.0}


class TestRunner:
    def test_rejects_zero_workers(self):
        with pytest.raises(ExperimentError):
            ExperimentRunner(jobs=0)

    def test_batches_deduplicate_and_memoize(self):
        calls = []

        def fake(job):
            calls.append(job)
            return {"value": float(len(calls))}

        runner = ExperimentRunner(jobs=1, use_cache=False, executor=fake)
        a, b = quick_job(), quick_job(variant="reunion")
        results = runner.run_jobs([a, a, b])
        assert len(calls) == 2
        assert results[a] == {"value": 1.0}
        assert results[b] == {"value": 2.0}
        assert runner.stats.executed == 2
        assert runner.stats.memoized == 1
        # A later batch reuses the runner's memo without re-executing.
        assert runner.run_job(a) == {"value": 1.0}
        assert runner.stats.executed == 2

    def test_on_disk_cache_survives_runner_restarts(self, tmp_path):
        calls = []

        def fake(job):
            calls.append(job)
            return {"value": 7.0}

        first = ExperimentRunner(jobs=1, cache_dir=tmp_path, executor=fake)
        first.run_job(quick_job())
        assert first.stats.executed == 1

        second = ExperimentRunner(jobs=1, cache_dir=tmp_path, executor=fake)
        assert second.run_job(quick_job()) == {"value": 7.0}
        assert second.stats.executed == 0
        assert second.stats.cached == 1
        assert len(calls) == 1

    def test_results_are_cached_as_cells_complete(self, tmp_path):
        # An interrupted batch keeps every finished cell: the re-run only
        # executes what is missing.
        def flaky(job):
            if job.variant == "reunion":
                raise RuntimeError("boom")
            return {"value": 1.0}

        broken = ExperimentRunner(jobs=1, cache_dir=tmp_path, executor=flaky)
        with pytest.raises(RuntimeError):
            broken.run_jobs([quick_job(), quick_job(variant="reunion")])
        assert broken.stats.executed == 1

        resumed = ExperimentRunner(jobs=1, cache_dir=tmp_path, executor=flaky)
        assert resumed.run_job(quick_job()) == {"value": 1.0}
        assert resumed.stats.cached == 1
        assert resumed.stats.executed == 0

    def test_backend_defaults_follow_worker_count(self):
        assert ExperimentRunner(jobs=1, use_cache=False).backend.name == "serial"
        assert ExperimentRunner(jobs=2, use_cache=False).backend.name == "process"

    def test_backend_chosen_by_name(self):
        runner = ExperimentRunner(jobs=2, use_cache=False, backend="thread")
        assert runner.backend.name == "thread"
        # An instance is accepted as-is, too.
        serial = SerialBackend()
        assert ExperimentRunner(use_cache=False, backend=serial).backend is serial

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ExperimentError, match="registered backends"):
            ExperimentRunner(jobs=2, use_cache=False, backend="quantum")

    def test_backend_registry_contents_and_duplicates(self):
        assert {"serial", "process", "thread"} <= set(registered_backends())
        assert backend_by_name("thread").name == "thread"
        with pytest.raises(ExperimentError):
            register_runner_backend("serial", SerialBackend)

    def test_thread_backend_matches_serial(self):
        def fake(job):
            return {"value": float(job.seed)}

        batch = [quick_job(seed=seed) for seed in range(6)]
        serial = ExperimentRunner(jobs=1, use_cache=False, executor=fake)
        threaded = ExperimentRunner(
            jobs=3, use_cache=False, executor=fake, backend="thread"
        )
        assert serial.run_jobs(batch) == threaded.run_jobs(batch)
        assert threaded.stats.executed == len(batch)

    def test_custom_backend_plugs_in(self):
        # The seam for a distributed runner: anything mapping pending cells
        # to (job, metrics) pairs works, registered or passed directly.
        class RecordingBackend(RunnerBackend):
            name = "recording"

            def __init__(self):
                self.batches = []

            def execute(self, executor, pending, workers):
                self.batches.append(len(pending))
                for job in pending:
                    yield job, executor(job)

        backend = RecordingBackend()
        runner = ExperimentRunner(
            jobs=4, use_cache=False, executor=lambda job: {"v": 1.0},
            backend=backend,
        )
        batch = [quick_job(seed=seed) for seed in range(3)]
        assert len(runner.run_jobs(batch)) == 3
        # Single-cell batches reach the backend too: a remote-only backend
        # must never be silently bypassed in favour of local execution.
        runner.run_job(quick_job(seed=99))
        assert backend.batches == [3, 1]

    def test_default_runner_installation(self):
        fallback = default_runner()
        assert fallback.jobs == 1 and fallback.cache is None
        custom = ExperimentRunner(jobs=1, use_cache=False)
        with using_runner(custom) as installed:
            assert installed is custom
            assert default_runner() is custom
        assert default_runner() is not custom
        set_default_runner(None)


def serialized(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestDeterminism:
    """Same seed, same cell => byte-identical results, however it runs."""

    def test_pool_worker_matches_in_process_run(self):
        job = quick_job(variant="reunion")
        local = simulate_cell(job)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(simulate_cell, job).result()
        assert serialized(local) == serialized(remote)

    def test_repeated_simulations_are_reproducible(self):
        job = quick_job()
        assert serialized(simulate_cell(job)) == serialized(simulate_cell(job))


@pytest.mark.slow
class TestEntryPointReproducibility:
    """Repeated runs of each run_* entry point return equal results -- the
    contract the cache key relies on."""

    def fresh(self) -> ExperimentRunner:
        return ExperimentRunner(jobs=1, use_cache=False)

    def test_figure5(self):
        first = run_dmr_overhead_experiment(QUICK, runner=self.fresh())
        second = run_dmr_overhead_experiment(QUICK, runner=self.fresh())
        assert first.rows == second.rows

    def test_figure6(self):
        configurations = ("dmr-base", "mmm-tp")
        first = run_mixed_mode_experiment(QUICK, configurations, runner=self.fresh())
        second = run_mixed_mode_experiment(QUICK, configurations, runner=self.fresh())
        assert first.rows == second.rows

    def test_pab(self):
        first = run_pab_latency_study(QUICK, runner=self.fresh())
        second = run_pab_latency_study(QUICK, runner=self.fresh())
        assert first.rows == second.rows

    def test_ablation(self):
        first = run_window_ablation(QUICK, runner=self.fresh())
        second = run_window_ablation(QUICK, runner=self.fresh())
        assert first.rows == second.rows

    def test_tables_and_single_os(self):
        def tables(runner):
            table1 = run_switch_overhead_experiment(
                ("apache",), transitions_to_measure=2, warmup_cycles=2_000,
                runner=runner,
            )
            table2 = run_switch_frequency_experiment(
                ("apache",), phases_to_measure=1, measurement_phase_scale=0.02,
                runner=runner,
            )
            return table1, table2

        first1, first2 = tables(self.fresh())
        second1, second2 = tables(self.fresh())
        assert first1.rows == second1.rows
        assert first2.rows == second2.rows
        study_a = run_single_os_overhead_study(first1, first2, ("apache",))
        study_b = run_single_os_overhead_study(second1, second2, ("apache",))
        assert study_a.rows == study_b.rows


@pytest.mark.slow
class TestRunAllParity:
    """The acceptance contract: ``run-all --jobs 4`` equals the serial path,
    and a warm cache re-run executes zero simulation jobs."""

    def test_parallel_matches_serial_and_warm_cache_runs_nothing(self, tmp_path):
        settings = QUICK
        serial = ExperimentRunner(jobs=1, cache_dir=tmp_path / "serial")
        parallel = ExperimentRunner(jobs=4, cache_dir=tmp_path / "parallel")
        threaded = ExperimentRunner(
            jobs=4, cache_dir=tmp_path / "threaded", backend="thread"
        )

        one = run_all_experiments(settings, runner=serial)
        four = run_all_experiments(settings, runner=parallel)
        via_threads = run_all_experiments(settings, runner=threaded)
        assert serial.stats.executed == parallel.stats.executed > 0
        assert serial.stats.executed == threaded.stats.executed
        # Every spec in the batch: all three backends, byte for byte.
        assert json.dumps(one.job_metrics, sort_keys=True) == json.dumps(
            four.job_metrics, sort_keys=True
        )
        assert json.dumps(one.job_metrics, sort_keys=True) == json.dumps(
            via_threads.job_metrics, sort_keys=True
        )
        assert one.render() == four.render() == via_threads.render()

        # Re-running against the serial runner's cache simulates nothing --
        # including the fault-campaign cells, which ride the same batch.
        assert one.faults is not None and one.faults.rows
        warm = ExperimentRunner(jobs=4, cache_dir=tmp_path / "serial")
        again = run_all_experiments(settings, runner=warm)
        assert warm.stats.executed == 0
        assert warm.stats.cached == serial.stats.executed
        assert again.job_metrics == one.job_metrics
        assert again.render() == one.render()

    def test_sections_cover_every_experiment(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        result = run_all_experiments(QUICK, runner=runner)
        report = result.render()
        for marker in ("Figure 5(a)", "Figure 5(b)", "Figure 6(a)", "Figure 6(b)",
                       "PAB", "Table 1", "Table 2", "Single-OS", "window size",
                       "Fault-injection coverage"):
            assert marker in report
        assert result.single_os is not None and result.ablation is not None
        assert result.faults is not None
        assert result.faults.value("coverage", configuration="always-dmr").mean == 1.0


class TestAdaptiveChunking:
    """The chunker shared by the process backend and distributed leases."""

    def test_small_batches_stay_fine_grained(self):
        from repro.sim.runner import adaptive_chunk_size

        # Few cells per worker slot: one cell per round, best load balance.
        assert adaptive_chunk_size(1, 4) == 1
        assert adaptive_chunk_size(8, 4) == 1
        assert adaptive_chunk_size(0, 4) == 1

    def test_large_batches_amortise_per_round_overhead(self):
        from repro.sim.runner import MAX_CHUNK_SIZE, adaptive_chunk_size

        assert adaptive_chunk_size(64, 4) == 4
        # The cap bounds lease loss when a worker dies mid-chunk.
        assert adaptive_chunk_size(10_000, 2) == MAX_CHUNK_SIZE
        assert adaptive_chunk_size(100, 0) == MAX_CHUNK_SIZE

    def test_chunks_cover_the_batch_in_order(self):
        from repro.sim.runner import adaptive_chunks

        batch = [quick_job(seed=seed) for seed in range(11)]
        chunks = list(adaptive_chunks(batch, 2))
        assert [job for chunk in chunks for job in chunk] == batch
        assert all(chunks)  # no empty chunk
        sizes = {len(chunk) for chunk in chunks}
        assert len(sizes) <= 2  # equal-sized except possibly the tail

    def test_chunked_process_pool_matches_serial(self, tmp_path):
        batch = figure5_jobs(QUICK)
        serial = ExperimentRunner(jobs=1).run_jobs(batch)
        pooled = ExperimentRunner(jobs=2).run_jobs(batch)
        assert json.dumps(
            {job.cache_key(): serial[job] for job in batch}, sort_keys=True
        ) == json.dumps(
            {job.cache_key(): pooled[job] for job in batch}, sort_keys=True
        )


class TestRunnerStatsTiming:
    """Per-phase wall-clock accounting on RunnerStats."""

    def test_phases_accumulate_and_reenter(self):
        from repro.sim.runner import RunnerStats

        stats = RunnerStats()
        with stats.phase("execute"):
            pass
        with stats.phase("execute"):
            pass
        with stats.phase("assemble"):
            pass
        assert set(stats.phase_seconds) == {"execute", "assemble"}
        assert stats.wall_seconds == pytest.approx(
            sum(stats.phase_seconds.values())
        )

    def test_summary_keeps_the_historical_prefix(self):
        from repro.sim.runner import RunnerStats

        stats = RunnerStats(executed=3, cached=1, memoized=2)
        assert stats.summary() == "3 executed, 1 from cache, 2 memoized"
        with stats.phase("execute"):
            pass
        timed = stats.summary()
        assert timed.startswith("3 executed, 1 from cache, 2 memoized | ")
        assert "wall (execute " in timed

    def test_to_dict_is_json_safe(self):
        from repro.sim.runner import RunnerStats

        stats = RunnerStats(executed=2, cached=1)
        with stats.phase("cache-hit"):
            pass
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["executed"] == 2
        assert payload["total"] == 3
        assert "cache-hit" in payload["phases"]
        assert payload["wall_seconds"] >= 0.0

    def test_runner_records_the_standard_phases(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        runner.run_jobs([quick_job()])
        assert "cache-hit" in runner.stats.phase_seconds
        assert "execute" in runner.stats.phase_seconds
        # A warm re-run probes the cache but executes nothing new.
        warm = ExperimentRunner(jobs=1, cache_dir=tmp_path)
        warm.run_jobs([quick_job()])
        assert "execute" not in warm.stats.phase_seconds


class TestKeyLevelCacheApi:
    """The (kind, key) half of the cache API used by the coordinator."""

    def test_entry_round_trip_matches_job_level_api(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = quick_job()
        key = job.cache_key()
        cache.store_entry(job.kind, key, job.to_dict(), {"metric": 1.5})
        assert cache.load_entry(job.kind, key) == {"metric": 1.5}
        assert cache.load(job) == {"metric": 1.5}
        assert cache.path_for_key(job.kind, key) == cache.path_for(job)


class TestCachePrune:
    """`repro cache prune`: age- and size-bounded garbage collection."""

    def _fill(self, cache, count):
        for seed in range(count):
            job = quick_job(seed=seed)
            cache.store_entry(job.kind, job.cache_key(), job.to_dict(), {"m": seed})
        return [quick_job(seed=seed) for seed in range(count)]

    def test_age_limit_removes_only_stale_entries(self, tmp_path):
        # Ages come from the record timestamps, which follow the injected
        # clock: seed 0 is stored two hours before the rest.
        ticks = {"now": 1_000_000.0}
        cache = ResultCache(tmp_path, clock=lambda: ticks["now"])
        jobs = [quick_job(seed=seed) for seed in range(3)]
        cache.store_entry(jobs[0].kind, jobs[0].cache_key(), jobs[0].to_dict(), {"m": 0})
        ticks["now"] += 7200
        for seed, job in enumerate(jobs[1:], start=1):
            cache.store_entry(job.kind, job.cache_key(), job.to_dict(), {"m": seed})
        result = cache.prune(max_age_seconds=3600, now=ticks["now"])
        assert result.removed_entries == 1
        assert result.kept_entries == 2
        assert cache.load(jobs[0]) is None
        assert cache.load(jobs[1]) is not None

    def test_size_limit_evicts_oldest_first(self, tmp_path):
        ticks = {"now": 1_000_000.0}
        cache = ResultCache(tmp_path, clock=lambda: ticks["now"])
        jobs = [quick_job(seed=seed) for seed in range(4)]
        # Make ages distinct and increasing with seed (seed 0 is oldest).
        for seed, job in enumerate(jobs):
            cache.store_entry(job.kind, job.cache_key(), job.to_dict(), {"m": seed})
            ticks["now"] += 100.0
        # All four records have the same framed size, so half the live
        # bytes is exactly the budget for the two newest entries.
        keep_two = cache.stats()["figure5"].bytes // 2
        result = cache.prune(max_bytes=keep_two, now=ticks["now"])
        assert result.removed_entries == 2
        assert cache.load(jobs[0]) is None and cache.load(jobs[1]) is None
        assert cache.load(jobs[2]) is not None and cache.load(jobs[3]) is not None
        assert result.kept_bytes <= keep_two
        # Eviction compacts: the evicted records physically leave the
        # segments, so a rebuild-by-scan cannot resurrect them.
        rescan = ResultCache(tmp_path)
        assert rescan.load(jobs[0]) is None
        assert rescan.load(jobs[3]) is not None

    def test_noop_pass_counts_the_inventory(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        result = cache.prune()
        assert result.removed_entries == 0
        assert result.kept_entries == 2
        assert "pruned 0 entries" in result.summary()

    def test_pruning_a_missing_directory_is_a_noop(self, tmp_path):
        result = ResultCache(tmp_path / "never-created").prune(max_age_seconds=1)
        assert result.removed_entries == 0 and result.kept_entries == 0
