"""Tests for the combined text reporting module."""

from __future__ import annotations

import pytest

from repro.faults.campaign import FaultInjectionCampaign
from repro.config.presets import paper_system_config
from repro.sim.experiments import ExperimentSettings
from repro.sim.reporting import fault_coverage_report, format_coverage_reports, full_report


def test_format_coverage_reports_lists_every_configuration():
    campaign = FaultInjectionCampaign(config=paper_system_config(), seed=1)
    rendered = format_coverage_reports(campaign.run(trials_per_site=5))
    assert "always-dmr" in rendered
    assert "mmm" in rendered
    assert "naive-mode-switch" in rendered
    assert "coverage" in rendered


def test_fault_coverage_report_convenience_wrapper():
    rendered = fault_coverage_report(trials_per_site=5, seed=2)
    assert "Fault-injection coverage" in rendered


@pytest.mark.slow
def test_full_report_quick_contains_every_section():
    settings = ExperimentSettings.quick()
    report = full_report(
        settings,
        include_switching=False,
        include_ablation=False,
        include_faults=True,
    )
    assert "Figure 5(a)" in report
    assert "Figure 5(b)" in report
    assert "Figure 6(a)" in report
    assert "Figure 6(b)" in report
    assert "serial PAB" in report or "PAB" in report
    assert "Fault-injection coverage" in report
