"""Tests for the simulation result containers."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.results import SimulationResult, VcpuResult, VmResult
from repro.virt.vcpu import ReliabilityMode


def make_vcpu_result(vcpu_id, vm_id, user=1000, total=1200, cycles=5000):
    return VcpuResult(
        vcpu_id=vcpu_id,
        vm_id=vm_id,
        user_instructions=user,
        os_instructions=total - user,
        total_instructions=total,
        active_cycles=cycles,
        mode_switches=0,
        mode_switch_cycles=0,
    )


def make_result():
    reliable = VmResult(
        vm_id=0, name="reliable", workload_name="oltp", reliability=ReliabilityMode.RELIABLE,
        vcpus=[make_vcpu_result(0, 0, user=1000), make_vcpu_result(1, 0, user=2000)],
    )
    performance = VmResult(
        vm_id=1, name="performance", workload_name="oltp",
        reliability=ReliabilityMode.PERFORMANCE,
        vcpus=[make_vcpu_result(2, 1, user=4000)],
    )
    return SimulationResult(
        policy_name="mmm-tp",
        total_cycles=10_000,
        warmup_cycles=1_000,
        vm_results=[reliable, performance],
        transitions=4,
        transition_cycles=100,
        violation_counts={"PAB_BLOCKED": 2},
    )


class TestVcpuAndVmResults:
    def test_vcpu_user_ipc(self):
        vcpu = make_vcpu_result(0, 0, user=500)
        assert vcpu.user_ipc(1000) == 0.5
        assert vcpu.user_ipc(0) == 0.0

    def test_vm_aggregates(self):
        result = make_result()
        reliable = result.vm("reliable")
        assert reliable.num_vcpus == 2
        assert reliable.user_instructions == 3000
        assert reliable.throughput(10_000) == pytest.approx(0.3)
        assert reliable.average_user_ipc(10_000) == pytest.approx(0.15)


class TestSimulationResult:
    def test_lookup_by_name_and_id(self):
        result = make_result()
        assert result.vm("performance").vm_id == 1
        assert result.vm_by_id(0).name == "reliable"
        with pytest.raises(SimulationError):
            result.vm("missing")
        with pytest.raises(SimulationError):
            result.vm_by_id(9)

    def test_machine_wide_metrics(self):
        result = make_result()
        assert result.total_user_instructions == 7000
        assert result.overall_throughput() == pytest.approx(0.7)
        # Average over three VCPUs: (0.1 + 0.2 + 0.4) / 3
        assert result.average_user_ipc() == pytest.approx(0.7 / 3)
        assert result.per_vm_throughput() == {
            "reliable": pytest.approx(0.3),
            "performance": pytest.approx(0.4),
        }

    def test_violations_and_to_dict(self):
        result = make_result()
        assert result.silent_corruptions() == 0
        summary = result.to_dict()
        assert summary["policy"] == "mmm-tp"
        assert summary["vms"]["performance"]["num_vcpus"] == 1
        assert summary["violations"] == {"PAB_BLOCKED": 2}
        assert summary["transitions"] == 4
