"""Tests for the calibrated workload profiles."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.instructions import PrivilegeLevel
from repro.workloads.profiles import (
    PAPER_WORKLOAD_NAMES,
    PAPER_WORKLOADS,
    WorkloadProfile,
    get_profile,
)


def test_all_six_paper_workloads_exist():
    assert set(PAPER_WORKLOAD_NAMES) == {
        "apache", "oltp", "pgoltp", "pmake", "pgbench", "zeus",
    }
    for name in PAPER_WORKLOAD_NAMES:
        assert PAPER_WORKLOADS[name].name == name


def test_get_profile_is_case_insensitive_and_rejects_unknown():
    assert get_profile("Apache").name == "apache"
    with pytest.raises(WorkloadError):
        get_profile("speccpu")


def test_every_profile_validates():
    for profile in PAPER_WORKLOADS.values():
        assert profile.validate() is profile


def test_os_intensity_ordering_matches_paper_table2():
    """Zeus and Apache are the OS-intensive workloads; pgbench/pmake the least."""
    intensity = {name: profile.os_intensity for name, profile in PAPER_WORKLOADS.items()}
    assert intensity["zeus"] > intensity["apache"] > intensity["oltp"]
    assert intensity["apache"] > intensity["pgbench"]
    assert intensity["apache"] > intensity["pmake"]


def test_user_phase_length_ordering_matches_paper_table2():
    """pgbench has by far the longest user phases; apache/zeus the shortest."""
    lengths = {
        name: profile.mean_user_phase_instructions
        for name, profile in PAPER_WORKLOADS.items()
    }
    assert lengths["pgbench"] == max(lengths.values())
    assert min(lengths, key=lengths.get) in ("apache", "zeus")


def test_os_phase_length_ordering_matches_paper_table2():
    lengths = {
        name: profile.mean_os_phase_instructions
        for name, profile in PAPER_WORKLOADS.items()
    }
    ordered = sorted(lengths, key=lengths.get, reverse=True)
    assert ordered[0] == "zeus"
    assert ordered[1] == "pgbench"
    assert lengths["pgoltp"] == min(lengths.values())


def test_pmake_has_least_sharing():
    """The paper notes pmake has very few cache-to-cache transfers."""
    sharing = {
        name: profile.shared_access_fraction for name, profile in PAPER_WORKLOADS.items()
    }
    assert sharing["pmake"] == min(sharing.values())


def test_os_code_has_more_serializing_instructions_than_user_code():
    for profile in PAPER_WORKLOADS.values():
        assert profile.os_si_per_kilo > profile.user_si_per_kilo


def test_mix_for_and_si_for_distinguish_privilege():
    profile = get_profile("oltp")
    user_mix = profile.mix_for(PrivilegeLevel.USER)
    os_mix = profile.mix_for(PrivilegeLevel.GUEST_OS)
    assert user_mix != os_mix
    assert profile.si_per_kilo_for(PrivilegeLevel.GUEST_OS) > profile.si_per_kilo_for(
        PrivilegeLevel.USER
    )
    assert profile.icache_mpki_for(PrivilegeLevel.HYPERVISOR) >= profile.icache_mpki_for(
        PrivilegeLevel.USER
    )


class TestScaling:
    def test_phase_scaling(self):
        profile = get_profile("pgbench")
        scaled = profile.scaled(phase_scale=0.01)
        assert scaled.mean_user_phase_instructions == int(
            profile.mean_user_phase_instructions * 0.01
        )
        assert scaled.user_footprint_bytes == profile.user_footprint_bytes

    def test_footprint_scaling_has_floor(self):
        profile = get_profile("pmake")
        scaled = profile.scaled(footprint_scale=1e-6)
        assert scaled.user_hot_bytes >= 4096
        assert scaled.user_footprint_bytes >= 8192

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("apache").scaled(phase_scale=0)

    def test_scaled_profile_still_validates(self):
        for profile in PAPER_WORKLOADS.values():
            profile.scaled(phase_scale=0.01, footprint_scale=0.125).validate()


def test_invalid_profile_rejected():
    profile = get_profile("apache")
    bad = WorkloadProfile(**{**profile.__dict__, "user_load_fraction": 0.9})
    with pytest.raises(WorkloadError):
        bad.validate()
