"""Exact-parity tests for the batched ``run_quantum`` hot path.

``CoreTimingModel.run_quantum`` is a batched rewrite of the original
per-instruction loop, which is retained as
``CoreTimingModel.run_quantum_reference`` -- the executable specification.
These tests build *two* machines from identical ``(config, vm_specs,
policy, seed)`` tuples (machine construction is fully deterministic), drive
one through the batched path and one through the reference path with the
same arguments, and require bit-identical results: cycle counts, committed
instruction counts, every statistic key and value, and every recorded
violation.

Bit-identity (not tolerance) is the contract: the batched loop performs
its float additions on the cycle accumulator in the same order as the
reference, draws from the shared RNG in the same order, and replicates the
reference's stats key-presence rules exactly.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.config.presets import paper_system_config
from repro.core.machine import MixedModeMachine, VmSpec
from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.faults.injector import FaultRates
from repro.virt.vcpu import ReliabilityMode


def _build_machine(seed: int, fault_rates: Optional[FaultRates] = None):
    config = paper_system_config().validate()
    specs = [
        VmSpec(
            name="reliable",
            workload="oltp",
            num_vcpus=2,
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=0.02,
        ),
        VmSpec(
            name="performance",
            workload="apache",
            num_vcpus=2,
            reliability=ReliabilityMode.PERFORMANCE,
            phase_scale=0.02,
        ),
    ]
    return MixedModeMachine(
        config=config,
        vm_specs=specs,
        policy="mmm-tp",
        seed=seed,
        fault_rates=fault_rates,
    )


def _assignment(machine, mode: ExecutionMode) -> CoreAssignment:
    if mode is ExecutionMode.DMR:
        return CoreAssignment(
            mode=mode,
            primary_core=0,
            secondary_core=1,
            reunion_pair=machine.pair_factory(0, 1),
        )
    return CoreAssignment(mode=mode, primary_core=0)


def _run(machine, method_name: str, *, mode, vcpu_index, **kwargs):
    vcpu = machine.vcpus[vcpu_index]
    method = getattr(machine.timing_model, method_name)
    return method(
        workload=vcpu.workload,
        assignment=_assignment(machine, mode),
        vcpu_id=vcpu.vcpu_id,
        **kwargs,
    )


def _assert_identical(batched, reference):
    assert batched.cycles == reference.cycles
    assert batched.instructions == reference.instructions
    assert batched.user_instructions == reference.user_instructions
    assert batched.os_instructions == reference.os_instructions
    assert batched.stop_reason == reference.stop_reason
    assert batched.stats.as_dict() == reference.stats.as_dict()
    assert len(batched.violations) == len(reference.violations)
    for got, want in zip(batched.violations, reference.violations):
        assert got.kind == want.kind
        assert got.cycle == want.cycle
        assert got.core_id == want.core_id
        assert got.vcpu_id == want.vcpu_id
        assert got.physical_address == want.physical_address


def _compare_quanta(seed, *, mode, vcpu_index, quanta, fault_rates=None, **kwargs):
    """Run ``quanta`` consecutive quanta through both paths and compare."""
    fast = _build_machine(seed, fault_rates=fault_rates)
    slow = _build_machine(seed, fault_rates=fault_rates)
    for index in range(quanta):
        start = index * kwargs.get("cycle_budget", 0)
        batched = _run(
            fast, "run_quantum", mode=mode, vcpu_index=vcpu_index,
            start_cycle=start, **kwargs,
        )
        reference = _run(
            slow, "run_quantum_reference", mode=mode, vcpu_index=vcpu_index,
            start_cycle=start, **kwargs,
        )
        _assert_identical(batched, reference)
        assert batched.instructions > 0


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_parity_baseline_mode(seed):
    _compare_quanta(seed, mode=ExecutionMode.BASELINE, vcpu_index=0,
                    quanta=3, cycle_budget=20_000)


@pytest.mark.parametrize("seed", [0, 3])
def test_parity_dmr_mode(seed):
    _compare_quanta(seed, mode=ExecutionMode.DMR, vcpu_index=0,
                    quanta=3, cycle_budget=20_000)


@pytest.mark.parametrize("seed", [0, 5])
def test_parity_performance_mode_with_pab(seed):
    # Performance-mode VCPUs (index 2/3) exercise the PAB check path.
    _compare_quanta(seed, mode=ExecutionMode.PERFORMANCE, vcpu_index=2,
                    quanta=3, cycle_budget=20_000)


def test_parity_with_contention():
    _compare_quanta(0, mode=ExecutionMode.PERFORMANCE, vcpu_index=2,
                    quanta=2, cycle_budget=15_000, active_cores=6)


def test_parity_stop_on_os_entry_and_exit():
    _compare_quanta(0, mode=ExecutionMode.BASELINE, vcpu_index=0,
                    quanta=4, cycle_budget=50_000, stop_on_os_entry=True)
    _compare_quanta(1, mode=ExecutionMode.BASELINE, vcpu_index=0,
                    quanta=4, cycle_budget=50_000, stop_on_os_exit=True)


def test_parity_max_instructions():
    _compare_quanta(0, mode=ExecutionMode.DMR, vcpu_index=0,
                    quanta=2, cycle_budget=500_000, max_instructions=1_234)


def test_parity_with_fault_hook():
    # High execution-fault rate so DMR corruption/recovery paths fire, and a
    # store-address rate so performance-mode redirection draws fire too.
    rates = FaultRates(execution_result=0.002, store_address=0.001)
    _compare_quanta(0, mode=ExecutionMode.DMR, vcpu_index=0,
                    quanta=3, cycle_budget=20_000, fault_rates=rates)
    _compare_quanta(2, mode=ExecutionMode.PERFORMANCE, vcpu_index=2,
                    quanta=3, cycle_budget=20_000, fault_rates=rates)


def test_parity_fault_recovery_observed():
    """The fault-hook parity run above is only meaningful if recoveries
    actually happened; assert the scenario exercises them."""
    rates = FaultRates(execution_result=0.01)
    machine = _build_machine(0, fault_rates=rates)
    result = _run(
        machine, "run_quantum", mode=ExecutionMode.DMR, vcpu_index=0,
        cycle_budget=60_000,
    )
    assert result.stats.get("dmr_recoveries") > 0
