"""Tests for normalisation helpers and text-table rendering."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import normalize_to, percent_change, speedup
from repro.analysis.tables import TextTable, format_cell, format_series


def test_normalize_to_baseline():
    values = {"base": 2.0, "fast": 3.0, "slow": 1.0}
    normalized = normalize_to(values, "base")
    assert normalized == {"base": 1.0, "fast": 1.5, "slow": 0.5}


def test_normalize_with_missing_or_zero_baseline_returns_zeros():
    assert normalize_to({"a": 2.0}, "missing") == {"a": 0.0}
    assert normalize_to({"a": 2.0, "b": 0.0}, "b") == {"a": 0.0, "b": 0.0}


def test_speedup_and_percent_change():
    assert speedup(4.0, 2.0) == 2.0
    assert speedup(4.0, 0.0) == 0.0
    assert percent_change(110.0, 100.0) == pytest.approx(10.0)
    assert percent_change(90.0, 100.0) == pytest.approx(-10.0)
    assert percent_change(5.0, 0.0) == 0.0


def test_format_cell():
    assert format_cell(1.23456) == "1.235"
    assert format_cell("text") == "text"
    assert format_cell(7) == "7"


def test_format_series():
    assert format_series("ipc", [1.0, 0.5]) == "ipc: [1.000, 0.500]"


class TestTextTable:
    def test_renders_title_headers_and_rows(self):
        table = TextTable(["workload", "ipc"], title="Figure X")
        table.add_row(["apache", 0.5])
        table.add_row(["zeus", 0.25])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Figure X"
        assert "workload" in lines[1] and "ipc" in lines[1]
        assert any("apache" in line and "0.500" in line for line in lines)

    def test_columns_are_aligned(self):
        table = TextTable(["a", "bbbbbb"], title="")
        table.add_row(["x", 1.0])
        table.add_row(["longer", 2.0])
        lines = table.render().splitlines()
        header_position = lines[0].index("bbbbbb")
        for line in lines[2:]:
            cell = line[header_position:].strip().split()[0]
            assert cell in ("1.000", "2.000")

    def test_str_equals_render(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert str(table) == table.render()

    def test_short_rows_are_padded(self):
        table = TextTable(["a", "b", "c"])
        table.add_row(["only"])
        assert "only" in table.render()
