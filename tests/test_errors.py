"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.WorkloadError,
    errors.SchedulingError,
    errors.ProtectionError,
    errors.MemorySystemError,
    errors.TransitionError,
    errors.FaultInjectionError,
    errors.SimulationError,
    errors.ExperimentError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_errors_carry_messages(error_type):
    with pytest.raises(errors.ReproError, match="something broke"):
        raise error_type("something broke")


def test_catching_base_class_catches_subclasses():
    caught = []
    for error_type in ALL_ERRORS:
        try:
            raise error_type("x")
        except errors.ReproError as exc:
            caught.append(type(exc))
    assert caught == ALL_ERRORS
