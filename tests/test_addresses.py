"""Tests for address arithmetic and the physical address-space layout."""

from __future__ import annotations

import pytest

from repro.common.addresses import (
    DEFAULT_PAGE_SIZE,
    AddressSpaceLayout,
    Region,
    align_down,
    align_up,
    cache_line_address,
    cache_line_index,
    page_number,
    page_offset,
)
from repro.errors import ConfigurationError


def test_align_down_and_up():
    assert align_down(130, 64) == 128
    assert align_up(130, 64) == 192
    assert align_up(128, 64) == 128
    assert align_down(128, 64) == 128


def test_align_rejects_nonpositive_alignment():
    with pytest.raises(ConfigurationError):
        align_down(10, 0)
    with pytest.raises(ConfigurationError):
        align_up(10, -4)


def test_page_and_line_helpers():
    address = 3 * DEFAULT_PAGE_SIZE + 100
    assert page_number(address) == 3
    assert page_offset(address) == 100
    assert cache_line_address(address) == address - (address % 64)
    assert cache_line_index(address) == address // 64


def test_region_contains_and_offset():
    region = Region("r", base=0x1000, size=0x100)
    assert region.contains(0x1000)
    assert region.contains(0x10FF)
    assert not region.contains(0x1100)
    assert region.offset_address(0x10) == 0x1010
    with pytest.raises(ConfigurationError):
        region.offset_address(0x100)


class TestAddressSpaceLayout:
    def test_regions_are_disjoint_and_ordered(self):
        layout = AddressSpaceLayout(vm_memory_bytes=4 * 1024 * 1024, num_vms=2)
        regions = [
            layout.vm_region(0),
            layout.vm_region(1),
            layout.scratchpad_region(),
            layout.pat_region(),
        ]
        for earlier, later in zip(regions, regions[1:]):
            assert earlier.end <= later.base

    def test_vm_subregions_partition_the_vm_region(self):
        layout = AddressSpaceLayout(vm_memory_bytes=4 * 1024 * 1024, num_vms=1)
        vm = layout.vm_region(0)
        user = layout.user_region(0)
        shared = layout.shared_region(0)
        kernel = layout.kernel_region(0)
        assert user.base == vm.base
        assert user.end == shared.base
        assert shared.end == kernel.base
        assert kernel.end == vm.end

    def test_owner_of_resolves_regions(self):
        layout = AddressSpaceLayout(vm_memory_bytes=2 * 1024 * 1024, num_vms=2)
        assert layout.owner_of(layout.user_region(1).base) == "vm1"
        assert layout.owner_of(layout.scratchpad_region().base) == "scratchpad"
        assert layout.owner_of(layout.pat_region().base) == "pat"

    def test_owner_of_outside_memory_raises(self):
        layout = AddressSpaceLayout(vm_memory_bytes=2 * 1024 * 1024, num_vms=1)
        with pytest.raises(ConfigurationError):
            layout.owner_of(layout.total_bytes + 10)

    def test_unknown_region_name_raises(self):
        layout = AddressSpaceLayout()
        with pytest.raises(ConfigurationError):
            layout.region("vm7")

    def test_scratchpad_slots_do_not_overlap(self):
        layout = AddressSpaceLayout(scratchpad_bytes=64 * 1024)
        slot0 = layout.scratchpad_slot(0, 2368)
        slot1 = layout.scratchpad_slot(1, 2368)
        assert slot0.end <= slot1.base
        assert layout.scratchpad_region().contains(slot1.base)

    def test_scratchpad_slot_overflow_raises(self):
        layout = AddressSpaceLayout(scratchpad_bytes=16 * 1024)
        with pytest.raises(ConfigurationError):
            layout.scratchpad_slot(1000, 2368)

    def test_requires_at_least_one_vm(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceLayout(num_vms=0)

    def test_total_bytes_covers_everything(self):
        layout = AddressSpaceLayout(vm_memory_bytes=2 * 1024 * 1024, num_vms=3)
        assert layout.total_bytes == layout.pat_region().end
