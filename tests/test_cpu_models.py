"""Tests for the window/LSQ/serialising models and timing parameters."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config.system import ConsistencyModel, CoreConfig, InterconnectConfig, ReunionConfig
from repro.cpu.lsq import LoadStoreQueueModel
from repro.cpu.parameters import TimingModelParameters
from repro.cpu.serializing import SerializingInstructionModel
from repro.cpu.window import InstructionWindowModel
from repro.errors import ConfigurationError


@pytest.fixture
def parameters():
    return TimingModelParameters()


@pytest.fixture
def core_config():
    return CoreConfig()


class TestParameters:
    def test_defaults_validate(self, parameters):
        assert parameters.validate() is parameters

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(TimingModelParameters(), memory_exposure=1.5).validate()
        with pytest.raises(ConfigurationError):
            replace(TimingModelParameters(), dmr_window_pressure=0.5).validate()
        with pytest.raises(ConfigurationError):
            replace(TimingModelParameters(), reference_window_entries=2).validate()


class TestWindowModel:
    def test_dmr_shrinks_effective_window(self, core_config, parameters):
        window = InstructionWindowModel(core_config, parameters)
        assert window.effective_entries(dmr_active=True) < window.effective_entries(
            dmr_active=False
        )

    def test_dmr_raises_offcore_exposure(self, core_config, parameters):
        window = InstructionWindowModel(core_config, parameters)
        assert window.l3_exposure(True) > window.l3_exposure(False)
        assert window.memory_exposure(True) > window.memory_exposure(False)

    def test_larger_window_hides_more_latency(self, parameters):
        small = InstructionWindowModel(CoreConfig(window_entries=64), parameters)
        large = InstructionWindowModel(CoreConfig(window_entries=256), parameters)
        assert large.memory_exposure(False) < small.memory_exposure(False)
        assert large.l3_exposure(False) < small.l3_exposure(False)

    def test_exposures_are_bounded(self, core_config, parameters):
        window = InstructionWindowModel(core_config, parameters)
        for level in ("l1", "l2", "l3", "c2c", "memory"):
            for dmr in (False, True):
                exposure = window.exposure_for_level(level, dmr)
                assert 0.0 <= exposure <= 1.0
        assert window.exposure_for_level("l1", False) == 0.0

    def test_drain_is_longer_under_dmr(self, core_config, parameters):
        window = InstructionWindowModel(core_config, parameters)
        assert window.drain_cycles(True) > window.drain_cycles(False)

    def test_sample_reports_current_view(self, core_config, parameters):
        window = InstructionWindowModel(core_config, parameters)
        sample = window.sample(dmr_active=True)
        assert sample.effective_entries < core_config.window_entries
        assert sample.memory_exposure >= sample.l3_exposure


class TestLsqModel:
    def test_sc_exposes_much_more_than_tso(self, parameters):
        sc = LoadStoreQueueModel(CoreConfig(consistency=ConsistencyModel.SEQUENTIAL), parameters)
        tso = LoadStoreQueueModel(CoreConfig(consistency=ConsistencyModel.TSO), parameters)
        assert sc.store_exposure(False) > 3 * tso.store_exposure(False)

    def test_dmr_inflates_sc_store_exposure_only(self, parameters):
        sc = LoadStoreQueueModel(CoreConfig(), parameters)
        tso = LoadStoreQueueModel(CoreConfig(consistency=ConsistencyModel.TSO), parameters)
        assert sc.store_exposure(True) > sc.store_exposure(False)
        assert tso.store_exposure(True) == tso.store_exposure(False)

    def test_small_store_queue_exposes_more(self, parameters):
        small = LoadStoreQueueModel(CoreConfig(lsq_store_entries=8), parameters)
        large = LoadStoreQueueModel(CoreConfig(lsq_store_entries=64), parameters)
        assert small.store_exposure(False) > large.store_exposure(False)

    def test_load_queue_pressure_at_reference_size_is_one(self, parameters):
        model = LoadStoreQueueModel(CoreConfig(lsq_load_entries=32), parameters)
        assert model.load_queue_pressure() == pytest.approx(1.0)
        small = LoadStoreQueueModel(CoreConfig(lsq_load_entries=8), parameters)
        assert small.load_queue_pressure() > 1.0


class TestSerializingModel:
    def make(self, parameters, core_config=None):
        core_config = core_config or CoreConfig()
        window = InstructionWindowModel(core_config, parameters)
        return SerializingInstructionModel(
            core_config, ReunionConfig(), InterconnectConfig(), window
        )

    def test_dmr_adds_validation_round_trip(self, parameters):
        model = self.make(parameters)
        plain = model.cost(dmr_active=False)
        dmr = model.cost(dmr_active=True)
        assert plain.validation_cycles == 0.0
        assert dmr.validation_cycles > 0.0
        assert dmr.total > plain.total

    def test_validation_includes_fingerprint_latency(self, parameters):
        model = self.make(parameters)
        cost = model.cost(dmr_active=True)
        assert cost.validation_cycles >= InterconnectConfig().fingerprint_latency

    def test_total_is_sum_of_parts(self, parameters):
        cost = self.make(parameters).cost(dmr_active=True)
        assert cost.total == pytest.approx(cost.drain_cycles + cost.validation_cycles)
