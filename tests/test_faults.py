"""Tests for fault models, the injector, and coverage campaigns."""

from __future__ import annotations

import pytest

from repro.common.rng import DeterministicRng
from repro.config.presets import paper_system_config
from repro.cpu.timing import ExecutionMode
from repro.errors import FaultInjectionError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    CampaignConfiguration,
    FaultInjectionCampaign,
)
from repro.faults.injector import FaultInjector, FaultRates
from repro.faults.models import FaultSite, FaultSpec, FaultType
from repro.faults.outcomes import (
    PROTECTED_OUTCOMES,
    CoverageReport,
    FaultOutcome,
    TrialRecord,
)
from repro.isa.registers import PRIVILEGED_REGISTERS
from repro.virt.vcpu import ReliabilityMode, VirtualCPU
from tests.conftest import make_workload


class TestModels:
    def test_spec_validation(self):
        FaultSpec(site=FaultSite.EXECUTION_RESULT).validate()
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.STORE_ADDRESS_PATH).validate()
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.PRIVILEGED_REGISTER).validate()
        with pytest.raises(FaultInjectionError):
            FaultSpec(site=FaultSite.TLB_ENTRY, duration_operations=0).validate()

    def test_fault_types_exist(self):
        assert {FaultType.TRANSIENT, FaultType.INTERMITTENT, FaultType.PERMANENT}


class TestRates:
    def test_any_active(self):
        assert not FaultRates().any_active()
        assert FaultRates(store_address=0.1).any_active()
        assert FaultRates(execution_result=0.1).any_active()
        assert FaultRates(privileged_register=0.1).any_active()


class TestInjector:
    def make(self, rates):
        return FaultInjector(
            rates=rates, rng=DeterministicRng(3), reliable_target_address=0x1000
        )

    def test_store_redirection_only_in_performance_mode(self):
        injector = self.make(FaultRates(store_address=1.0))
        assert (
            injector.perturb_store_address(0, ExecutionMode.PERFORMANCE, 0x5000) == 0x1000
        )
        assert injector.perturb_store_address(0, ExecutionMode.DMR, 0x5000) == 0x5000
        assert injector.stats.get("store_address_faults") == 1

    def test_zero_rate_never_redirects(self):
        injector = self.make(FaultRates(store_address=0.0))
        for _ in range(100):
            assert (
                injector.perturb_store_address(0, ExecutionMode.PERFORMANCE, 0x5000)
                == 0x5000
            )

    def test_execution_corruption_rate(self):
        injector = self.make(FaultRates(execution_result=0.5))
        hits = sum(
            injector.corrupt_execution(0, ExecutionMode.DMR) for _ in range(2000)
        )
        assert 800 < hits < 1200
        assert injector.injected_fault_count == hits

    def test_privileged_register_corruption(self, layout):
        injector = self.make(FaultRates(privileged_register=1.0))
        vcpu = VirtualCPU(
            vcpu_id=0, vm_id=0, workload=make_workload(layout),
            mode_register=ReliabilityMode.PERFORMANCE,
        )
        register = injector.maybe_corrupt_privileged_register(vcpu)
        assert register in PRIVILEGED_REGISTERS
        assert vcpu.arch_state.privileged[register] != 0

    def test_no_register_corruption_at_zero_rate(self, layout):
        injector = self.make(FaultRates(privileged_register=0.0))
        vcpu = VirtualCPU(
            vcpu_id=0, vm_id=0, workload=make_workload(layout),
            mode_register=ReliabilityMode.PERFORMANCE,
        )
        assert injector.maybe_corrupt_privileged_register(vcpu) is None


class TestCoverageReport:
    def make_report(self, outcomes):
        report = CoverageReport(configuration="x")
        for outcome in outcomes:
            report.record(
                TrialRecord(
                    spec=FaultSpec(site=FaultSite.EXECUTION_RESULT),
                    outcome=outcome,
                    configuration="x",
                )
            )
        return report

    def test_coverage_fraction(self):
        report = self.make_report(
            [FaultOutcome.DETECTED_DMR, FaultOutcome.SILENT_CORRUPTION, FaultOutcome.MASKED]
        )
        assert report.total == 3
        assert report.coverage == pytest.approx(2 / 3)
        assert report.silent_corruption_rate == pytest.approx(1 / 3)

    def test_empty_report_is_fully_covered(self):
        report = self.make_report([])
        assert report.coverage == 1.0
        assert report.silent_corruption_rate == 0.0

    def test_histogram_and_rows(self):
        report = self.make_report([FaultOutcome.DETECTED_PAB, FaultOutcome.DETECTED_PAB])
        assert report.outcome_histogram()[FaultOutcome.DETECTED_PAB] == 2
        rows = list(report.summary_rows())
        assert rows[0][0] == "DETECTED_PAB"
        assert rows[0][1] == 2

    def test_by_site(self):
        report = self.make_report([FaultOutcome.DETECTED_DMR, FaultOutcome.SILENT_CORRUPTION])
        protected, total = report.by_site()[FaultSite.EXECUTION_RESULT]
        assert (protected, total) == (1, 2)


class TestCampaign:
    @pytest.fixture(scope="class")
    def reports(self):
        campaign = FaultInjectionCampaign(config=paper_system_config(), seed=1)
        return {r.configuration: r for r in campaign.run(trials_per_site=10)}

    def test_runs_every_default_configuration(self, reports):
        assert set(reports) == {c.name for c in DEFAULT_CONFIGURATIONS}

    def test_dmr_has_full_coverage(self, reports):
        assert reports["always-dmr"].coverage == 1.0
        assert reports["always-dmr"].silent_corruption_rate == 0.0

    def test_mmm_protects_reliable_state(self, reports):
        """The MMM's PAB + transition verification keep coverage complete."""
        assert reports["mmm"].coverage == 1.0
        assert reports["mmm"].count(FaultOutcome.DETECTED_PAB) > 0
        assert reports["mmm"].count(FaultOutcome.DETECTED_TRANSITION) > 0

    def test_naive_mode_switching_suffers_silent_corruption(self, reports):
        """Turning DMR off without the MMM mechanisms corrupts reliable state."""
        naive = reports["naive-mode-switch"]
        assert naive.count(FaultOutcome.SILENT_CORRUPTION) > 0
        assert naive.coverage < 1.0
        assert naive.coverage < reports["mmm"].coverage

    def test_invalid_trial_count_rejected(self):
        campaign = FaultInjectionCampaign(config=paper_system_config())
        with pytest.raises(FaultInjectionError):
            campaign.run(trials_per_site=0)

    def test_custom_configuration(self):
        campaign = FaultInjectionCampaign(config=paper_system_config(), seed=2)
        only_pab = CampaignConfiguration(name="pab-only", dmr_active=False, pab_active=True)
        (report,) = campaign.run(trials_per_site=5, configurations=[only_pab])
        assert report.configuration == "pab-only"
        assert report.count(FaultOutcome.DETECTED_PAB) > 0

    def test_protected_outcomes_cover_detections(self):
        assert FaultOutcome.DETECTED_DMR in PROTECTED_OUTCOMES
        assert FaultOutcome.SILENT_CORRUPTION not in PROTECTED_OUTCOMES
