"""Tests for the quantum-based simulation loop."""

from __future__ import annotations

import pytest

from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.errors import SimulationError
from repro.faults.injector import FaultRates
from repro.sim.simulator import SimulationOptions, Simulator
from repro.virt.scheduler import VcpuPlacement
from repro.virt.vcpu import ReliabilityMode
from tests.conftest import make_small_machine


def run_machine(machine, **options):
    defaults = dict(total_cycles=8_000, warmup_cycles=2_000)
    defaults.update(options)
    return Simulator(machine, SimulationOptions(**defaults)).run()


class TestOptions:
    def test_validation(self):
        with pytest.raises(SimulationError):
            SimulationOptions(total_cycles=0).validate()
        with pytest.raises(SimulationError):
            SimulationOptions(warmup_cycles=-1).validate()
        with pytest.raises(SimulationError):
            SimulationOptions(quantum_cycles=0).validate()
        with pytest.raises(SimulationError):
            SimulationOptions(transition_cost_scale=100.0).validate()
        assert SimulationOptions().validate() is not None

    def test_minimum_quantum_cycles_must_be_positive(self):
        # A non-positive floor would make fine-grained switching spin.
        with pytest.raises(SimulationError):
            SimulationOptions(minimum_quantum_cycles=0).validate()
        with pytest.raises(SimulationError):
            SimulationOptions(minimum_quantum_cycles=-64).validate()
        assert SimulationOptions(minimum_quantum_cycles=1).validate() is not None


class TestBasicRuns:
    def test_run_produces_work_for_both_vms(self, small_config):
        machine = make_small_machine(small_config)
        result = run_machine(machine)
        assert result.total_cycles == 8_000
        assert result.vm("reliable").user_instructions > 0
        assert result.vm("performance").user_instructions > 0
        assert result.overall_throughput() > 0

    def test_runs_are_reproducible(self, small_config):
        first = run_machine(make_small_machine(small_config, seed=11))
        second = run_machine(make_small_machine(small_config, seed=11))
        assert first.to_dict() == second.to_dict()

    def test_different_seeds_differ(self, small_config):
        first = run_machine(make_small_machine(small_config, seed=1))
        second = run_machine(make_small_machine(small_config, seed=2))
        assert first.total_user_instructions != second.total_user_instructions

    def test_warmup_is_excluded_from_measurement(self, small_config):
        machine = make_small_machine(small_config, seed=5)
        with_warmup = run_machine(machine, total_cycles=6_000, warmup_cycles=6_000)
        assert with_warmup.total_cycles == 6_000
        assert with_warmup.warmup_cycles == 6_000
        # Counters were reset at the measurement boundary: committed work must
        # be attributable to at most the measured cycles.
        for vm in with_warmup.vm_results:
            for vcpu in vm.vcpus:
                assert vcpu.active_cycles <= 6_000 + 2 * machine.config.virtualization.timeslice_cycles

    def test_gang_scheduling_time_shares_the_machine(self, small_config):
        machine = make_small_machine(small_config, seed=7)
        result = run_machine(machine, total_cycles=16_000, warmup_cycles=0)
        # Each VM is scheduled for roughly half of the timeslices, so active
        # cycles per VCPU stay well below the total.
        for vm in result.vm_results:
            for vcpu in vm.vcpus:
                assert vcpu.active_cycles < 0.75 * result.total_cycles

    def test_quantum_stats_accumulate(self, small_config):
        result = run_machine(make_small_machine(small_config))
        assert result.quantum_stats.get("quanta", 0) > 0
        assert result.quantum_stats.get("placed_vcpus", 0) > 0


class TestPolicyBehaviour:
    def test_dmr_base_never_transitions(self, small_config):
        machine = make_small_machine(small_config, policy="dmr-base")
        result = run_machine(machine)
        assert result.transitions == 0
        assert result.enter_dmr_transitions == 0

    def test_mixed_mode_transitions_at_vm_switches(self, small_config):
        machine = make_small_machine(small_config, policy="mmm-tp")
        result = run_machine(machine, total_cycles=16_000, warmup_cycles=0)
        assert result.transitions > 0
        assert result.enter_dmr_transitions > 0
        assert result.leave_dmr_transitions > 0
        assert result.average_leave_dmr_cycles > result.average_enter_dmr_cycles

    def test_mmm_tp_outperforms_dmr_base_for_the_performance_vm(self, small_config):
        base = run_machine(
            make_small_machine(small_config, policy="dmr-base", performance_vcpus=2, seed=9),
            total_cycles=32_000, warmup_cycles=4_000,
        )
        mmm = run_machine(
            make_small_machine(small_config, policy="mmm-tp", performance_vcpus=2, seed=9),
            total_cycles=32_000, warmup_cycles=4_000, transition_cost_scale=0.02,
        )
        assert (
            mmm.vm("performance").throughput(mmm.total_cycles)
            > base.vm("performance").throughput(base.total_cycles)
        )

    def test_overcommitted_vcpus_are_paused(self, small_config):
        machine = make_small_machine(small_config, policy="dmr-base", performance_vcpus=6)
        result = run_machine(machine)
        assert result.paused_vcpu_quanta > 0


class TestFineGrainedSwitching:
    def test_user_only_vcpus_switch_at_syscalls(self, small_config):
        machine = make_small_machine(
            small_config,
            policy="mmm-ipc",
            performance_mode=ReliabilityMode.PERFORMANCE_USER_ONLY,
            performance_vcpus=1,
            seed=13,
        )
        result = run_machine(machine, total_cycles=20_000, warmup_cycles=0,
                             transition_cost_scale=0.01)
        performance = result.vm("performance")
        switches = sum(v.mode_switches for v in performance.vcpus)
        assert switches > 0
        assert result.transitions >= switches

    def test_fine_grained_can_be_disabled(self, small_config):
        machine = make_small_machine(
            small_config,
            policy="mmm-ipc",
            performance_mode=ReliabilityMode.PERFORMANCE_USER_ONLY,
            performance_vcpus=1,
            seed=13,
        )
        result = run_machine(
            machine, total_cycles=20_000, warmup_cycles=0, fine_grained_switching=False
        )
        performance = result.vm("performance")
        # Without fine-grained switching the only transitions are at VM
        # boundaries, charged per placement rather than per syscall.
        assert sum(v.mode_switches for v in performance.vcpus) <= result.transitions


class TestMeasurementBoundary:
    def test_transition_counters_exclude_warmup(self, small_config):
        # The warmup period (two timeslices here) performs its own boundary
        # transitions; the engine's counters must be reset alongside the
        # simulator's at the measurement boundary, or the per-run transition
        # counts of the result would disagree with each other.
        machine = make_small_machine(small_config, policy="mmm-tp", seed=7)
        result = run_machine(machine, total_cycles=16_000, warmup_cycles=8_000)
        assert result.transitions > 0
        assert (
            result.enter_dmr_transitions + result.leave_dmr_transitions
            == result.transitions
        )

    def test_engine_averages_reflect_measured_transitions_only(self, small_config):
        machine = make_small_machine(small_config, policy="mmm-tp", seed=7)
        result = run_machine(machine, total_cycles=16_000, warmup_cycles=8_000)
        assert result.average_enter_dmr_cycles > 0
        assert result.average_leave_dmr_cycles > 0
        # The engine was reset at the boundary, so its live counters agree
        # with the result snapshot instead of including warmup transitions.
        engine = machine.transition_engine
        assert engine.stats.get("enter_dmr_transitions") == result.enter_dmr_transitions
        assert engine.stats.get("leave_dmr_transitions") == result.leave_dmr_transitions


def make_fine_grained_simulator(small_config, **options):
    machine = make_small_machine(
        small_config,
        policy="mmm-ipc",
        performance_mode=ReliabilityMode.PERFORMANCE_USER_ONLY,
        performance_vcpus=1,
        seed=13,
    )
    defaults = dict(total_cycles=8_000, warmup_cycles=0)
    defaults.update(options)
    return machine, Simulator(machine, SimulationOptions(**defaults))


class TestFineGrainedEdgeCases:
    def fine_grained_placement(self, machine):
        machine.allocator.reset()
        plan = machine.policy.plan_quantum(
            machine.vms[1].vcpus, machine.allocator, machine.pair_factory
        )
        (placement,) = plan.placements
        return machine.vcpus[placement.vcpu_id], placement

    def test_budget_exhausted_exactly_at_minimum_quantum(self, small_config):
        # remaining == minimum_quantum_cycles means no useful work fits:
        # the loop must not run (and certainly must not spin).
        machine, sim = make_fine_grained_simulator(small_config)
        vcpu, placement = self.fine_grained_placement(machine)
        sim._run_fine_grained(
            vcpu, placement, sim.options.minimum_quantum_cycles, cycle=0, active_cores=2
        )
        assert vcpu.committed_instructions == 0
        assert vcpu.mode_switches == 0
        assert sim._transitions == 0

    def test_zero_transition_cost_scale_switches_for_free(self, small_config):
        machine, sim = make_fine_grained_simulator(
            small_config, total_cycles=20_000, transition_cost_scale=0.0
        )
        result = sim.run()
        performance = result.vm("performance")
        assert sum(v.mode_switches for v in performance.vcpus) > 0
        assert sum(v.mode_switch_cycles for v in performance.vcpus) == 0
        assert result.transitions > 0
        assert result.transition_cycles == 0

    def test_missing_reserved_partner_core_is_an_error(self, small_config):
        machine, sim = make_fine_grained_simulator(small_config)
        vcpu, placement = self.fine_grained_placement(machine)
        # A performance placement without a reserved partner core cannot
        # re-form its DMR pair at the next OS entry.
        bare = VcpuPlacement(
            vcpu_id=placement.vcpu_id,
            assignment=CoreAssignment(
                mode=ExecutionMode.PERFORMANCE,
                primary_core=placement.assignment.primary_core,
            ),
        )
        with pytest.raises(SimulationError):
            sim._run_fine_grained(vcpu, bare, 4_000, cycle=0, active_cores=1)


class TestFaultInjection:
    def test_store_faults_are_blocked_by_the_pab(self, small_config):
        machine = make_small_machine(
            small_config,
            policy="mmm-tp",
            seed=23,
            fault_rates=FaultRates(store_address=0.05),
        )
        result = run_machine(
            machine, total_cycles=16_000, warmup_cycles=0, transition_cost_scale=0.02
        )
        assert machine.fault_injector is not None
        assert machine.fault_injector.stats.get("store_address_faults") > 0
        assert result.violation_counts.get("PAB_BLOCKED", 0) > 0
        assert result.silent_corruptions() == 0

    def test_execution_faults_are_detected_by_dmr(self, small_config):
        machine = make_small_machine(
            small_config,
            policy="dmr-base",
            seed=22,
            fault_rates=FaultRates(execution_result=0.01),
        )
        result = run_machine(machine, total_cycles=12_000, warmup_cycles=0)
        assert result.violation_counts.get("DMR_DETECTED", 0) > 0
