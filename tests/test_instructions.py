"""Tests for the abstract instruction records."""

from __future__ import annotations

from repro.isa.instructions import (
    Instruction,
    InstructionClass,
    PrivilegeLevel,
    SERIALIZING_CLASSES,
)


def make(iclass, privilege=PrivilegeLevel.USER, address=None):
    return Instruction(seq=0, iclass=iclass, privilege=privilege, address=address)


def test_memory_classification():
    load = make(InstructionClass.LOAD, address=0x100)
    store = make(InstructionClass.STORE, address=0x200)
    alu = make(InstructionClass.ALU)
    assert load.is_load and load.is_memory and not load.is_store
    assert store.is_store and store.is_memory and not store.is_load
    assert not alu.is_memory


def test_serializing_classes_cover_privileged_and_traps():
    assert InstructionClass.SERIALIZING in SERIALIZING_CLASSES
    assert InstructionClass.PRIVILEGED in SERIALIZING_CLASSES
    assert InstructionClass.SYSCALL_ENTRY in SERIALIZING_CLASSES
    assert InstructionClass.SYSCALL_EXIT in SERIALIZING_CLASSES
    assert make(InstructionClass.SERIALIZING).is_serializing
    assert not make(InstructionClass.ALU).is_serializing


def test_privilege_helpers():
    user = make(InstructionClass.ALU, privilege=PrivilegeLevel.USER)
    guest = make(InstructionClass.ALU, privilege=PrivilegeLevel.GUEST_OS)
    hyper = make(InstructionClass.ALU, privilege=PrivilegeLevel.HYPERVISOR)
    assert user.is_user and not user.is_privileged_code
    assert guest.is_privileged_code and not guest.is_user
    assert hyper.is_privileged_code


def test_os_boundary_markers():
    entry = make(InstructionClass.SYSCALL_ENTRY, privilege=PrivilegeLevel.GUEST_OS)
    exit_ = make(InstructionClass.SYSCALL_EXIT, privilege=PrivilegeLevel.GUEST_OS)
    assert entry.enters_os and not entry.exits_os
    assert exit_.exits_os and not exit_.enters_os
    assert not make(InstructionClass.BRANCH).enters_os


def test_branch_flag():
    assert make(InstructionClass.BRANCH).is_branch
    assert not make(InstructionClass.LOAD, address=4).is_branch
