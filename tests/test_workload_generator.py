"""Tests for the synthetic per-VCPU instruction stream generator."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.errors import WorkloadError
from repro.isa.instructions import InstructionClass, PrivilegeLevel
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


@pytest.fixture
def layout():
    return AddressSpaceLayout(vm_memory_bytes=2 * 1024 * 1024, num_vms=1)


def make_workload(layout, name="apache", phase_scale=0.002, seed=11, **kwargs):
    return SyntheticWorkload(
        profile=get_profile(name),
        layout=layout,
        vm_id=0,
        vcpu_index=0,
        num_vcpus=2,
        seed=seed,
        phase_scale=phase_scale,
        **kwargs,
    )


def test_sequence_numbers_are_monotonic(layout):
    workload = make_workload(layout)
    instructions = workload.take(500)
    assert [i.seq for i in instructions] == list(range(500))
    assert workload.instructions_emitted == 500


def test_same_seed_gives_identical_streams(layout):
    a = make_workload(layout, seed=5)
    b = make_workload(layout, seed=5)
    for left, right in zip(a.take(300), b.take(300)):
        assert (left.iclass, left.address, left.privilege, left.result) == (
            right.iclass, right.address, right.privilege, right.result
        )


def test_different_vcpus_get_different_streams(layout):
    a = SyntheticWorkload(get_profile("oltp"), layout, vcpu_index=0, num_vcpus=2, seed=1)
    b = SyntheticWorkload(get_profile("oltp"), layout, vcpu_index=1, num_vcpus=2, seed=1)
    addresses_a = [i.address for i in a.take(200) if i.address is not None]
    addresses_b = [i.address for i in b.take(200) if i.address is not None]
    assert addresses_a != addresses_b


def test_phases_alternate_between_user_and_os(layout):
    workload = make_workload(layout, phase_scale=0.001)
    seen_entry = seen_exit = False
    previous_privilege = PrivilegeLevel.USER
    for instruction in workload.take(3000):
        if instruction.enters_os:
            seen_entry = True
            assert previous_privilege is PrivilegeLevel.USER
        if instruction.exits_os:
            seen_exit = True
        if not instruction.is_serializing:
            previous_privilege = instruction.privilege
    assert seen_entry and seen_exit
    assert workload.user_phases_completed >= 1
    assert workload.os_phases_completed >= 1


def test_memory_instructions_always_carry_addresses(layout):
    workload = make_workload(layout)
    for instruction in workload.take(1000):
        if instruction.is_memory:
            assert instruction.address is not None
        else:
            assert instruction.address is None


def test_instruction_mix_roughly_matches_profile(layout):
    workload = make_workload(layout, name="oltp", phase_scale=0.01)
    profile = get_profile("oltp")
    sample = workload.take(8000)
    user_sample = [i for i in sample if i.is_user]
    loads = sum(1 for i in user_sample if i.is_load) / len(user_sample)
    stores = sum(1 for i in user_sample if i.is_store) / len(user_sample)
    assert abs(loads - profile.user_load_fraction) < 0.05
    assert abs(stores - profile.user_store_fraction) < 0.04


def test_os_phase_uses_requested_privilege(layout):
    workload = make_workload(layout, os_privilege=PrivilegeLevel.HYPERVISOR, phase_scale=0.001)
    privileges = {i.privilege for i in workload.take(3000) if not i.is_user}
    assert privileges == {PrivilegeLevel.HYPERVISOR}


def test_user_os_instruction_balance_tracks_profile(layout):
    workload = make_workload(layout, name="zeus", phase_scale=0.002)
    workload.take(20000)
    profile = get_profile("zeus")
    expected_os_share = profile.os_intensity
    total = workload.user_instructions_emitted + workload.os_instructions_emitted
    observed = workload.os_instructions_emitted / total
    assert abs(observed - expected_os_share) < 0.25


def test_current_privilege_reflects_phase(layout):
    workload = make_workload(layout, phase_scale=0.001)
    assert workload.current_privilege is PrivilegeLevel.USER
    while not workload.in_os_phase:
        workload.next_instruction()
    assert workload.current_privilege is PrivilegeLevel.GUEST_OS


def test_take_rejects_negative_and_user_os_privilege_rejected(layout):
    workload = make_workload(layout)
    with pytest.raises(WorkloadError):
        workload.take(-1)
    with pytest.raises(WorkloadError):
        make_workload(layout, os_privilege=PrivilegeLevel.USER)


def test_stream_iterator_matches_next_instruction(layout):
    workload = make_workload(layout, seed=9)
    reference = make_workload(layout, seed=9)
    stream = reference.stream()
    for _ in range(100):
        assert next(stream).iclass == workload.next_instruction().iclass


def test_syscall_boundaries_are_serializing(layout):
    workload = make_workload(layout, phase_scale=0.001)
    boundaries = [
        i for i in workload.take(5000)
        if i.iclass in (InstructionClass.SYSCALL_ENTRY, InstructionClass.SYSCALL_EXIT)
    ]
    assert boundaries
    assert all(b.is_serializing for b in boundaries)
