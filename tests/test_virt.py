"""Tests for VCPUs, guest VMs, the scratchpad, and the core allocator."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.cpu.core import PhysicalCore
from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.errors import ConfigurationError, SchedulingError
from repro.isa.instructions import PrivilegeLevel
from repro.virt.scheduler import CoreAllocator, GangScheduler, MappingPlan, VcpuPlacement
from repro.virt.scratchpad import ScratchpadManager
from repro.virt.vcpu import ReliabilityMode, VirtualCPU
from repro.virt.vm import GuestVM
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import get_profile


@pytest.fixture
def layout():
    return AddressSpaceLayout(vm_memory_bytes=1024 * 1024, num_vms=1)


def make_vcpu(layout, vcpu_id=0, vm_id=0, mode=ReliabilityMode.RELIABLE, name="apache"):
    workload = SyntheticWorkload(
        profile=get_profile(name), layout=layout, vm_id=vm_id, vcpu_index=0,
        num_vcpus=1, seed=vcpu_id, phase_scale=0.002,
    )
    return VirtualCPU(vcpu_id=vcpu_id, vm_id=vm_id, workload=workload, mode_register=mode)


class TestVirtualCpu:
    def test_mode_register_is_privileged(self, layout):
        vcpu = make_vcpu(layout)
        with pytest.raises(SchedulingError):
            vcpu.write_mode_register(ReliabilityMode.PERFORMANCE, PrivilegeLevel.USER)
        vcpu.write_mode_register(ReliabilityMode.PERFORMANCE, PrivilegeLevel.HYPERVISOR)
        assert vcpu.mode_register is ReliabilityMode.PERFORMANCE

    def test_requires_dmr_by_mode(self, layout):
        reliable = make_vcpu(layout, mode=ReliabilityMode.RELIABLE)
        performance = make_vcpu(layout, mode=ReliabilityMode.PERFORMANCE)
        user_only = make_vcpu(layout, mode=ReliabilityMode.PERFORMANCE_USER_ONLY)
        assert reliable.requires_dmr()
        assert not performance.requires_dmr(PrivilegeLevel.GUEST_OS)
        assert not user_only.requires_dmr(PrivilegeLevel.USER)
        assert user_only.requires_dmr(PrivilegeLevel.GUEST_OS)
        assert user_only.requires_dmr(PrivilegeLevel.HYPERVISOR)

    def test_requires_dmr_follows_workload_phase(self, layout):
        vcpu = make_vcpu(layout, mode=ReliabilityMode.PERFORMANCE_USER_ONLY)
        assert not vcpu.requires_dmr()
        while not vcpu.workload.in_os_phase:
            vcpu.workload.next_instruction()
        assert vcpu.requires_dmr()

    def test_accounting(self, layout):
        vcpu = make_vcpu(layout)
        vcpu.record_quantum(cycles=1000, instructions=800, user_instructions=700, os_instructions=100)
        vcpu.record_quantum(cycles=500, instructions=300, user_instructions=300, os_instructions=0)
        vcpu.record_mode_switch(2500)
        assert vcpu.active_cycles == 1500
        assert vcpu.committed_user_instructions == 1000
        assert vcpu.mode_switches == 1
        assert vcpu.mode_switch_cycles == 2500
        assert vcpu.user_ipc(10_000) == pytest.approx(0.1)
        assert vcpu.user_ipc(0) == 0.0

    def test_pause_resume(self, layout):
        vcpu = make_vcpu(layout)
        vcpu.pause()
        assert vcpu.paused
        vcpu.resume()
        assert not vcpu.paused


class TestGuestVm:
    def test_add_vcpu_inherits_reliability(self, layout):
        vm = GuestVM(vm_id=0, name="g", reliability=ReliabilityMode.PERFORMANCE, workload_name="apache")
        vcpu = make_vcpu(layout, mode=ReliabilityMode.RELIABLE)
        vm.add_vcpu(vcpu)
        assert vcpu.mode_register is ReliabilityMode.PERFORMANCE
        assert vm.num_vcpus == 1
        assert not vm.is_reliable

    def test_add_vcpu_of_wrong_vm_rejected(self, layout):
        vm = GuestVM(vm_id=0, name="g", reliability=ReliabilityMode.RELIABLE, workload_name="apache")
        with pytest.raises(ConfigurationError):
            vm.add_vcpu(make_vcpu(layout, vm_id=3))

    def test_vm_metrics_aggregate_vcpus(self, layout):
        vm = GuestVM(vm_id=0, name="g", reliability=ReliabilityMode.RELIABLE, workload_name="apache")
        for index in range(2):
            vcpu = make_vcpu(layout, vcpu_id=index)
            vcpu.committed_user_instructions = 1000 * (index + 1)
            vcpu.committed_instructions = 1200 * (index + 1)
            vm.add_vcpu(vcpu)
        assert vm.committed_user_instructions() == 3000
        assert vm.throughput(10_000) == pytest.approx(0.3)
        assert vm.average_user_ipc(10_000) == pytest.approx(0.15)
        assert vm.per_vcpu_user_ipc(10_000) == [pytest.approx(0.1), pytest.approx(0.2)]


class TestScratchpad:
    def test_slots_are_unique_per_vcpu_and_copy(self):
        layout = AddressSpaceLayout(scratchpad_bytes=64 * 1024)
        scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
        slots = [
            scratchpad.slot_for(0, ScratchpadManager.PRIMARY),
            scratchpad.slot_for(0, ScratchpadManager.REDUNDANT),
            scratchpad.slot_for(1, ScratchpadManager.PRIMARY),
        ]
        for i, a in enumerate(slots):
            for b in slots[i + 1:]:
                assert a.end <= b.base or b.end <= a.base
        # Repeated requests return the same slot.
        assert scratchpad.slot_for(0, ScratchpadManager.PRIMARY) == slots[0]
        assert scratchpad.allocated_slots == 3

    def test_line_addresses_cover_the_slot(self):
        layout = AddressSpaceLayout(scratchpad_bytes=64 * 1024)
        scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
        addresses = scratchpad.line_addresses(2)
        assert len(addresses) == scratchpad.slot_lines == 37
        assert all(a % 64 == 0 for a in addresses)

    def test_exhaustion_raises(self):
        layout = AddressSpaceLayout(scratchpad_bytes=8 * 1024)
        scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
        with pytest.raises(ConfigurationError):
            for vcpu_id in range(100):
                scratchpad.slot_for(vcpu_id)

    def test_unknown_copy_kind_rejected(self):
        layout = AddressSpaceLayout()
        scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
        with pytest.raises(ConfigurationError):
            scratchpad.slot_for(0, "tertiary")


class TestCoreAllocator:
    def test_allocation_and_reset(self):
        cores = [PhysicalCore(core_id=i) for i in range(4)]
        allocator = CoreAllocator(cores)
        assert allocator.allocate_pair() == (0, 1)
        assert allocator.allocate_single() == 2
        assert allocator.allocate_single() == 3
        assert allocator.allocate_single() is None
        assert allocator.allocate_pair() is None
        allocator.reset()
        assert allocator.free_count == 4

    def test_pair_needs_two_cores(self):
        allocator = CoreAllocator([PhysicalCore(core_id=0)])
        assert allocator.allocate_pair() is None
        assert allocator.allocate_single() == 0


class TestMappingPlan:
    def test_duplicate_core_rejected(self):
        plan = MappingPlan(
            placements=[
                VcpuPlacement(0, CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=1)),
                VcpuPlacement(1, CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=1)),
            ]
        )
        with pytest.raises(SchedulingError):
            plan.validate(num_cores=4)

    def test_reserved_partner_counts_as_occupied(self):
        plan = MappingPlan(
            placements=[
                VcpuPlacement(
                    0,
                    CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=0),
                    reserved_partner_core=1,
                ),
                VcpuPlacement(1, CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=1)),
            ]
        )
        with pytest.raises(SchedulingError):
            plan.validate(num_cores=4)

    def test_nonexistent_core_rejected(self):
        plan = MappingPlan(
            placements=[VcpuPlacement(0, CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=9))]
        )
        with pytest.raises(SchedulingError):
            plan.validate(num_cores=4)

    def test_summary_properties(self):
        plan = MappingPlan(
            placements=[
                VcpuPlacement(
                    0,
                    CoreAssignment(mode=ExecutionMode.DMR, primary_core=0, secondary_core=1),
                ),
            ],
            paused_vcpu_ids=[5],
        )
        assert plan.active_vcpu_ids == [0]
        assert plan.cores_in_use == 2


class TestGangScheduler:
    def test_round_robin_by_timeslice(self):
        gang = GangScheduler(vm_ids=[0, 1], timeslice_cycles=100)
        assert gang.vm_at(0) == 0
        assert gang.vm_at(99) == 0
        assert gang.vm_at(100) == 1
        assert gang.vm_at(250) == 0
        assert gang.next_boundary(0) == 100
        assert gang.next_boundary(150) == 200
        assert gang.is_boundary(200)
        assert not gang.is_boundary(201)

    def test_schedule_covers_the_whole_run(self):
        gang = GangScheduler(vm_ids=[0, 1, 2], timeslice_cycles=50)
        slices = gang.schedule(total_cycles=170)
        assert slices[0] == (0, 50, 0)
        assert slices[-1] == (150, 170, 0)
        assert sum(end - start for start, end, _ in slices) == 170

    def test_invalid_construction(self):
        with pytest.raises(SchedulingError):
            GangScheduler(vm_ids=[], timeslice_cycles=10)
        with pytest.raises(SchedulingError):
            GangScheduler(vm_ids=[0], timeslice_cycles=0)
