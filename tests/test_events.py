"""Tests for the discrete event queue."""

from __future__ import annotations

import pytest

from repro.common.events import EventQueue
from repro.errors import SimulationError


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.schedule(30, "c")
    queue.schedule(10, "a")
    queue.schedule(20, "b")
    assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    queue.schedule(5, "first")
    queue.schedule(5, "second")
    queue.schedule(5, "third")
    assert [queue.pop().kind for _ in range(3)] == ["first", "second", "third"]


def test_now_tracks_last_popped_event():
    queue = EventQueue()
    queue.schedule(7, "x")
    assert queue.now == 0
    queue.pop()
    assert queue.now == 7


def test_scheduling_in_the_past_raises():
    queue = EventQueue()
    queue.schedule(10, "x")
    queue.pop()
    with pytest.raises(SimulationError):
        queue.schedule(5, "y")


def test_schedule_after_uses_current_time():
    queue = EventQueue()
    queue.schedule(10, "x")
    queue.pop()
    event = queue.schedule_after(5, "later")
    assert event.time == 15


def test_pop_until_yields_only_due_events_and_advances_clock():
    queue = EventQueue()
    for time in (1, 2, 3, 10):
        queue.schedule(time, f"t{time}")
    due = [event.kind for event in queue.pop_until(5)]
    assert due == ["t1", "t2", "t3"]
    assert queue.now == 5
    assert len(queue) == 1


def test_peek_does_not_remove():
    queue = EventQueue()
    queue.schedule(4, "x", payload={"k": 1})
    assert queue.peek().payload == {"k": 1}
    assert len(queue) == 1


def test_pop_empty_raises_and_bool_is_false():
    queue = EventQueue()
    assert not queue
    with pytest.raises(SimulationError):
        queue.pop()


def test_drain_handles_everything():
    queue = EventQueue()
    seen = []
    for time in range(5):
        queue.schedule(time, "e", payload=time)
    handled = queue.drain(lambda event: seen.append(event.payload))
    assert handled == 5
    assert seen == [0, 1, 2, 3, 4]
    assert not queue
