"""Tests for the set-associative cache."""

from __future__ import annotations

import pytest

from repro.config.system import CacheConfig
from repro.errors import MemorySystemError
from repro.mem.cache import SetAssociativeCache
from repro.mem.lines import CacheLine, LineState


@pytest.fixture
def cache():
    # 8 sets x 2 ways x 64-byte lines = 1 KB.
    return SetAssociativeCache(CacheConfig(name="t", size_bytes=1024, associativity=2))


def test_geometry(cache):
    assert cache.capacity_lines == 16
    assert cache.config.num_sets == 8


def test_miss_then_hit(cache):
    assert cache.touch(0x100) is None
    cache.insert(0x100)
    line = cache.touch(0x17F)  # same 64-byte line as 0x140? no: 0x140..0x17F
    assert cache.touch(0x100) is not None
    assert cache.stats.get("hits") >= 1
    assert cache.stats.get("misses") >= 1


def test_line_granularity(cache):
    cache.insert(0x1000)
    assert cache.contains(0x103F)
    assert not cache.contains(0x1040)


def test_lru_eviction_within_a_set(cache):
    # Three addresses mapping to the same set (stride = num_sets * line).
    stride = cache.config.num_sets * 64
    a, b, c = 0x0, stride, 2 * stride
    cache.insert(a)
    cache.insert(b)
    cache.touch(a)           # make `a` most recently used
    victim = cache.insert(c)  # evicts `b`
    assert victim is not None
    assert victim.line_addr == b
    assert cache.contains(a)
    assert cache.contains(c)
    assert not cache.contains(b)


def test_insert_existing_line_updates_in_place(cache):
    cache.insert(0x200, state=LineState.SHARED)
    victim = cache.insert(0x200, state=LineState.MODIFIED, dirty=True)
    assert victim is None
    line = cache.lookup(0x200)
    assert line.state is LineState.MODIFIED
    assert line.dirty


def test_insert_invalid_state_rejected(cache):
    with pytest.raises(MemorySystemError):
        cache.insert(0x300, state=LineState.INVALID)


def test_invalidate(cache):
    cache.insert(0x400)
    removed = cache.invalidate(0x400)
    assert removed is not None
    assert not cache.contains(0x400)
    assert cache.invalidate(0x400) is None


def test_mark_dirty_requires_presence(cache):
    cache.insert(0x500, state=LineState.SHARED)
    cache.mark_dirty(0x500)
    assert cache.lookup(0x500).dirty
    assert cache.lookup(0x500).state is LineState.MODIFIED
    with pytest.raises(MemorySystemError):
        cache.mark_dirty(0x9999000)


def test_occupancy_never_exceeds_capacity(cache):
    for index in range(200):
        cache.insert(index * 64)
    assert cache.occupancy <= cache.capacity_lines
    for _, per_set in cache.set_occupancies():
        assert per_set <= cache.config.associativity


def test_clear(cache):
    for index in range(8):
        cache.insert(index * 64)
    dropped = cache.clear()
    assert dropped == 8
    assert cache.occupancy == 0


def test_resident_lines_and_miss_rate(cache):
    cache.touch(0x0)       # miss
    cache.insert(0x0)
    cache.touch(0x0)       # hit
    assert isinstance(cache.resident_lines()[0], CacheLine)
    assert cache.miss_rate() == 0.5


def test_needs_writeback_logic():
    coherent_dirty = CacheLine(line_addr=0, state=LineState.MODIFIED, dirty=True, coherent=True)
    incoherent_dirty = CacheLine(line_addr=0, state=LineState.MODIFIED, dirty=True, coherent=False)
    clean = CacheLine(line_addr=0, state=LineState.SHARED, dirty=False)
    invalid = CacheLine(line_addr=0, state=LineState.INVALID, dirty=True)
    assert coherent_dirty.needs_writeback
    assert not incoherent_dirty.needs_writeback
    assert not clean.needs_writeback
    assert not invalid.needs_writeback
    assert not invalid.valid
