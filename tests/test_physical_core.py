"""Tests for physical-core bookkeeping."""

from __future__ import annotations

import pytest

from repro.cpu.core import CoreRole, PhysicalCore
from repro.errors import SchedulingError


def test_fresh_core_is_idle():
    core = PhysicalCore(core_id=0)
    assert core.is_idle
    assert not core.in_dmr_pair


def test_independent_assignment_and_release():
    core = PhysicalCore(core_id=1)
    core.assign_independent(vcpu_id=7)
    assert core.role is CoreRole.INDEPENDENT
    assert core.vcpu_id == 7
    assert core.partner_core_id is None
    core.release()
    assert core.is_idle
    assert core.vcpu_id is None


def test_dmr_pair_assignment():
    vocal = PhysicalCore(core_id=0)
    mute = PhysicalCore(core_id=1)
    vocal.assign_vocal(vcpu_id=3, mute_core_id=1)
    mute.assign_mute(vcpu_id=3, vocal_core_id=0)
    assert vocal.in_dmr_pair and mute.in_dmr_pair
    assert vocal.partner_core_id == 1
    assert mute.partner_core_id == 0


def test_double_assignment_rejected():
    core = PhysicalCore(core_id=0)
    core.assign_independent(1)
    with pytest.raises(SchedulingError):
        core.assign_independent(2)
    with pytest.raises(SchedulingError):
        core.assign_vocal(2, mute_core_id=1)


def test_core_cannot_pair_with_itself():
    core = PhysicalCore(core_id=2)
    with pytest.raises(SchedulingError):
        core.assign_vocal(1, mute_core_id=2)
    with pytest.raises(SchedulingError):
        core.assign_mute(1, vocal_core_id=2)


def test_assignment_statistics_accumulate():
    core = PhysicalCore(core_id=0)
    core.assign_independent(1)
    core.release()
    core.assign_vocal(2, mute_core_id=1)
    core.release()
    assert core.stats.get("assignments.independent") == 1
    assert core.stats.get("assignments.vocal") == 1
    assert core.stats.get("releases") == 2
