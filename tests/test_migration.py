"""Tests for the VCPU state-transfer engine."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressSpaceLayout
from repro.config.system import VirtualizationConfig
from repro.errors import TransitionError
from repro.mem.hierarchy import MemoryHierarchy
from repro.virt.migration import VcpuStateTransferEngine
from repro.virt.scratchpad import ScratchpadManager


@pytest.fixture
def engine(small_config):
    layout = AddressSpaceLayout(scratchpad_bytes=128 * 1024)
    hierarchy = MemoryHierarchy(small_config)
    scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
    return VcpuStateTransferEngine(
        hierarchy=hierarchy,
        scratchpad=scratchpad,
        config=VirtualizationConfig(vcpu_state_bytes=2355),
        overlap_factor=2.0,
    )


def test_save_moves_all_state_lines(engine):
    result = engine.save_state(core_id=0, vcpu_id=0)
    assert result.lines == 37
    assert result.cycles > 0
    assert result.total_latency > 0


def test_second_save_is_cheaper_than_the_first(engine):
    first = engine.save_state(core_id=0, vcpu_id=0)
    second = engine.save_state(core_id=0, vcpu_id=0)
    assert second.cycles <= first.cycles


def test_load_after_save_hits_the_cache_hierarchy(engine):
    engine.save_state(core_id=0, vcpu_id=1)
    load_same_core = engine.load_state(core_id=0, vcpu_id=1)
    assert load_same_core.cycles < 37 * engine.hierarchy.config.memory.load_to_use_latency


def test_privileged_state_is_a_couple_of_lines(engine):
    result = engine.save_privileged_state(core_id=0, vcpu_id=2)
    assert 1 <= result.lines <= 2
    assert result.cycles < engine.save_state(core_id=0, vcpu_id=3).cycles


def test_redundant_and_primary_copies_use_distinct_slots(engine):
    engine.save_state(core_id=0, vcpu_id=4, copy=ScratchpadManager.PRIMARY)
    engine.save_state(core_id=1, vcpu_id=4, copy=ScratchpadManager.REDUNDANT)
    primary = engine.scratchpad.slot_for(4, ScratchpadManager.PRIMARY)
    redundant = engine.scratchpad.slot_for(4, ScratchpadManager.REDUNDANT)
    assert primary.base != redundant.base


def test_migrate_combines_save_and_load(engine):
    result = engine.migrate(from_core=0, to_core=1, vcpu_id=5)
    assert result.lines == 74
    assert engine.stats.get("migrations") == 1


def test_overlap_factor_reduces_cycles(small_config):
    layout = AddressSpaceLayout(scratchpad_bytes=128 * 1024)

    def build(overlap):
        hierarchy = MemoryHierarchy(small_config)
        scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
        return VcpuStateTransferEngine(
            hierarchy, scratchpad, VirtualizationConfig(), overlap_factor=overlap
        )

    slow = build(1.0).save_state(0, 0)
    fast = build(4.0).save_state(0, 0)
    assert fast.cycles < slow.cycles


def test_invalid_overlap_rejected(small_config):
    layout = AddressSpaceLayout()
    hierarchy = MemoryHierarchy(small_config)
    scratchpad = ScratchpadManager(layout, vcpu_state_bytes=2355)
    with pytest.raises(TransitionError):
        VcpuStateTransferEngine(hierarchy, scratchpad, VirtualizationConfig(), overlap_factor=0.5)
