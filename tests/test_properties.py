"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.addresses import align_down, align_up, cache_line_address
from repro.common.rng import DeterministicRng
from repro.common.stats import RunningStat, StatSet, confidence_interval_95
from repro.config.system import CacheConfig
from repro.isa.fingerprints import FingerprintUnit, fingerprint_of
from repro.isa.instructions import Instruction, InstructionClass
from repro.mem.cache import SetAssociativeCache
from repro.mem.directory import Directory
from repro.protection.pat import ProtectionAssistanceTable

_SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

addresses = st.integers(min_value=0, max_value=2**32 - 1)
alignments = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 4096, 8192])


class TestAddressProperties:
    @_SETTINGS
    @given(value=addresses, alignment=alignments)
    def test_align_down_up_bracket_the_value(self, value, alignment):
        down = align_down(value, alignment)
        up = align_up(value, alignment)
        assert down <= value <= up
        assert down % alignment == 0
        assert up % alignment == 0
        assert up - down in (0, alignment)

    @_SETTINGS
    @given(value=addresses)
    def test_line_address_is_idempotent(self, value):
        line = cache_line_address(value)
        assert cache_line_address(line) == line
        assert line <= value < line + 64


class TestCacheProperties:
    @_SETTINGS
    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=64 * 1024), min_size=1, max_size=300
        )
    )
    def test_occupancy_and_set_bounds_hold_for_any_access_sequence(self, accesses):
        cache = SetAssociativeCache(CacheConfig(name="p", size_bytes=2048, associativity=2))
        for address in accesses:
            if cache.touch(address) is None:
                cache.insert(address)
        assert cache.occupancy <= cache.capacity_lines
        for _, occupancy in cache.set_occupancies():
            assert occupancy <= cache.config.associativity
        # Everything resident is found by lookup at its line address.
        for line in cache.lines():
            assert cache.lookup(line.line_addr) is line

    @_SETTINGS
    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=16 * 1024), min_size=1, max_size=200
        )
    )
    def test_most_recently_inserted_line_is_always_resident(self, accesses):
        cache = SetAssociativeCache(CacheConfig(name="p", size_bytes=1024, associativity=4))
        for address in accesses:
            cache.insert(address)
            assert cache.contains(address)


class TestDirectoryProperties:
    @_SETTINGS
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "evict"]),
                st.integers(min_value=0, max_value=7),      # core
                st.integers(min_value=0, max_value=1023),   # line index
            ),
            max_size=200,
        )
    )
    def test_owner_is_never_also_a_sharer(self, operations):
        directory = Directory()
        for op, core, line in operations:
            address = line * 64
            if op == "read":
                directory.record_shared_fetch(address, core)
            elif op == "write":
                directory.record_exclusive_fetch(address, core)
            else:
                directory.record_eviction(address, core)
        for line in range(1024):
            entry = directory.peek(line * 64)
            if entry is None or entry.owner is None:
                continue
            assert entry.owner not in entry.sharers


class TestPatProperties:
    @_SETTINGS
    @given(
        marks=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=255)), max_size=200
        )
    )
    def test_pat_reflects_the_last_marking_of_each_page(self, marks):
        pat = ProtectionAssistanceTable(physical_memory_bytes=256 * 8192)
        expected = {}
        for reliable, page in marks:
            if reliable:
                pat.mark_reliable_page(page)
            else:
                pat.mark_open_page(page)
            expected[page] = reliable
        for page, reliable in expected.items():
            assert pat.is_reliable_only(page) == reliable
        assert pat.reliable_page_count == sum(expected.values())


class TestFingerprintProperties:
    @_SETTINGS
    @given(
        results=st.lists(st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=64),
        interval=st.integers(min_value=1, max_value=16),
    )
    def test_identical_streams_always_agree(self, results, interval):
        a = FingerprintUnit(interval=interval)
        b = FingerprintUnit(interval=interval)
        for seq, result in enumerate(results):
            instruction = Instruction(seq=seq, iclass=InstructionClass.ALU, result=result)
            fa = a.observe(instruction)
            fb = b.observe(instruction)
            assert (fa is None) == (fb is None)
            if fa is not None:
                assert fa.value == fb.value
        fa, fb = a.flush(), b.flush()
        assert (fa is None) == (fb is None)
        if fa is not None:
            assert fa.value == fb.value

    @_SETTINGS
    @given(values=st.lists(st.integers(min_value=0, max_value=2**63), max_size=32))
    def test_fingerprint_of_is_pure(self, values):
        assert fingerprint_of(values) == fingerprint_of(list(values))


class TestStatsProperties:
    @_SETTINGS
    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    def test_running_stat_mean_matches_arithmetic_mean(self, values):
        stat = RunningStat()
        for value in values:
            stat.record(value)
        assert abs(stat.mean - sum(values) / len(values)) < 1e-6 * max(1.0, abs(stat.mean))
        assert stat.minimum == min(values)
        assert stat.maximum == max(values)

    @_SETTINGS
    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=50))
    def test_confidence_interval_contains_the_mean(self, values):
        ci = confidence_interval_95(values)
        assert ci.low <= ci.mean <= ci.high

    @_SETTINGS
    @given(
        entries=st.dictionaries(
            st.text(min_size=1, max_size=8), st.integers(min_value=0, max_value=1000), max_size=20
        )
    )
    def test_statset_merge_is_additive(self, entries):
        a = StatSet(entries)
        b = StatSet(entries)
        a.merge(b)
        for name, value in entries.items():
            assert a.get(name) == 2 * value


class TestRngProperties:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), label=st.text(max_size=12))
    def test_forked_streams_are_reproducible(self, seed, label):
        a = DeterministicRng(seed).fork(label)
        b = DeterministicRng(seed).fork(label)
        assert [a.randint(0, 1000) for _ in range(5)] == [b.randint(0, 1000) for _ in range(5)]

    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        base=st.integers(min_value=0, max_value=2**20),
        span=st.integers(min_value=1, max_value=2**20),
    )
    def test_sampled_addresses_respect_bounds(self, seed, base, span):
        rng = DeterministicRng(seed)
        address = rng.sample_address(base, span, alignment=64)
        assert base <= address < base + span or address == base
