"""Tests for the distributed runner: wire format, coordinator, recovery.

Four legs:

* **wire fidelity** -- an :class:`ExperimentJob` survives the JSON wire
  format exactly: equality, cache key and all (settings, config, params);
* **job board** -- submit/lease/complete/collect semantics, cache-key
  dedupe across clients, the code-fingerprint handshake, and lease-expiry
  re-queue under an injected clock (no sleeping);
* **recovery** -- a worker killed mid-lease never loses the batch: the
  chunk re-queues, a surviving worker finishes it, results stay
  byte-identical and the re-queue is visible in coordinator stats;
* **parity** -- `serial == distributed`, byte-identical result documents,
  through the real HTTP server with real simulation cells, including the
  ``repro serve`` run API.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict

import pytest

from repro.errors import ExperimentError
from repro.sim.distributed import (
    Coordinator,
    CoordinatorClient,
    CoordinatorServer,
    DistributedBackend,
    ProtocolError,
    run_worker,
)
from repro.sim.distributed.backend import COORDINATOR_ENV, coordinator_from_env
from repro.sim.experiments import collect_frames, figure5_jobs, switch_overhead_jobs
from repro.sim.frames import frames_document
from repro.sim.jobs import ExperimentJob, code_fingerprint, register_job_kind
from repro.sim.runner import ExperimentRunner, ResultCache, backend_by_name
from repro.sim.settings import ExperimentSettings

QUICK = ExperimentSettings.quick().with_workloads(("apache",)).with_seeds((0,))


# A trivial job kind so the job-board tests don't pay for simulation.
@register_job_kind("disttest")
def _execute_disttest(job: ExperimentJob):
    return {"value": job.seed * 10, "site": job.workload}


def stub_job(seed: int = 0) -> ExperimentJob:
    return ExperimentJob(kind="disttest", workload="w", seed=seed)


def stub_batch(count: int):
    return [stub_job(seed) for seed in range(count)]


class FakeClock:
    """A hand-advanced monotonic clock for lease-expiry tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ===================================================================== #
# Wire format
# ===================================================================== #


class TestWireFormat:
    def _jobs_of_every_shape(self):
        jobs = figure5_jobs(QUICK)  # settings-carrying cells
        jobs += switch_overhead_jobs(  # config + params cells
            ("apache",), transitions_to_measure=2, warmup_cycles=500, seed=1
        )
        jobs.append(stub_job(3))  # bare cell
        return jobs

    def test_wire_round_trip_preserves_identity(self):
        for job in self._jobs_of_every_shape():
            clone = ExperimentJob.from_wire(job.to_wire())
            assert clone == job
            assert clone.cache_key() == job.cache_key()

    def test_json_round_trip_preserves_identity(self):
        # The wire payload must survive actual JSON serialization, not just
        # a dict copy: tuples, enums and nested dataclasses all flatten.
        for job in self._jobs_of_every_shape():
            payload = json.loads(json.dumps(job.to_wire()))
            clone = ExperimentJob.from_wire(payload)
            assert clone == job
            assert clone.cache_key() == job.cache_key()

    def test_from_dict_accepts_to_dict_payloads(self):
        # to_dict keeps params as a mapping; from_dict rebuilds them sorted
        # (the order every built-in enumerator uses).
        for job in self._jobs_of_every_shape():
            clone = ExperimentJob.from_dict(json.loads(json.dumps(job.to_dict())))
            assert clone == job

    def test_from_wire_rejects_tampered_payloads(self):
        payload = quick_figure5_job().to_wire()
        payload["seed"] = 99  # description no longer matches the key
        with pytest.raises(ExperimentError, match="different repro code|corrupted"):
            ExperimentJob.from_wire(payload)

    def test_from_wire_skips_verification_on_request(self):
        payload = quick_figure5_job().to_wire()
        payload["seed"] = 99
        clone = ExperimentJob.from_wire(payload, verify_key=False)
        assert clone.seed == 99


def quick_figure5_job() -> ExperimentJob:
    return figure5_jobs(QUICK)[0]


# ===================================================================== #
# The job board (no HTTP, injected clock)
# ===================================================================== #


class TestCoordinator:
    def test_submit_lease_complete_collect(self):
        coordinator = Coordinator()
        batch = stub_batch(3)
        fingerprint = code_fingerprint()
        reply = coordinator.submit([job.to_wire() for job in batch], fingerprint)
        assert reply["queued"] == 3

        lease = coordinator.lease("w1", fingerprint)
        leased = [ExperimentJob.from_wire(payload) for payload in lease["jobs"]]
        assert leased  # adaptive chunk: at least one cell
        coordinator.complete(
            lease["lease"],
            "w1",
            [
                {"key": job.cache_key(), "metrics": _execute_disttest(job)}
                for job in leased
            ],
        )
        done = coordinator.collect([job.cache_key() for job in leased], timeout=0)
        assert len(done["results"]) == len(leased)
        assert done["failures"] == []
        by_key = {item["key"]: item["metrics"] for item in done["results"]}
        for job in leased:
            assert by_key[job.cache_key()] == _execute_disttest(job)

    def test_submit_dedupes_by_cache_key(self):
        coordinator = Coordinator()
        batch = stub_batch(4)
        payloads = [job.to_wire() for job in batch]
        fingerprint = code_fingerprint()
        assert coordinator.submit(payloads, fingerprint)["queued"] == 4
        second = coordinator.submit(payloads, fingerprint)
        assert second["queued"] == 0
        assert second["deduped"] == 4
        # The queue still holds each cell once.
        assert coordinator.stats()["jobs"]["pending"] == 4

    def test_coordinator_cache_serves_submitted_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = stub_job(7)
        cache.store(job, _execute_disttest(job))
        coordinator = Coordinator(cache=cache)
        reply = coordinator.submit([job.to_wire()], code_fingerprint())
        assert reply["cache_hit"] == 1
        done = coordinator.collect([job.cache_key()], timeout=0)
        assert done["results"][0]["metrics"] == _execute_disttest(job)
        # Nothing pends: the cache was the dedupe point.
        assert coordinator.stats()["jobs"]["pending"] == 0

    def test_completed_cells_land_in_the_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        coordinator = Coordinator(cache=cache)
        job = stub_job(5)
        fingerprint = code_fingerprint()
        coordinator.submit([job.to_wire()], fingerprint)
        lease = coordinator.lease("w1", fingerprint)
        coordinator.complete(
            lease["lease"],
            "w1",
            [{"key": job.cache_key(), "metrics": _execute_disttest(job)}],
        )
        # A plain local runner now hits the same cache entry.
        assert cache.load(job) == _execute_disttest(job)

    def test_fingerprint_mismatch_is_refused(self):
        coordinator = Coordinator()
        with pytest.raises(ProtocolError) as excinfo:
            coordinator.submit([stub_job().to_wire()], "other-code")
        assert excinfo.value.status == 409
        with pytest.raises(ProtocolError):
            coordinator.lease("w1", "other-code")

    def test_expired_lease_requeues_for_the_next_worker(self):
        clock = FakeClock()
        coordinator = Coordinator(lease_seconds=30.0, clock=clock)
        batch = stub_batch(2)
        fingerprint = code_fingerprint()
        coordinator.submit([job.to_wire() for job in batch], fingerprint)

        first = coordinator.lease("victim", fingerprint)
        assert first["jobs"]  # the victim holds a chunk...
        clock.advance(31.0)  # ...and is never heard from again

        second = coordinator.lease("survivor", fingerprint)
        recovered = {payload["key"] for payload in second["jobs"]}
        assert recovered & {payload["key"] for payload in first["jobs"]}
        stats = coordinator.stats()
        assert stats["requeues"] >= 1

    def test_late_completion_from_expired_lease_still_lands(self):
        clock = FakeClock()
        coordinator = Coordinator(lease_seconds=30.0, clock=clock)
        job = stub_job()
        fingerprint = code_fingerprint()
        coordinator.submit([job.to_wire()], fingerprint)
        lease = coordinator.lease("slow", fingerprint)
        clock.advance(31.0)
        # The lease expired (requeue), but nobody else finished the cell:
        # the slow worker's report is still accepted.
        reply = coordinator.complete(
            lease["lease"],
            "slow",
            [{"key": job.cache_key(), "metrics": _execute_disttest(job)}],
        )
        assert reply["accepted"] == 1
        done = coordinator.collect([job.cache_key()], timeout=0)
        assert done["results"]

    def test_duplicate_completion_is_counted_not_applied(self):
        coordinator = Coordinator()
        job = stub_job()
        fingerprint = code_fingerprint()
        coordinator.submit([job.to_wire()], fingerprint)
        lease = coordinator.lease("w1", fingerprint)
        report = [{"key": job.cache_key(), "metrics": _execute_disttest(job)}]
        assert coordinator.complete(lease["lease"], "w1", report)["accepted"] == 1
        again = coordinator.complete(lease["lease"], "w1", report)
        assert again["accepted"] == 0
        assert again["duplicates"] == 1

    def test_reported_failures_surface_through_collect(self):
        coordinator = Coordinator()
        job = stub_job()
        fingerprint = code_fingerprint()
        coordinator.submit([job.to_wire()], fingerprint)
        lease = coordinator.lease("w1", fingerprint)
        coordinator.complete(
            lease["lease"],
            "w1",
            [],
            [{"key": job.cache_key(), "error": "boom"}],
        )
        done = coordinator.collect([job.cache_key()], timeout=0)
        assert done["failures"] == [{"key": job.cache_key(), "error": "boom"}]

    def test_run_status_exposes_queue_and_lease_counters(self):
        clock = FakeClock()
        coordinator = Coordinator(lease_seconds=30.0, clock=clock)
        reply = coordinator.submit_run(asdict(QUICK), experiments=["figure5"])
        run_id, cells = reply["run"], reply["cells"]

        counters = coordinator.run_status(run_id)["counters"]
        assert counters == {
            "queue_depth": cells,
            "lease_attempts": 0,
            "requeues": 0,
        }

        fingerprint = code_fingerprint()
        leased = len(coordinator.lease("victim", fingerprint)["jobs"])
        assert leased > 0
        counters = coordinator.run_status(run_id)["counters"]
        assert counters["lease_attempts"] == leased
        assert counters["queue_depth"] == cells - leased
        assert counters["requeues"] == 0

        clock.advance(31.0)  # the victim is never heard from again
        # The expiry is observed lazily: the status poll itself requeues.
        counters = coordinator.run_status(run_id)["counters"]
        assert counters["queue_depth"] == cells

        coordinator.lease("survivor", fingerprint)
        counters = coordinator.run_status(run_id)["counters"]
        assert counters["requeues"] >= 1
        assert counters["lease_attempts"] > leased


# ===================================================================== #
# HTTP end-to-end: parity, recovery, the run API
# ===================================================================== #


def start_worker_thread(url: str, **kwargs) -> threading.Thread:
    kwargs.setdefault("poll_seconds", 0.05)
    kwargs.setdefault("max_idle_seconds", 2.0)
    thread = threading.Thread(target=run_worker, args=(url,), kwargs=kwargs, daemon=True)
    thread.start()
    return thread


class TestEndToEnd:
    def test_distributed_matches_serial_byte_identically(self):
        jobs = figure5_jobs(QUICK)
        serial = ExperimentRunner(jobs=1, use_cache=False).run_jobs(jobs)

        server = CoordinatorServer(port=0).start()
        try:
            worker = start_worker_thread(server.url)
            runner = ExperimentRunner(
                jobs=2,
                use_cache=False,
                backend=DistributedBackend(server.url, poll_seconds=2.0),
            )
            distributed = runner.run_jobs(jobs)
            worker.join(timeout=30)
        finally:
            server.stop()

        assert runner.stats.executed == len(jobs)
        assert json.dumps(
            {job.cache_key(): serial[job] for job in jobs}, sort_keys=True
        ) == json.dumps(
            {job.cache_key(): distributed[job] for job in jobs}, sort_keys=True
        )

    def test_worker_killed_mid_lease_never_loses_the_batch(self):
        # The victim worker leases a chunk and dies (never reports); the
        # short lease expires, the chunk re-queues, and a surviving worker
        # finishes the batch with byte-identical results.
        jobs = figure5_jobs(QUICK)
        serial = ExperimentRunner(jobs=1, use_cache=False).run_jobs(jobs)

        server = CoordinatorServer(port=0, lease_seconds=0.5).start()
        try:
            client = CoordinatorClient(server.url)
            backend = DistributedBackend(server.url, poll_seconds=1.0)
            runner = ExperimentRunner(jobs=2, use_cache=False, backend=backend)

            results = {}
            collector = threading.Thread(
                target=lambda: results.update(runner.run_jobs(jobs)), daemon=True
            )
            collector.start()

            # Act as the doomed worker: grab a lease, then vanish.
            victim = None
            for _ in range(100):
                victim = client.lease("victim", code_fingerprint())
                if victim["jobs"]:
                    break
                threading.Event().wait(0.05)
            assert victim is not None and victim["jobs"], "victim never got a lease"

            survivor = start_worker_thread(server.url, worker_id="survivor")
            collector.join(timeout=60)
            assert not collector.is_alive(), "batch never completed after the kill"
            survivor.join(timeout=30)

            stats = client.stats()
            assert stats["requeues"] >= 1, stats
        finally:
            server.stop()

        assert json.dumps(
            {job.cache_key(): serial[job] for job in jobs}, sort_keys=True
        ) == json.dumps(
            {job.cache_key(): results[job] for job in jobs}, sort_keys=True
        )

    def test_concurrent_clients_share_overlapping_work(self):
        batch = stub_batch(6)
        server = CoordinatorServer(port=0).start()
        try:
            worker = start_worker_thread(server.url, max_idle_seconds=2.0)
            backend_a = DistributedBackend(server.url, poll_seconds=1.0)
            backend_b = DistributedBackend(server.url, poll_seconds=1.0)
            runner_a = ExperimentRunner(jobs=2, use_cache=False, backend=backend_a)
            runner_b = ExperimentRunner(jobs=2, use_cache=False, backend=backend_b)

            results_b = {}
            thread_b = threading.Thread(
                target=lambda: results_b.update(runner_b.run_jobs(batch)), daemon=True
            )
            results_a = runner_a.run_jobs(batch)
            thread_b.start()
            thread_b.join(timeout=30)
            assert not thread_b.is_alive()
            worker.join(timeout=30)

            stats = CoordinatorClient(server.url).stats()
            # Each cell was executed once, not once per client.
            assert stats["completed"] == len(batch)
            assert stats["deduped"] >= len(batch)
        finally:
            server.stop()
        assert results_a == results_b

    def test_run_api_serves_the_canonical_document(self):
        names = ["figure5", "pab"]
        server = CoordinatorServer(port=0).start()
        try:
            client = CoordinatorClient(server.url)
            reply = client.submit_run(asdict(QUICK), experiments=names)
            run_id = reply["run"]
            assert reply["cells"] > 0

            # The document is refused while cells are outstanding.
            with pytest.raises(ProtocolError) as excinfo:
                client.run_document(run_id)
            assert excinfo.value.status == 409

            worker = start_worker_thread(server.url)
            for _ in range(600):
                if client.run_status(run_id)["state"] == "done":
                    break
                threading.Event().wait(0.1)
            assert client.run_status(run_id)["state"] == "done"
            document = client.run_document(run_id)
            worker.join(timeout=30)
        finally:
            server.stop()

        frames = collect_frames(
            QUICK, names, runner=ExperimentRunner(jobs=1, use_cache=False)
        )
        local = frames_document(frames, settings=asdict(QUICK))
        assert json.dumps(document, sort_keys=True) == json.dumps(local, sort_keys=True)

    def test_unknown_run_and_endpoint_are_404(self):
        server = CoordinatorServer(port=0).start()
        try:
            client = CoordinatorClient(server.url)
            with pytest.raises(ProtocolError) as excinfo:
                client.run_status("nope")
            assert excinfo.value.status == 404
            with pytest.raises(ProtocolError) as excinfo:
                client.call("GET", "/no-such-endpoint")
            assert excinfo.value.status == 404
        finally:
            server.stop()


# ===================================================================== #
# Backend registration and configuration
# ===================================================================== #


class TestBackendPlumbing:
    def test_distributed_backend_is_registered(self, monkeypatch):
        monkeypatch.setenv(COORDINATOR_ENV, "http://127.0.0.1:1")
        backend = backend_by_name("distributed")
        assert backend.name == "distributed"
        assert backend.coordinator == "http://127.0.0.1:1"

    def test_missing_coordinator_url_is_a_helpful_error(self, monkeypatch):
        monkeypatch.delenv(COORDINATOR_ENV, raising=False)
        with pytest.raises(ExperimentError, match="--coordinator|REPRO_COORDINATOR"):
            coordinator_from_env()

    def test_unreachable_coordinator_is_a_protocol_error(self):
        backend = DistributedBackend("http://127.0.0.1:9", poll_seconds=0.1)
        runner = ExperimentRunner(jobs=1, use_cache=False, backend=backend)
        with pytest.raises(ProtocolError, match="cannot reach coordinator"):
            runner.run_jobs([stub_job()])

    def test_worker_reports_cell_failures_not_crashes(self):
        # A cell whose executor raises costs exactly that cell: the worker
        # reports the error and the client surfaces it as ExperimentError.
        bad = ExperimentJob(kind="disttest-broken", workload="w")
        server = CoordinatorServer(port=0).start()
        try:
            worker = start_worker_thread(server.url, max_idle_seconds=2.0)
            backend = DistributedBackend(server.url, poll_seconds=1.0)
            runner = ExperimentRunner(jobs=1, use_cache=False, backend=backend)
            with pytest.raises(ExperimentError, match="workers failed"):
                runner.run_jobs([bad])
            worker.join(timeout=30)
        finally:
            server.stop()
