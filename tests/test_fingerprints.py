"""Tests for Reunion fingerprint generation."""

from __future__ import annotations

from repro.isa.fingerprints import FingerprintUnit, fingerprint_of
from repro.isa.instructions import Instruction, InstructionClass


def make_instruction(seq, result=0, address=None, iclass=InstructionClass.ALU):
    return Instruction(seq=seq, iclass=iclass, result=result, address=address)


def test_fingerprint_of_is_deterministic_and_value_sensitive():
    assert fingerprint_of([1, 2, 3]) == fingerprint_of([1, 2, 3])
    assert fingerprint_of([1, 2, 3]) != fingerprint_of([3, 2, 1])
    assert fingerprint_of([]) == fingerprint_of([])


def test_unit_emits_every_interval():
    unit = FingerprintUnit(interval=4)
    emitted = []
    for seq in range(8):
        fingerprint = unit.observe(make_instruction(seq, result=seq))
        if fingerprint is not None:
            emitted.append(fingerprint)
    assert len(emitted) == 2
    assert emitted[0].count == 4
    assert emitted[0].first_seq == 0
    assert emitted[0].last_seq == 3
    assert emitted[1].first_seq == 4
    assert unit.emitted == 2


def test_identical_streams_produce_identical_fingerprints():
    a = FingerprintUnit(interval=4)
    b = FingerprintUnit(interval=4)
    values_a = []
    values_b = []
    for seq in range(4):
        instruction = make_instruction(seq, result=seq * 3)
        fa = a.observe(instruction)
        fb = b.observe(instruction)
        if fa:
            values_a.append(fa.value)
        if fb:
            values_b.append(fb.value)
    assert values_a == values_b
    assert len(values_a) == 1


def test_diverging_result_changes_fingerprint():
    a = FingerprintUnit(interval=2)
    b = FingerprintUnit(interval=2)
    a.observe(make_instruction(0, result=1))
    b.observe(make_instruction(0, result=1))
    fa = a.observe(make_instruction(1, result=2))
    fb = b.observe(make_instruction(1, result=2 ^ 1))
    assert fa.value != fb.value


def test_store_address_contributes_to_fingerprint():
    a = FingerprintUnit(interval=1)
    b = FingerprintUnit(interval=1)
    fa = a.observe(make_instruction(0, result=5, address=0x100, iclass=InstructionClass.STORE))
    fb = b.observe(make_instruction(0, result=5, address=0x200, iclass=InstructionClass.STORE))
    assert fa.value != fb.value


def test_load_address_does_not_contribute():
    # Only store addresses are architecturally visible outputs.
    a = FingerprintUnit(interval=1)
    b = FingerprintUnit(interval=1)
    fa = a.observe(make_instruction(0, result=5, address=0x100, iclass=InstructionClass.LOAD))
    fb = b.observe(make_instruction(0, result=5, address=0x200, iclass=InstructionClass.LOAD))
    assert fa.value == fb.value


def test_flush_emits_partial_interval_and_clears():
    unit = FingerprintUnit(interval=8)
    unit.observe(make_instruction(0))
    unit.observe(make_instruction(1))
    assert unit.pending_count == 2
    fingerprint = unit.flush()
    assert fingerprint is not None
    assert fingerprint.count == 2
    assert unit.pending_count == 0
    assert unit.flush() is None
