"""Tests for the adaptive (duty-cycled) reliability extension."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveMmmPolicy, AdaptiveReliabilityController
from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.policies import policy_by_name
from repro.cpu.timing import ExecutionMode
from repro.errors import ConfigurationError
from repro.sim.simulator import SimulationOptions, Simulator
from repro.virt.vcpu import ReliabilityMode


class TestController:
    def make_vcpu(self, layout, mode=ReliabilityMode.PERFORMANCE_USER_ONLY):
        from tests.conftest import make_workload
        from repro.virt.vcpu import VirtualCPU

        return VirtualCPU(vcpu_id=0, vm_id=0, workload=make_workload(layout), mode_register=mode)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveReliabilityController(target_protected_fraction=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveReliabilityController(hysteresis=0.9)

    def test_first_decision_is_to_protect(self, layout):
        controller = AdaptiveReliabilityController(target_protected_fraction=0.5)
        assert controller.wants_protection(self.make_vcpu(layout)) is True

    def test_extreme_targets_degenerate_to_static_policies(self, layout):
        always = AdaptiveReliabilityController(target_protected_fraction=1.0)
        never = AdaptiveReliabilityController(target_protected_fraction=0.0)
        vcpu = self.make_vcpu(layout)
        for _ in range(5):
            assert always.wants_protection(vcpu) is True
            assert never.wants_protection(vcpu) is False
            vcpu.committed_instructions += 1000

    def test_duty_cycle_converges_to_the_target(self, layout):
        controller = AdaptiveReliabilityController(
            target_protected_fraction=0.4, hysteresis=0.02
        )
        vcpu = self.make_vcpu(layout)
        # Simulate 200 quanta of 1000 committed instructions each.
        for _ in range(200):
            controller.wants_protection(vcpu)
            vcpu.committed_instructions += 1000
        # Attribute the final quantum before reading the report.
        controller.wants_protection(vcpu)
        achieved = controller.protected_fraction(vcpu.vcpu_id)
        assert 0.3 <= achieved <= 0.5

    def test_counter_reset_is_tolerated(self, layout):
        controller = AdaptiveReliabilityController(target_protected_fraction=0.5)
        vcpu = self.make_vcpu(layout)
        controller.wants_protection(vcpu)
        vcpu.committed_instructions += 5000
        controller.wants_protection(vcpu)
        vcpu.committed_instructions = 0  # measurement reset (end of warmup)
        controller.wants_protection(vcpu)
        vcpu.committed_instructions += 1000
        controller.wants_protection(vcpu)
        assert 0.0 <= controller.protected_fraction(vcpu.vcpu_id) <= 1.0

    def test_report_covers_every_seen_vcpu(self, layout):
        controller = AdaptiveReliabilityController()
        vcpu = self.make_vcpu(layout)
        controller.wants_protection(vcpu)
        assert set(controller.report()) == {0}
        assert controller.protected_fraction(99) == 1.0


class TestAdaptivePolicy:
    def test_registered_by_name(self):
        policy = policy_by_name("mmm-adaptive")
        assert isinstance(policy, AdaptiveMmmPolicy)
        assert policy.mixed_mode

    def test_reliable_and_performance_registers_are_respected(self, small_machine):
        policy = AdaptiveMmmPolicy()
        reliable_vm, performance_vm = small_machine.vms
        small_machine.allocator.reset()
        plan = policy.plan_quantum(
            [reliable_vm.vcpus[0], performance_vm.vcpus[0]],
            small_machine.allocator,
            small_machine.pair_factory,
        ).validate(small_machine.num_cores)
        modes = {p.vcpu_id: p.assignment.mode for p in plan.placements}
        assert modes[reliable_vm.vcpus[0].vcpu_id] is ExecutionMode.DMR
        assert modes[performance_vm.vcpus[0].vcpu_id] is ExecutionMode.PERFORMANCE

    def test_user_only_vcpus_alternate_between_modes(self, small_config):
        # A machine whose performance VM uses PERFORMANCE_USER_ONLY, driven by
        # an adaptive policy targeting 50% protection.
        specs = [
            VmSpec("reliable", "apache", 1, ReliabilityMode.RELIABLE,
                   phase_scale=0.003, footprint_scale=0.1),
            VmSpec("adaptive", "apache", 1, ReliabilityMode.PERFORMANCE_USER_ONLY,
                   phase_scale=0.003, footprint_scale=0.1),
        ]
        controller = AdaptiveReliabilityController(target_protected_fraction=0.5)
        machine = MixedModeMachine(
            config=small_config, vm_specs=specs,
            policy=AdaptiveMmmPolicy(controller), seed=4,
        )
        options = SimulationOptions(
            total_cycles=24_000, warmup_cycles=0, fine_grained_switching=False,
            transition_cost_scale=0.01,
        )
        result = Simulator(machine, options).run()
        adaptive_vcpu = machine.vms[1].vcpus[0]
        achieved = controller.protected_fraction(adaptive_vcpu.vcpu_id)
        # The VCPU ran in both modes and ended near the requested duty cycle.
        assert 0.15 <= achieved <= 0.85
        assert result.vm("adaptive").user_instructions > 0

    def test_adaptive_throughput_sits_between_the_static_extremes(self, small_config):
        def run_with(policy):
            specs = [
                VmSpec("only", "pmake", 2, ReliabilityMode.PERFORMANCE_USER_ONLY,
                       phase_scale=0.003, footprint_scale=0.1),
            ]
            machine = MixedModeMachine(
                config=small_config, vm_specs=specs, policy=policy, seed=6
            )
            options = SimulationOptions(
                total_cycles=20_000, warmup_cycles=4_000,
                fine_grained_switching=False, transition_cost_scale=0.01,
            )
            return Simulator(machine, options).run().overall_throughput()

        always = run_with("dmr-base")
        never = run_with("mmm-tp")
        controller = AdaptiveReliabilityController(target_protected_fraction=0.5)
        adaptive = run_with(AdaptiveMmmPolicy(controller))
        # Removing DMR entirely is fastest; the half-protected configuration
        # delivers useful throughput (per-quantum re-planning costs it some
        # cache affinity, so it is not required to beat the always-DMR static
        # extreme) while actually protecting roughly half of the instructions.
        assert never > always
        assert adaptive > 0.4 * always
        assert adaptive <= never
        fractions = list(controller.report().values())
        assert fractions and all(0.2 <= f <= 0.8 for f in fractions)
