"""Tests for the page table and the hardware-filled TLB."""

from __future__ import annotations

import pytest

from repro.common.addresses import Region
from repro.config.system import TlbConfig
from repro.errors import ProtectionError
from repro.tlb.page_table import PageFlags, PageTable
from repro.tlb.tlb import TranslationLookasideBuffer


@pytest.fixture
def page_table():
    table = PageTable(page_size=8192)
    table.map_region(
        Region("user", 0, 32 * 8192), PageFlags.USER_READ | PageFlags.USER_WRITE, domain=0
    )
    table.map_region(
        Region("kernel", 32 * 8192, 8 * 8192),
        PageFlags.PRIVILEGED_ONLY | PageFlags.RELIABLE_ONLY,
        domain=-1,
    )
    return table


@pytest.fixture
def tlb(page_table):
    return TranslationLookasideBuffer(TlbConfig(entries=8, fill_latency=30), page_table)


class TestPageTable:
    def test_map_region_counts_pages(self, page_table):
        assert len(page_table) == 40

    def test_translate_identity_mapping(self, page_table):
        physical, entry = page_table.translate(3 * 8192 + 17)
        assert physical == 3 * 8192 + 17
        assert entry.user_writable

    def test_translate_unmapped_raises(self, page_table):
        with pytest.raises(ProtectionError):
            page_table.translate(1000 * 8192)

    def test_reliable_pages_iterates_kernel_region(self, page_table):
        reliable = list(page_table.reliable_pages())
        assert len(reliable) == 8
        assert min(reliable) == 32

    def test_update_flags_and_unmap(self, page_table):
        page_table.update_flags(0, PageFlags.USER_READ)
        assert not page_table.lookup_page(0).user_writable
        assert page_table.unmap_page(0) is not None
        assert page_table.lookup_page(0) is None
        with pytest.raises(ProtectionError):
            page_table.update_flags(0, PageFlags.USER_READ)

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ProtectionError):
            PageTable(page_size=3000)


class TestTlb:
    def test_miss_then_hit(self, tlb):
        first = tlb.translate(0x100, is_store=False, privileged=False)
        assert not first.hit
        assert first.latency == 30
        second = tlb.translate(0x100, is_store=False, privileged=False)
        assert second.hit
        assert second.latency == 0
        assert second.physical_address == 0x100

    def test_permission_check_blocks_user_store_to_readonly_page(self, page_table):
        page_table.update_flags(5, PageFlags.USER_READ)
        tlb = TranslationLookasideBuffer(TlbConfig(entries=8), page_table)
        result = tlb.translate(5 * 8192, is_store=True, privileged=False)
        assert not result.permitted
        load = tlb.translate(5 * 8192, is_store=False, privileged=False)
        assert load.permitted

    def test_privileged_only_page_blocks_user_access(self, tlb):
        result = tlb.translate(33 * 8192, is_store=False, privileged=False)
        assert not result.permitted
        privileged = tlb.translate(33 * 8192, is_store=True, privileged=True)
        assert privileged.permitted

    def test_capacity_eviction(self, tlb):
        for page in range(10):
            tlb.translate(page * 8192, is_store=False, privileged=False)
        assert tlb.occupancy == 8
        assert tlb.stats.get("evictions") == 2

    def test_fill_of_unmapped_page_raises(self, tlb):
        with pytest.raises(ProtectionError):
            tlb.translate(500 * 8192, is_store=False, privileged=False)

    def test_demap_notifies_listener(self, page_table):
        demapped = []
        tlb = TranslationLookasideBuffer(
            TlbConfig(entries=8), page_table, demap_listener=demapped.append
        )
        tlb.translate(2 * 8192, is_store=False, privileged=False)
        assert tlb.demap(2) is True
        assert demapped == [2]
        assert tlb.demap(2) is False

    def test_flush_notifies_listener_for_every_entry(self, page_table):
        demapped = []
        tlb = TranslationLookasideBuffer(
            TlbConfig(entries=8), page_table, demap_listener=demapped.append
        )
        for page in range(4):
            tlb.translate(page * 8192, is_store=False, privileged=False)
        assert tlb.flush() == 4
        assert sorted(demapped) == [0, 1, 2, 3]
        assert tlb.occupancy == 0

    def test_corrupt_entry_redirects_translation(self, tlb):
        tlb.translate(1 * 8192, is_store=False, privileged=False)
        tlb.corrupt_entry(1, new_physical_page=40)
        corrupted = tlb.translate(1 * 8192 + 8, is_store=False, privileged=False)
        assert corrupted.physical_address == 40 * 8192 + 8

    def test_corrupt_entry_grants_user_write(self, tlb):
        tlb.translate(33 * 8192, is_store=True, privileged=True)
        tlb.corrupt_entry(33, grant_user_write=True)
        result = tlb.translate(33 * 8192, is_store=True, privileged=False)
        assert result.permitted  # the fault defeated the TLB check

    def test_corrupt_nonresident_entry_raises(self, tlb):
        with pytest.raises(ProtectionError):
            tlb.corrupt_entry(7)
