"""Tests for the VCPU-to-core mapping policies."""

from __future__ import annotations

import pytest

from repro.core.policies import (
    AlwaysDmrPolicy,
    MmmIpcPolicy,
    MmmTpPolicy,
    NoDmrPolicy,
    available_policies,
    policy_by_name,
)
from repro.cpu.timing import ExecutionMode
from repro.errors import SchedulingError
from repro.virt.vcpu import ReliabilityMode


def plan_for(machine, policy, vcpus):
    machine.allocator.reset()
    plan = policy.plan_quantum(vcpus, machine.allocator, machine.pair_factory)
    return plan.validate(machine.num_cores)


def all_vcpus(machine):
    return [machine.vcpus[i] for i in sorted(machine.vcpus)]


class TestRegistry:
    def test_known_policies(self):
        assert {"no-dmr", "dmr-base", "mmm-ipc", "mmm-tp", "mmm-adaptive"} <= set(
            available_policies()
        )
        assert isinstance(policy_by_name("MMM-TP"), MmmTpPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            policy_by_name("triple-modular")

    def test_mixed_mode_flags(self):
        assert not NoDmrPolicy.mixed_mode
        assert not AlwaysDmrPolicy.mixed_mode
        assert MmmIpcPolicy.mixed_mode
        assert MmmTpPolicy.mixed_mode


class TestNoDmrPolicy(object):
    def test_each_vcpu_gets_one_core(self, small_machine):
        vcpus = all_vcpus(small_machine)[: small_machine.num_cores]
        plan = plan_for(small_machine, NoDmrPolicy(), vcpus)
        assert len(plan.placements) == len(vcpus)
        assert all(
            p.assignment.mode is ExecutionMode.BASELINE and p.assignment.secondary_core is None
            for p in plan.placements
        )

    def test_excess_vcpus_are_paused(self, small_machine):
        vcpus = all_vcpus(small_machine) * 3  # more VCPUs than cores
        plan = plan_for(small_machine, NoDmrPolicy(), vcpus)
        assert len(plan.placements) == small_machine.num_cores
        assert len(plan.paused_vcpu_ids) == len(vcpus) - small_machine.num_cores


class TestAlwaysDmrPolicy:
    def test_each_vcpu_gets_a_pair(self, small_machine):
        vcpus = all_vcpus(small_machine)[: small_machine.num_cores // 2]
        plan = plan_for(small_machine, AlwaysDmrPolicy(), vcpus)
        assert len(plan.placements) == len(vcpus)
        for placement in plan.placements:
            assignment = placement.assignment
            assert assignment.mode is ExecutionMode.DMR
            assert assignment.reunion_pair is not None
            assert assignment.secondary_core is not None
            assert assignment.primary_core != assignment.secondary_core

    def test_overcommit_pauses_vcpus(self, small_machine):
        vcpus = all_vcpus(small_machine)
        plan = plan_for(small_machine, AlwaysDmrPolicy(), vcpus)
        assert len(plan.placements) == small_machine.config.max_dmr_pairs
        assert len(plan.paused_vcpu_ids) == len(vcpus) - len(plan.placements)


class TestMmmIpcPolicy:
    def test_reliable_vcpus_run_dmr_performance_vcpus_idle_their_partner(self, small_machine):
        reliable_vm, performance_vm = small_machine.vms
        vcpus = [reliable_vm.vcpus[0], performance_vm.vcpus[0]]
        plan = plan_for(small_machine, MmmIpcPolicy(), vcpus)
        by_vcpu = {p.vcpu_id: p for p in plan.placements}
        reliable_placement = by_vcpu[reliable_vm.vcpus[0].vcpu_id]
        performance_placement = by_vcpu[performance_vm.vcpus[0].vcpu_id]
        assert reliable_placement.assignment.mode is ExecutionMode.DMR
        assert performance_placement.assignment.mode is ExecutionMode.PERFORMANCE
        # The redundant core stays reserved even though it idles.
        assert performance_placement.reserved_partner_core is not None
        assert plan.cores_in_use == 3  # 2 for the pair + 1 running performance

    def test_every_vcpu_consumes_a_full_pair_of_cores(self, small_machine):
        performance_vm = small_machine.vms[1]
        plan = plan_for(small_machine, MmmIpcPolicy(), performance_vm.vcpus[:2])
        occupied = {core for p in plan.placements for core in p.occupied_cores}
        assert len(occupied) == 4  # 2 VCPUs x (1 running + 1 reserved) on a 4-core chip


class TestMmmTpPolicy:
    def test_reliable_get_pairs_performance_get_singles(self, small_machine):
        reliable_vm, performance_vm = small_machine.vms
        vcpus = [reliable_vm.vcpus[0], *performance_vm.vcpus]
        plan = plan_for(small_machine, MmmTpPolicy(), vcpus)
        modes = {p.vcpu_id: p.assignment.mode for p in plan.placements}
        assert modes[reliable_vm.vcpus[0].vcpu_id] is ExecutionMode.DMR
        performance_modes = [
            modes[v.vcpu_id] for v in performance_vm.vcpus if v.vcpu_id in modes
        ]
        assert all(mode is ExecutionMode.PERFORMANCE for mode in performance_modes)

    def test_overcommit_uses_every_core_and_pauses_the_rest(self, small_config):
        from tests.conftest import make_small_machine

        machine = make_small_machine(small_config, performance_vcpus=6)
        vcpus = [machine.vms[0].vcpus[0], *machine.vms[1].vcpus]
        plan = plan_for(machine, MmmTpPolicy(), vcpus)
        assert plan.cores_in_use == machine.num_cores
        assert plan.paused_vcpu_ids  # some VCPUs could not be placed

    def test_reliable_vcpus_placed_before_performance(self, small_machine):
        reliable_vm, performance_vm = small_machine.vms
        # Present performance VCPUs first; the policy must still give the
        # reliable VCPU its pair.
        vcpus = [*performance_vm.vcpus, reliable_vm.vcpus[0]]
        plan = plan_for(small_machine, MmmTpPolicy(), vcpus)
        modes = {p.vcpu_id: p.assignment.mode for p in plan.placements}
        assert modes[reliable_vm.vcpus[0].vcpu_id] is ExecutionMode.DMR
