"""Design-space ablation behind Section 5.1's "Comparison to Prior Work".

The paper attributes the gap between its measured Reunion overhead and the
originally published 5-10% to configuration differences: the original Reunion
evaluation used a 256-entry instruction window and TSO (a store buffer),
both of which relieve the window pressure that dominates under sequential
consistency.  This ablation re-runs the Reunion configuration with those
parameters and shows the per-thread IPC recovering.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_window_ablation


def test_window_and_consistency_ablation(benchmark, bench_settings, experiment_cache):
    settings = bench_settings.with_workloads(bench_settings.workloads[:2])
    result = run_once(
        benchmark,
        lambda: experiment_cache.get("ablation", lambda: run_window_ablation(settings)),
    )
    print()
    print(result.format_table())

    for row in result.rows:
        normalized = row.normalized()
        benchmark.extra_info[f"{row.workload}.window256_tso"] = round(
            normalized["window256-tso"], 3
        )
        # A larger window helps (within noise), and adding the store buffer
        # recovers a substantial part of Reunion's loss.
        assert normalized["window256-sc"] >= 0.95
        assert normalized["window256-tso"] > normalized["window256-sc"]
        assert normalized["window256-tso"] > 1.05
