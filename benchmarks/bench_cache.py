#!/usr/bin/env python
"""Result-cache benchmark: packed segment store vs legacy per-file layout.

Runs a synthetic sweep of ``--cells`` cells (default 1000) through an
:class:`ExperimentRunner` with a trivial executor, so the timings isolate
the cache itself -- store on the cold pass, probe on the warm pass -- from
simulation cost.  Emits a machine-readable ``BENCH_cache.json``:

* **cold**: fresh cache directory, every cell executed and stored;
* **warm**: a fresh runner against the same directory, every cell served
  from disk (the packed layout answers from one manifest load plus a few
  segment reads; the legacy layout opens one JSON file per cell);
* once per layout (``packed`` and ``legacy``), plus the on-disk footprint
  (the packed layout also sheds the legacy layout's per-file indent).

``warm_speedup`` is the headline number: legacy warm time over packed warm
time, expected well above 2x at 1000 cells.

Usage::

    python benchmarks/bench_cache.py [--cells N] [--repeat N] [--output PATH]

Like ``bench_hotpath.py`` this is a plain script, not a pytest module: it
leaves an artefact CI can track across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.jobs import ExperimentJob  # noqa: E402
from repro.sim.runner import ExperimentRunner  # noqa: E402
from repro.sim.store import CACHE_LAYOUTS, make_result_cache  # noqa: E402


def synthetic_jobs(cells: int):
    return [
        ExperimentJob(kind="benchcache", workload=f"w{index:05d}", seed=index)
        for index in range(cells)
    ]


def fake_executor(job: ExperimentJob):
    base = float(job.seed)
    return {
        "user_ipc": base * 0.001,
        "throughput": base * 0.002,
        "dmr_overhead": 0.27,
        "switch_latency_cycles": 1500.0 + base,
        "coverage": 0.999,
        "cycles": 8_000_000.0,
    }


def _sweep_once(layout: str, directory: Path, jobs) -> float:
    cache = make_result_cache(directory, layout=layout)
    runner = ExperimentRunner(jobs=1, cache=cache, executor=fake_executor)
    start = time.perf_counter()
    runner.run_jobs(jobs)
    elapsed = time.perf_counter() - start
    return elapsed, runner.stats


def _disk_footprint(directory: Path):
    files = [path for path in directory.rglob("*") if path.is_file()]
    return len(files), sum(path.stat().st_size for path in files)


def measure(cells: int, repeat: int) -> dict:
    jobs = synthetic_jobs(cells)
    layouts: dict = {}
    for layout in CACHE_LAYOUTS:
        cold, warm = [], []
        file_count = disk_bytes = 0
        for _ in range(repeat):
            with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
                directory = Path(tmp) / "cache"
                elapsed, stats = _sweep_once(layout, directory, jobs)
                assert stats.executed == cells, stats
                cold.append(elapsed)
                elapsed, stats = _sweep_once(layout, directory, jobs)
                assert stats.cached == cells, stats
                warm.append(elapsed)
                file_count, disk_bytes = _disk_footprint(directory)
        layouts[layout] = {
            "cold_s": [round(s, 4) for s in cold],
            "warm_s": [round(s, 4) for s in warm],
            "cold_best_s": round(min(cold), 4),
            "warm_best_s": round(min(warm), 4),
            "files": file_count,
            "disk_bytes": disk_bytes,
        }
    packed, legacy = layouts["packed"], layouts["legacy"]
    return {
        "benchmark": "cache",
        "cells": cells,
        "repeat": repeat,
        "python": sys.version.split()[0],
        "layouts": layouts,
        "warm_speedup": round(legacy["warm_best_s"] / packed["warm_best_s"], 2),
        "cold_speedup": round(legacy["cold_best_s"] / packed["cold_best_s"], 2),
        "disk_ratio": round(legacy["disk_bytes"] / packed["disk_bytes"], 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=1000,
                        help="synthetic cells per sweep (default: 1000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="cold/warm pairs per layout (best is reported)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_cache.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = measure(max(1, args.cells), max(1, args.repeat))
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    for layout in CACHE_LAYOUTS:
        stats = report["layouts"][layout]
        print(
            f"{layout:>6}: cold {stats['cold_best_s']}s "
            f"warm {stats['warm_best_s']}s "
            f"({stats['files']} files, {stats['disk_bytes']} bytes)"
        )
    print(
        f"warm speedup {report['warm_speedup']}x, "
        f"cold speedup {report['cold_speedup']}x, "
        f"disk ratio {report['disk_ratio']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
