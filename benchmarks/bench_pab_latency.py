"""Section 5.2, "Effect of PAB Latency": serial vs parallel PAB lookup.

Paper result: a 2-cycle PAB lookup performed serially before the L2 access
reduces the performance-mode application's IPC by only 3-10%; the reliable
application never uses the PAB and is unaffected.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_pab_latency_study


def test_pab_serial_lookup_sensitivity(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "pab", lambda: run_pab_latency_study(bench_settings)
        ),
    )
    print()
    print(result.format_table())

    for row in result.rows:
        benchmark.extra_info[f"{row.workload}.perf_change_pct"] = round(
            row.performance_ipc_change_percent, 2
        )
        # Serialising the lookup costs a little performance-mode IPC...
        assert row.serial_ipc <= row.parallel_ipc
        assert row.performance_ipc_change_percent > -20.0
        # ...and leaves the reliable VM essentially untouched.
        assert abs(row.reliable_ipc_change_percent) < 6.0
