"""Figure 5(a): per-thread user IPC of No DMR 2X, No DMR, and Reunion.

Paper result: ``No DMR`` (8 VCPUs on 8 cores) observes 8-15% higher per-thread
IPC than ``No DMR 2X`` (16 VCPUs on 16 cores); Reunion loses 22-48% relative
to ``No DMR 2X`` (34-53% relative to ``No DMR``), with the OS-intensive web
servers hurt the most.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_dmr_overhead_experiment


def test_figure5a_per_thread_ipc(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "figure5", lambda: run_dmr_overhead_experiment(bench_settings)
        ),
    )
    print()
    print(result.format_ipc_table())

    for row in result.rows:
        normalized = row.normalized_ipc()
        benchmark.extra_info[f"{row.workload}.no_dmr"] = round(normalized["no-dmr"], 3)
        benchmark.extra_info[f"{row.workload}.reunion"] = round(normalized["reunion"], 3)
        # Reunion must lose per-thread IPC relative to both non-DMR baselines.
        assert normalized["reunion"] < 1.0
        assert normalized["reunion"] < normalized["no-dmr"]
