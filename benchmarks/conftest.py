"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one of the paper's tables or figures and
prints it next to the paper's reported numbers so the shapes can be compared
directly (see EXPERIMENTS.md for the recorded comparison).

The underlying experiments are expensive (tens of simulated runs), so results
are cached at session scope: the benchmark that *first* needs an experiment
times its execution; sibling benchmarks that present another view of the same
data (e.g. Figure 5(b) after Figure 5(a)) reuse the cached result and only
time the analysis step.

Set ``REPRO_BENCH_QUICK=1`` to run the whole harness on a heavily scaled
configuration with two workloads (useful for smoke-testing the harness
itself; the numbers are then not meaningful).

The experiments run through the experiment engine of
:mod:`repro.sim.runner`.  Set ``REPRO_BENCH_JOBS=N`` to fan the simulation
cells out over N workers, ``REPRO_BENCH_BACKEND=<name>`` to pick the runner
backend (``serial``, ``process``, ``thread``), ``REPRO_BENCH_SEEDS=N`` to
widen the seed sweep (default: one seed, so timings stay comparable across
runs), and ``REPRO_BENCH_CACHE=<dir>`` to reuse the on-disk result cache
across harness runs (off by default: a cached cell costs no simulation
time, which would make the recorded timings meaningless).
"""

from __future__ import annotations

import os

import pytest

from repro.sim.experiments import ExperimentSettings
from repro.sim.runner import ExperimentRunner, set_default_runner

#: Workloads in the paper's figure order.
def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "0") not in ("0", "", "false")


def _engine_runner() -> ExperimentRunner:
    """The runner described by the REPRO_BENCH_* environment variables."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    backend = os.environ.get("REPRO_BENCH_BACKEND") or None
    return ExperimentRunner(jobs=max(1, jobs), cache_dir=cache_dir, backend=backend)


@pytest.fixture(scope="session", autouse=True)
def bench_runner():
    """Install the harness-wide experiment runner as the engine default."""
    runner = _engine_runner()
    set_default_runner(runner)
    yield runner
    set_default_runner(None)


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Experiment settings used by every benchmark.

    The seed sweep is pinned to one seed (override with
    ``REPRO_BENCH_SEEDS=N``) rather than inheriting the library's ten-seed
    default: benchmark timings are compared across runs, and silently
    multiplying the simulated cells would invalidate every recorded number.
    """
    seeds = tuple(range(max(1, int(os.environ.get("REPRO_BENCH_SEEDS", "1") or "1"))))
    base = ExperimentSettings.quick() if _quick() else ExperimentSettings()
    return base.with_seeds(seeds)


class _ExperimentCache:
    """Lazily computed, session-cached experiment results."""

    def __init__(self, settings: ExperimentSettings) -> None:
        self.settings = settings
        self._results = {}

    def get(self, key: str, compute):
        if key not in self._results:
            self._results[key] = compute()
        return self._results[key]

    def peek(self, key: str):
        return self._results.get(key)


#: The session's cache, kept in a module global so the terminal-summary hook
#: can render every reproduced table after the benchmark table.
_ACTIVE_CACHE: _ExperimentCache | None = None


@pytest.fixture(scope="session")
def experiment_cache(bench_settings) -> _ExperimentCache:
    """Session-wide cache of experiment results."""
    global _ACTIVE_CACHE
    _ACTIVE_CACHE = _ExperimentCache(bench_settings)
    return _ACTIVE_CACHE


#: (cache key, attribute or callable) pairs rendered by the summary hook.
_REPORT_SECTIONS = (
    ("figure5", "format_ipc_table"),
    ("figure5", "format_throughput_table"),
    ("figure6", "format_ipc_table"),
    ("figure6", "format_throughput_table"),
    ("pab", "format_table"),
    ("table1", "format_table"),
    ("table2", "format_table"),
    ("ablation", "format_table"),
)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced table so the run log doubles as the report."""
    if _ACTIVE_CACHE is None:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for key, formatter in _REPORT_SECTIONS:
        result = _ACTIVE_CACHE.peek(key)
        if result is None:
            continue
        terminalreporter.write_line("")
        terminalreporter.write_line(getattr(result, formatter)())


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
