"""Figure 6(b): throughput of the mixed-mode consolidated server.

Paper result: MMM-TP improves the performance VM's throughput by 2.4-3.6x
over the always-DMR baseline (1.8-1.9x over MMM-IPC), and overall machine
throughput by 1.7-2.3x.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_mixed_mode_experiment


def test_figure6b_throughput(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "figure6", lambda: run_mixed_mode_experiment(bench_settings)
        ),
    )
    print()
    print(result.format_throughput_table())

    for row in result.rows:
        performance = row.normalized_performance_throughput()
        overall = row.normalized_overall_throughput()
        ipc_speedup = row.normalized_performance_ipc()
        benchmark.extra_info[f"{row.workload}.perf_vm"] = round(performance["mmm-tp"], 3)
        benchmark.extra_info[f"{row.workload}.overall"] = round(overall["mmm-tp"], 3)
        # MMM-TP multiplies the performance VM's throughput well beyond what
        # per-thread IPC alone provides (it also doubles the VCPU count).
        assert performance["mmm-tp"] > 1.5
        assert performance["mmm-tp"] > ipc_speedup["mmm-ipc"]
        # Overall system throughput (reliable VM included) also improves.
        assert overall["mmm-tp"] > 1.2
        assert overall["mmm-ipc"] > 1.0
