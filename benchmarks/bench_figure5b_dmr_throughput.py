"""Figure 5(b): overall throughput of No DMR 2X, No DMR, and Reunion.

Paper result: ``No DMR`` achieves roughly half the throughput of ``No DMR
2X`` (it runs half the VCPUs); Reunion reaches only one quarter to one third,
because it both halves the VCPU count and slows each VCPU down.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_dmr_overhead_experiment


def test_figure5b_overall_throughput(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "figure5", lambda: run_dmr_overhead_experiment(bench_settings)
        ),
    )
    print()
    print(result.format_throughput_table())

    for row in result.rows:
        normalized = row.normalized_throughput()
        benchmark.extra_info[f"{row.workload}.no_dmr"] = round(normalized["no-dmr"], 3)
        benchmark.extra_info[f"{row.workload}.reunion"] = round(normalized["reunion"], 3)
        # Half the VCPUs -> roughly half the throughput (well below the 2X system).
        assert normalized["no-dmr"] < 0.85
        # Reunion is the worst of the three configurations.
        assert normalized["reunion"] < normalized["no-dmr"]
