"""Fault-coverage study (Sections 2.1 and 3.4, qualitative).

The paper's protection argument: a traditional DMR machine detects faults
before retirement; an MMM running some cores in performance mode must add the
PAB (for stores whose address/permission path is corrupted) and the
Enter-DMR privileged-register verification, after which reliable state is
protected as well as under full DMR; a naive design that simply switches DMR
off loses that protection and silently corrupts reliable state.

The campaign runs through the experiment engine like every other benchmark:
``REPRO_BENCH_JOBS=N`` fans the (configuration, fault-site, seed, chunk)
cells out over N workers, and ``REPRO_BENCH_CACHE=<dir>`` reuses cached
cells across harness runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.faults.outcomes import FaultOutcome
from repro.sim.experiments import run_fault_coverage_experiment
from repro.sim.reporting import format_coverage_reports


def test_fault_coverage_by_configuration(benchmark):
    result = run_once(
        benchmark,
        lambda: run_fault_coverage_experiment(trials_per_site=50, seeds=(0, 1, 2)),
    )
    print()
    print(format_coverage_reports(result.reports()))

    by_name = {row.configuration: row.report for row in result.rows}
    for name, report in by_name.items():
        benchmark.extra_info[f"{name}.coverage"] = round(report.coverage, 3)

    assert by_name["always-dmr"].coverage == 1.0
    assert by_name["mmm"].coverage == 1.0
    assert by_name["mmm"].count(FaultOutcome.DETECTED_PAB) > 0
    assert by_name["naive-mode-switch"].silent_corruption_rate > 0.0
    assert by_name["naive-mode-switch"].coverage < by_name["mmm"].coverage
