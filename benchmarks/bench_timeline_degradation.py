"""Graceful degradation under a mid-run core-failure timeline (dynamic scenario).

The paper's machine adapts at runtime: as permanent faults retire cores, the
mapping policies re-pair the survivors each quantum and throughput degrades
gracefully instead of collapsing.  This benchmark sweeps the failed-core axis
of the ``degradation`` experiment spec -- every cell is one run whose
``CoreFailed`` timeline events fire *during* measurement -- and checks the
expected shape: throughput falls monotonically (within tolerance) as the
surviving-core count shrinks, and never to zero while cores survive.

The sweep runs through the experiment engine like every other benchmark:
``REPRO_BENCH_JOBS=N`` fans the (workload, failed-cores, seed) cells out over
N workers, ``REPRO_BENCH_BACKEND`` picks the runner backend, and
``REPRO_BENCH_CACHE=<dir>`` reuses cached cells across harness runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_degradation_experiment


def test_timeline_degradation_throughput(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "degradation", lambda: run_degradation_experiment(bench_settings)
        ),
    )
    print()
    print(result.format_table())

    for row in result.rows:
        normalized = row.normalized_throughput()
        for failed in result.failures:
            survivors = result.num_cores - failed
            benchmark.extra_info[f"{row.workload}.{survivors}cores"] = round(
                normalized[failed], 3
            )
        # Every cell's failure events fired mid-run.
        healthy = min(result.failures)
        assert row.throughput[healthy].mean > 0
        # Losing cores must not help: throughput at the heaviest failure
        # level sits clearly below the healthy machine.
        heaviest = max(result.failures)
        if heaviest > healthy:
            assert normalized[heaviest] < 1.0
        # ...and degradation is graceful, not a collapse: the machine keeps
        # at least the surviving-core share of its throughput (minus slack
        # for re-pairing and pausing effects).
        for failed in result.failures:
            survivors = result.num_cores - failed
            floor = 0.5 * survivors / result.num_cores
            assert normalized[failed] >= floor
