#!/usr/bin/env python
"""Fuzz-subsystem benchmark: campaign throughput and warm-cache replay.

Times a quick 25-case fuzz campaign (``repro fuzz --quick --cases 25``)
through the engine's substrates and emits ``BENCH_fuzz.json``:

* **serial** -- the single-process cold baseline (``--no-cache``), with the
  campaign throughput in cases per second;
* **process_xN** -- the in-process pool (``--jobs N``; every generated case
  is one engine cell, so a campaign parallelises like any other sweep);
* **warm_cache** -- a cold run into a fresh cache directory followed by a
  warm rerun: the warm leg must execute **zero** cells (scenarios are a
  pure function of ``(settings, profile, case, seed)``, so every cell's
  cache key is stable), and the report records both wall times plus the
  executed count.

Honours the harness conventions: ``REPRO_BENCH_JOBS`` sizes the pool leg
(default 4).  Like ``bench_fleet.py`` and ``bench_distributed.py`` this is
a plain script that leaves a tracked artefact, not a pytest module.

Usage::

    python benchmarks/bench_fuzz.py [--repeat N] [--cases N] [--output PATH]

``--repeat`` records N cold runs per leg and reports the best.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _fuzz(cases: int, extra: list, env: dict) -> tuple:
    """Run one quick fuzz campaign; returns (wall seconds, executed cells)."""
    command = [
        sys.executable, "-m", "repro", "fuzz", "--quick",
        "--cases", str(cases),
    ] + extra
    start = time.perf_counter()
    completed = subprocess.run(
        command,
        check=True,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    elapsed = time.perf_counter() - start
    match = re.search(r'"executed": (\d+)', completed.stdout)
    executed = int(match.group(1)) if match else -1
    return elapsed, executed


def measure(repeat: int, cases: int) -> dict:
    env = _env()
    jobs = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "4") or "4"))
    legs: dict = {}

    for name, extra in (
        ("serial", ["--no-cache", "--backend", "serial"]),
        (f"process_x{jobs}", ["--no-cache", "--jobs", str(jobs)]),
    ):
        times = [_fuzz(cases, extra, env)[0] for _ in range(repeat)]
        legs[name] = {
            "cold_s": [round(s, 3) for s in times],
            "cold_best_s": round(min(times), 3),
            "cases_per_s": round(cases / min(times), 2),
        }

    with tempfile.TemporaryDirectory(prefix="bench-fuzz-cache-") as cache:
        cold_s, cold_executed = _fuzz(cases, ["--cache-dir", cache], env)
        warm_s, warm_executed = _fuzz(cases, ["--cache-dir", cache], env)
    if warm_executed != 0:
        raise RuntimeError(
            f"warm fuzz rerun executed {warm_executed} cells; expected 0 "
            "(a fuzz cell's cache key is not deterministic)"
        )
    legs["warm_cache"] = {
        "cold_s": round(cold_s, 3),
        "cold_executed": cold_executed,
        "warm_s": round(warm_s, 3),
        "warm_executed": warm_executed,
        "warm_speedup": round(cold_s / warm_s, 2),
    }

    serial = legs["serial"]["cold_best_s"]
    legs[f"process_x{jobs}"]["speedup_vs_serial"] = round(
        serial / legs[f"process_x{jobs}"]["cold_best_s"], 2
    )

    return {
        "benchmark": "fuzz",
        "command": f"fuzz --quick --cases {cases}",
        "cases": cases,
        "repeat": repeat,
        "jobs": jobs,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "legs": legs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=1,
                        help="cold runs per leg (best is reported)")
    parser.add_argument("--cases", type=int, default=25,
                        help="scenarios per (profile, seed) in each leg")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_fuzz.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = measure(max(1, args.repeat), max(1, args.cases))
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    for name, leg in report["legs"].items():
        if name == "warm_cache":
            print(f"{name:>12}: cold {leg['cold_s']:7.2f}s "
                  f"-> warm {leg['warm_s']:5.2f}s "
                  f"({leg['warm_executed']} cells executed warm)")
        else:
            suffix = f" ({leg['cases_per_s']:.1f} cases/s)"
            if "speedup_vs_serial" in leg:
                suffix += f" ({leg['speedup_vs_serial']:.2f}x vs serial)"
            print(f"{name:>12}: cold {leg['cold_best_s']:7.2f}s{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
