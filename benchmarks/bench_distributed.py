#!/usr/bin/env python
"""Distributed-runner scaling benchmark: serial vs process vs worker fleet.

Times the cold quick evaluation (``run-all --quick --no-cache``) through
three execution substrates and emits ``BENCH_distributed.json``:

* **serial** -- the single-process baseline;
* **process** -- the in-process pool (``--jobs 4``);
* **distributed x{1,2,4}** -- a real coordinator subprocess (``repro
  serve``) plus 1, 2 or 4 worker subprocesses (``repro worker``), the
  client submitting through ``--backend distributed``.

Every leg runs the *same* CLI command with a cold cache, so the recorded
wall times are directly comparable; the distributed legs include all
coordination overhead (HTTP, JSON, leases).  The report also records each
leg's speedup over serial -- the distributed x4 leg is the PR's headline
number.

Usage::

    python benchmarks/bench_distributed.py [--repeat N] [--output PATH]

``--repeat`` records N cold runs per leg and reports the best.

Like ``bench_hotpath.py`` this is a plain script that leaves a tracked
artefact, not a pytest module.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Worker-fleet sizes for the distributed legs.
FLEETS = (1, 2, 4)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _run_all(extra: list, env: dict) -> float:
    command = [
        sys.executable, "-m", "repro", "run-all", "--quick", "--no-cache",
    ] + extra
    start = time.perf_counter()
    subprocess.run(
        command,
        check=True,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - start


def _start_coordinator(env: dict):
    """Start ``repro serve`` on a free port; returns (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--no-cache"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline()  # "coordinator listening on http://..."
    url = line.strip().rsplit(" ", 1)[-1]
    if not url.startswith("http"):
        process.terminate()
        raise RuntimeError(f"coordinator did not announce a URL: {line!r}")
    return process, url


def _distributed_once(workers: int, env: dict) -> float:
    coordinator, url = _start_coordinator(env)
    fleet = []
    try:
        for index in range(workers):
            fleet.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "worker",
                        "--coordinator", url, "--id", f"bench-{index}",
                        "--poll", "0.1",
                    ],
                    cwd=REPO_ROOT,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        return _run_all(
            ["--backend", "distributed", "--coordinator", url, "--jobs", str(workers)],
            env,
        )
    finally:
        for process in fleet:
            process.terminate()
        coordinator.terminate()
        for process in fleet:
            process.wait(timeout=10)
        coordinator.wait(timeout=10)


def measure(repeat: int) -> dict:
    env = _env()
    legs: dict = {}

    for name, extra in (
        ("serial", ["--backend", "serial"]),
        ("process_x4", ["--jobs", "4"]),
    ):
        times = [_run_all(extra, env) for _ in range(repeat)]
        legs[name] = {"cold_s": [round(s, 3) for s in times],
                      "cold_best_s": round(min(times), 3)}

    for workers in FLEETS:
        times = [_distributed_once(workers, env) for _ in range(repeat)]
        legs[f"distributed_x{workers}"] = {
            "workers": workers,
            "cold_s": [round(s, 3) for s in times],
            "cold_best_s": round(min(times), 3),
        }

    serial = legs["serial"]["cold_best_s"]
    for leg in legs.values():
        leg["speedup_vs_serial"] = round(serial / leg["cold_best_s"], 2)

    return {
        "benchmark": "distributed",
        "command": "run-all --quick --no-cache",
        "repeat": repeat,
        "python": sys.version.split()[0],
        # Speedup is bounded by the machine: a single-core host shows ~1x
        # for every parallel leg, whatever the backend.
        "cpu_count": os.cpu_count(),
        "legs": legs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=1,
                        help="cold runs per leg (best is reported)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_distributed.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = measure(max(1, args.repeat))
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    print(f"cpu_count: {report['cpu_count']} "
          "(parallel speedup is bounded by available cores)")
    for name in ("serial", "process_x4", *(f"distributed_x{n}" for n in FLEETS)):
        leg = report["legs"][name]
        print(f"{name:>15}: cold {leg['cold_best_s']:7.2f}s "
              f"({leg['speedup_vs_serial']:.2f}x vs serial)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
