"""Table 1: mode-switching overheads (cycles) under MMM-TP.

Paper result: Enter DMR costs ~2.2-2.4k cycles (context switching VCPU state
through the scratchpad plus synchronising the pair); Leave DMR costs
~9.9-10.4k cycles because the mute core's 512 KB L2 (8192 lines) must be
inspected and flushed at one line per cycle.

This benchmark uses the *full-size* paper configuration (not the scaled
evaluation machine) because the flush cost is determined by the real L2 line
count.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_switch_overhead_experiment


def test_table1_switch_overheads(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "table1",
            lambda: run_switch_overhead_experiment(workloads=bench_settings.workloads),
        ),
    )
    print()
    print(result.format_table())

    for row in result.rows:
        benchmark.extra_info[f"{row.workload}.enter"] = round(row.enter_dmr_cycles)
        benchmark.extra_info[f"{row.workload}.leave"] = round(row.leave_dmr_cycles)
        # Enter DMR lands near the paper's ~2.2-2.4k cycles.
        assert 1_500 <= row.enter_dmr_cycles <= 4_000
        # Leave DMR is dominated by the 8192-line flush (~10k cycles total).
        assert 9_000 <= row.leave_dmr_cycles <= 16_000
        assert row.leave_dmr_cycles > 3 * row.enter_dmr_cycles
