"""Section 5.3 bottom line: single-OS mode-switching overhead.

Paper result: combining Table 1 (switch cost, ~13k cycles per round trip) and
Table 2 (cycles between switches), switching modes at every OS entry/exit in
a single-OS system costs about 8% for Apache and less than 5% for the other
benchmarks -- small enough that mixed-mode operation is worthwhile even with
frequent OS activity.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import (
    run_single_os_overhead_study,
    run_switch_frequency_experiment,
    run_switch_overhead_experiment,
)


def test_single_os_switching_overhead(benchmark, bench_settings, experiment_cache):
    def compute():
        table1 = experiment_cache.get(
            "table1",
            lambda: run_switch_overhead_experiment(workloads=bench_settings.workloads),
        )
        table2 = experiment_cache.get(
            "table2",
            lambda: run_switch_frequency_experiment(workloads=bench_settings.workloads),
        )
        return run_single_os_overhead_study(table1, table2, bench_settings.workloads)

    result = run_once(benchmark, compute)
    print()
    print(result.format_table())

    rows = {row.workload: row for row in result.rows}
    for row in result.rows:
        benchmark.extra_info[f"{row.workload}.overhead_pct"] = round(row.overhead_percent, 2)
        # The overhead of frequent mode switching stays small.
        assert row.overhead_percent < 15.0
    if "apache" in rows and "pgbench" in rows:
        # Apache (shortest round trips) pays the most; pgbench the least.
        assert rows["apache"].overhead_percent > rows["pgbench"].overhead_percent
