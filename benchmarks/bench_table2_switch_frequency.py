"""Table 2: cycles spent in user and OS code between mode switches.

Paper result (single-OS, non-DMR baseline): all benchmarks except Apache and
Zeus spend at least ~200k cycles in user mode before entering the OS; pgbench
has by far the longest user phases (554k cycles), while Zeus and Apache spend
the most time inside the OS (220k and 98k cycles per visit).

The reproduction's absolute cycle counts are inflated by the simulator's
lower absolute IPC, but the ordering of workloads -- which the Section 5.3
overhead argument rests on -- is preserved.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_switch_frequency_experiment


def test_table2_cycles_between_switches(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "table2",
            lambda: run_switch_frequency_experiment(workloads=bench_settings.workloads),
        ),
    )
    print()
    print(result.format_table())

    rows = {row.workload: row for row in result.rows}
    for row in result.rows:
        benchmark.extra_info[f"{row.workload}.user_kcycles"] = round(row.user_cycles / 1000)
        benchmark.extra_info[f"{row.workload}.os_kcycles"] = round(row.os_cycles / 1000)

    if "pgbench" in rows and "apache" in rows:
        # pgbench has the longest user phases; apache/zeus the shortest.
        assert rows["pgbench"].user_cycles > 2 * rows["apache"].user_cycles
    if "zeus" in rows and "apache" in rows:
        # Zeus spends the most time in the OS per visit.
        assert rows["zeus"].os_cycles > rows["apache"].os_cycles
    if "oltp" in rows and "apache" in rows:
        # The database workloads enter the OS far less often than the web servers.
        assert rows["oltp"].user_cycles > rows["apache"].user_cycles
