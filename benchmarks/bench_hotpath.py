#!/usr/bin/env python
"""End-to-end hot-path benchmark: ``run-all --quick`` wall-clock per tier.

Runs the whole quick evaluation through the CLI in a subprocess -- the same
command the tentpole speedup was measured with -- and emits a
machine-readable ``BENCH_hotpath.json``:

* **cold**: fresh cache directory, every cell simulated;
* **warm**: second run against the same cache, zero cells simulated (this
  times the engine/cache overhead floor);
* once per fidelity tier (``accurate`` and ``fast``), serial backend, so
  the numbers isolate the execute-phase hot path from worker parallelism.

Usage::

    python benchmarks/bench_hotpath.py [--repeat N] [--output PATH] [--full]

``--repeat`` records N cold/warm pairs per tier (fresh cache each repeat)
and reports the best, which is what a tracked trajectory should plot.
``--full`` drops ``--quick`` for a paper-sized grid (slow; not for CI).

Unlike the ``bench_*`` pytest modules this is a plain script: it exists to
leave an artefact (``BENCH_hotpath.json``) that CI and the BENCH trajectory
can track across commits, not to print paper tables.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

TIERS = ("accurate", "fast")


def _run_all_once(tier: str, cache_dir: Path, quick: bool) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    command = [
        sys.executable, "-m", "repro", "run-all",
        "--backend", "serial",
        "--cache-dir", str(cache_dir),
        "--fidelity", tier,
    ]
    if quick:
        command.insert(4, "--quick")
    start = time.perf_counter()
    subprocess.run(
        command,
        check=True,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - start


def measure(repeat: int, quick: bool) -> dict:
    tiers: dict = {}
    for tier in TIERS:
        cold, warm = [], []
        for _ in range(repeat):
            with tempfile.TemporaryDirectory(prefix="bench-hotpath-") as cache:
                cold.append(_run_all_once(tier, Path(cache), quick))
                warm.append(_run_all_once(tier, Path(cache), quick))
        tiers[tier] = {
            "cold_s": [round(s, 3) for s in cold],
            "warm_s": [round(s, 3) for s in warm],
            "cold_best_s": round(min(cold), 3),
            "warm_best_s": round(min(warm), 3),
        }
    return {
        "benchmark": "hotpath",
        "command": "run-all %s--backend serial" % ("--quick " if quick else ""),
        "backend": "serial",
        "repeat": repeat,
        "python": sys.version.split()[0],
        "tiers": tiers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=1,
                        help="cold/warm pairs per tier (best is reported)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_hotpath.json",
                        help="where to write the JSON report")
    parser.add_argument("--full", action="store_true",
                        help="paper-sized grid instead of --quick (slow)")
    args = parser.parse_args(argv)

    report = measure(max(1, args.repeat), quick=not args.full)
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    accurate = report["tiers"]["accurate"]
    fast = report["tiers"]["fast"]
    print(f"wrote {args.output}")
    print(f"accurate: cold {accurate['cold_best_s']}s warm {accurate['warm_best_s']}s")
    print(f"fast:     cold {fast['cold_best_s']}s warm {fast['warm_best_s']}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
