"""Figure 6(a): per-thread user IPC of the mixed-mode consolidated server.

Paper result: the performance guest VM gains 25-85% per-thread IPC under
MMM-IPC and 24-67% under MMM-TP (smaller because more VCPUs share the memory
system), while the reliable VM's performance is virtually unchanged (pgoltp
loses ~6.5% to shared-L3 displacement).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.sim.experiments import run_mixed_mode_experiment


def test_figure6a_per_thread_ipc(benchmark, bench_settings, experiment_cache):
    result = run_once(
        benchmark,
        lambda: experiment_cache.get(
            "figure6", lambda: run_mixed_mode_experiment(bench_settings)
        ),
    )
    print()
    print(result.format_ipc_table())

    for row in result.rows:
        performance = row.normalized_performance_ipc()
        reliable = row.normalized_reliable_ipc()
        benchmark.extra_info[f"{row.workload}.perf.mmm_ipc"] = round(performance["mmm-ipc"], 3)
        benchmark.extra_info[f"{row.workload}.perf.mmm_tp"] = round(performance["mmm-tp"], 3)
        benchmark.extra_info[f"{row.workload}.reliable.mmm_tp"] = round(reliable["mmm-tp"], 3)
        # The performance VM speeds up once it leaves DMR mode.
        assert performance["mmm-ipc"] > 1.0
        assert performance["mmm-tp"] > 1.0
        # Per-thread IPC of MMM-TP stays at or below MMM-IPC (more VCPUs
        # sharing the memory system); allow a small noise margin.
        assert performance["mmm-tp"] < performance["mmm-ipc"] * 1.10
        # The reliable VM is not devastated by mixed-mode operation.
        assert reliable["mmm-ipc"] > 0.8
        assert reliable["mmm-tp"] > 0.8
