"""Exception hierarchy for the mixed-mode multicore reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised close to
the subsystem that detected the problem (configuration, scheduling, memory
protection, simulation driver, workload synthesis).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A system or experiment configuration is inconsistent or unsupported.

    Raised, for example, when a cache size is not a multiple of its line
    size, when the number of cores is odd but DMR pairing is requested, or
    when an experiment asks for more VCPUs than the scheduler can expose.
    """


class WorkloadError(ReproError):
    """A workload profile or synthetic instruction stream is invalid."""


class SchedulingError(ReproError):
    """The hardware scheduler was asked to perform an impossible mapping.

    Examples: assigning two VCPUs to the same physical core in one quantum,
    or pairing a core with itself for DMR execution.
    """


class ProtectionError(ReproError):
    """A memory-protection structure (PAT/PAB/TLB) was misused.

    Note that *detected protection violations* during simulation are not
    errors -- they are reported as events (see
    :mod:`repro.protection.violations`).  This exception covers API misuse,
    such as marking a page outside of physical memory.
    """


class MemorySystemError(ReproError):
    """The cache hierarchy, directory, or interconnect was misused."""


class TransitionError(ReproError):
    """A mode transition (Enter DMR / Leave DMR) could not be performed."""


class FaultInjectionError(ReproError):
    """A fault specification or injection campaign is invalid."""


class SimulationError(ReproError):
    """The simulation driver reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment definition (figure/table reproduction) is invalid."""
