"""Quantum-based analytic core timing model.

:class:`CoreTimingModel` executes a slice of one VCPU's synthetic instruction
stream on a physical core (or on a DMR pair) and returns how many cycles the
slice consumed, how many instructions were committed, and a detailed stall
breakdown.  The simulator drives one such call per VCPU per scheduling
quantum.

The model charges, per dynamic instruction:

* an issue cost of ``1 / issue_width`` cycles;
* branch misprediction and instruction-cache-miss penalties drawn from the
  workload profile;
* for memory operations: TLB translate latency, the *exposed* portion of the
  data access latency (exposure depends on the level that served the access,
  the instruction window size, and whether Reunion's Check stage is active),
  and -- for stores under sequential consistency -- the portion of the
  write-through latency that keeps the store in the window;
* for serialising instructions: a window drain plus, under DMR, the
  fingerprint validation round trip;
* under DMR: the amortised fingerprint-exchange cost per instruction, the
  slower of the vocal/mute data accesses (the mute fetches through its own,
  incoherent hierarchy and frequently pays a 3-hop cache-to-cache transfer),
  and any recovery penalty from fingerprint mismatches;
* in performance mode within an MMM: the PAB store-permission check
  (parallel lookups are free on a hit; serial lookups and PAT fills expose
  latency on the store path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Protocol, Sequence

from repro.common.stats import StatSet
from repro.config.system import SystemConfig
from repro.cpu.lsq import LoadStoreQueueModel
from repro.cpu.parameters import TimingModelParameters
from repro.cpu.serializing import SerializingInstructionModel
from repro.cpu.window import InstructionWindowModel
from repro.dmr.reunion import ReunionPair
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.violations import (
    ProtectionViolation,
    ViolationKind,
    ViolationLog,
)
from repro.tlb.tlb import _PRIVILEGED_ONLY, _USER_WRITE, TranslationLookasideBuffer
from repro.workloads.generator import SyntheticWorkload


class ExecutionMode(Enum):
    """How a VCPU is currently being executed."""

    #: Non-DMR execution in a machine that never mixes modes (the paper's
    #: ``No DMR`` baselines); the PAB is not consulted.
    BASELINE = auto()
    #: Non-DMR execution inside a mixed-mode machine; every store is
    #: re-validated by the PAB.
    PERFORMANCE = auto()
    #: Redundant execution on a Reunion vocal/mute pair.
    DMR = auto()


class StopReason(Enum):
    """Why :meth:`CoreTimingModel.run_quantum` returned."""

    BUDGET_EXHAUSTED = auto()
    OS_ENTRY = auto()
    OS_EXIT = auto()
    INSTRUCTION_LIMIT = auto()


class FaultHook(Protocol):
    """Interface the fault injector exposes to the timing model."""

    def perturb_store_address(
        self, core_id: int, mode: ExecutionMode, physical_address: int
    ) -> int:
        """Possibly redirect a store's physical address (TLB/datapath fault)."""

    def corrupt_execution(self, core_id: int, mode: ExecutionMode) -> bool:
        """Return True when this instruction's result is corrupted on ``core_id``."""


@dataclass(frozen=True)
class CoreAssignment:
    """Where and how a VCPU executes during one quantum."""

    mode: ExecutionMode
    primary_core: int
    secondary_core: Optional[int] = None
    reunion_pair: Optional[ReunionPair] = None

    def __post_init__(self) -> None:
        if self.mode is ExecutionMode.DMR:
            if self.secondary_core is None:
                raise SimulationError("DMR execution needs a secondary (mute) core")
            if self.secondary_core == self.primary_core:
                raise SimulationError("DMR execution needs two distinct cores")
        elif self.secondary_core is not None:
            raise SimulationError("non-DMR execution must not name a secondary core")

    @property
    def cores(self) -> Sequence[int]:
        """All physical cores consumed by this assignment."""
        if self.secondary_core is None:
            return (self.primary_core,)
        return (self.primary_core, self.secondary_core)


@dataclass
class QuantumResult:
    """Outcome of running one VCPU for one quantum."""

    cycles: int
    instructions: int
    user_instructions: int
    os_instructions: int
    stop_reason: StopReason
    stats: StatSet = field(default_factory=StatSet)
    violations: List[ProtectionViolation] = field(default_factory=list)

    @property
    def user_ipc(self) -> float:
        """Committed user instructions per cycle for this quantum."""
        if self.cycles == 0:
            return 0.0
        return self.user_instructions / self.cycles

    @property
    def total_ipc(self) -> float:
        """All committed instructions per cycle for this quantum."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class CoreTimingModel:
    """Analytic timing model shared by every core of the machine."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy,
        tlbs: Sequence[TranslationLookasideBuffer],
        pabs: Optional[Sequence[ProtectionAssistanceBuffer]] = None,
        parameters: Optional[TimingModelParameters] = None,
        violation_log: Optional[ViolationLog] = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> None:
        config.validate()
        if len(tlbs) != config.num_cores:
            raise SimulationError(
                f"expected {config.num_cores} TLBs, got {len(tlbs)}"
            )
        if pabs is not None and len(pabs) != config.num_cores:
            raise SimulationError(
                f"expected {config.num_cores} PABs, got {len(pabs)}"
            )
        self.config = config
        self.hierarchy = hierarchy
        self.tlbs = list(tlbs)
        self.pabs = list(pabs) if pabs is not None else None
        self.parameters = (parameters or TimingModelParameters()).validate()
        # Note: an empty ViolationLog is falsy, so "or" must not be used here.
        self.violation_log = violation_log if violation_log is not None else ViolationLog()
        self.fault_hook = fault_hook
        self.window_model = InstructionWindowModel(config.core, self.parameters)
        self.lsq_model = LoadStoreQueueModel(config.core, self.parameters)
        self.si_model = SerializingInstructionModel(
            config.core, config.reunion, config.interconnect, self.window_model
        )

    # ------------------------------------------------------------------ #
    # Per-instruction cost components
    # ------------------------------------------------------------------ #

    def _branch_cost(self, instruction: Instruction) -> float:
        # Deterministic pseudo-random misprediction decision derived from the
        # instruction's synthetic result, so runs are reproducible.
        threshold = int(self.config.core.branch_mispredict_rate * 256)
        if (instruction.result & 0xFF) < threshold:
            return float(self.config.core.branch_penalty_cycles)
        return 0.0

    def _icache_cost(self, workload: SyntheticWorkload, privilege: PrivilegeLevel) -> float:
        mpki = workload.profile.icache_mpki_for(privilege)
        miss_latency = self.config.l2.hit_latency * self.parameters.icache_exposure
        return (mpki / 1000.0) * miss_latency

    def _record_violation(
        self,
        kind: ViolationKind,
        cycle: int,
        core_id: int,
        vcpu_id: Optional[int],
        address: Optional[int],
        description: str,
        sink: List[ProtectionViolation],
    ) -> None:
        violation = ProtectionViolation(
            kind=kind,
            cycle=cycle,
            core_id=core_id,
            vcpu_id=vcpu_id,
            physical_address=address,
            description=description,
        )
        sink.append(violation)
        self.violation_log.record(violation)

    # ------------------------------------------------------------------ #
    # Quantum execution
    # ------------------------------------------------------------------ #

    def run_quantum(
        self,
        workload: SyntheticWorkload,
        assignment: CoreAssignment,
        cycle_budget: int,
        start_cycle: int = 0,
        vcpu_id: Optional[int] = None,
        stop_on_os_entry: bool = False,
        stop_on_os_exit: bool = False,
        max_instructions: Optional[int] = None,
        active_cores: Optional[int] = None,
    ) -> QuantumResult:
        """Run one VCPU until the cycle budget (or a stop condition) is reached.

        ``active_cores`` is the number of physical cores concurrently doing
        work this quantum (including this VCPU's own cores); it drives the
        shared-resource contention term applied to off-core access latencies.

        This is the batched hot-path implementation: it consumes raw
        instruction tuples from the workload, hoists every per-quantum
        constant (icache cost per privilege level, serialising-instruction
        cost, per-level load exposures, the branch threshold) out of the
        loop, and accumulates statistics in locals that are flushed into the
        result's :class:`StatSet` once at the end.  The float operations on
        the cycle accumulator are performed in exactly the same order as
        :meth:`run_quantum_reference`, so the two implementations return
        bit-identical results (guarded by the exact-parity test suite).
        """
        if cycle_budget <= 0:
            raise SimulationError(f"cycle budget must be positive, got {cycle_budget}")
        dmr = assignment.mode is ExecutionMode.DMR
        performance_mode = assignment.mode is ExecutionMode.PERFORMANCE
        mode = assignment.mode
        core_id = assignment.primary_core
        mute_id = assignment.secondary_core
        pair = assignment.reunion_pair
        tlb = self.tlbs[core_id]
        pab = (
            self.pabs[core_id]
            if performance_mode and self.pabs is not None
            else None
        )
        fault_hook = self.fault_hook

        core_config = self.config.core
        issue_cost = 1.0 / core_config.issue_width
        dmr_check_cost = 0.0
        if dmr:
            dmr_check_cost = (
                self.config.interconnect.fingerprint_latency
                / self.config.reunion.fingerprint_interval
            ) * self.parameters.dmr_check_utilisation
        store_exposure = self.lsq_model.store_exposure(dmr)
        load_pressure = self.lsq_model.load_queue_pressure()
        if active_cores is None:
            active_cores = len(assignment.cores)
        contention = 1.0
        if self.config.num_cores > 1:
            contention += self.parameters.shared_resource_contention * (
                max(0, min(active_cores, self.config.num_cores) - 1)
                / (self.config.num_cores - 1)
            )

        # Per-quantum constants the reference loop recomputes per instruction.
        # Each is a pure function of the configuration (and the DMR flag), so
        # hoisting preserves the exact float values the loop accumulates.
        icache_miss_latency = self.config.l2.hit_latency * self.parameters.icache_exposure
        profile = workload.profile
        icache_user = (profile.user_icache_mpki / 1000.0) * icache_miss_latency
        icache_os = (profile.os_icache_mpki / 1000.0) * icache_miss_latency
        branch_threshold = int(core_config.branch_mispredict_rate * 256)
        branch_penalty = float(core_config.branch_penalty_cycles)
        si_total = self.si_model.cost(dmr).total
        window_model = self.window_model
        load_exposures = {
            level: window_model.exposure_for_level(level, dmr)
            for level in ("l1", "l2", "l3", "c2c", "memory")
        }

        # Hot bindings.  The hierarchy's internal access paths are bound
        # directly (the core-id validation that access_raw would repeat per
        # access is done once here; physical addresses produced by the TLB
        # are never negative).
        hierarchy = self.hierarchy
        hierarchy._check_core(core_id)
        if mute_id is not None:
            hierarchy._check_core(mute_id)
        next_raw = workload.next_raw
        translate_raw = tlb.translate_raw
        coherent_load = hierarchy._coherent_load
        coherent_store = hierarchy._coherent_store
        mute_access = hierarchy._mute_access
        # Workload internals for the inlined common-path instruction
        # synthesis (the phase-boundary path still delegates to next_raw).
        # Mutable generator state is mirrored in locals and written back in
        # the finally block below.
        wl = workload
        wl_r01 = wl._random01
        wl_grb = wl._getrandbits
        wl_next_address = wl._next_address
        wl_user_thresholds = wl._user_thresholds
        wl_os_thresholds = wl._os_thresholds
        os_privilege = wl._os_privilege
        wl_seq = wl._seq
        wl_remaining = wl._remaining_in_phase
        wl_in_os = wl._in_os_phase
        wl_user_emitted = 0
        wl_os_emitted = 0
        # TLB internals for the inlined translation hit path (misses and
        # non-power-of-two page sizes delegate to translate_raw).
        tlb_entries = tlb._entries
        tlb_counts = tlb._counts
        tlb_page_shift = tlb._page_shift
        tlb_page_mask = tlb._page_mask
        # L1 internals for the inlined load hit path.
        l1 = hierarchy.l1d[core_id]
        l1_lines = l1._lines
        l1_counts = l1._counts
        h_counts = hierarchy._counts
        l1_hit_latency = hierarchy._l1d_hit_latency
        line_neg_mask = hierarchy._line_neg_mask
        pab_check = pab.check_store if pab is not None else None
        dmr_pair = pair if dmr and pair is not None else None
        dmr_mute = dmr and mute_id is not None
        pair_sync = dmr_pair.synchronize if dmr_pair is not None else None
        # Inline bindings for the per-instruction fingerprint-token path
        # (observe_commit_token's body, unrolled below).  flush() clears the
        # pending lists in place, so the list bindings stay valid across
        # interval emissions and synchronize() calls.
        if dmr_pair is not None:
            vocal_unit = dmr_pair.vocal_unit
            mute_unit = dmr_pair.mute_unit
            vocal_pending = vocal_unit._pending
            mute_pending = mute_unit._pending
            fp_interval = vocal_unit.interval
            pair_compare = dmr_pair._compare
        check_stops = stop_on_os_entry or stop_on_os_exit
        limited = max_instructions is not None

        USER_LEVEL = PrivilegeLevel.USER
        ALU_CLASS = InstructionClass.ALU
        LOAD_CLASS = InstructionClass.LOAD
        STORE_CLASS = InstructionClass.STORE
        BRANCH_CLASS = InstructionClass.BRANCH
        NOP_CLASS = InstructionClass.NOP
        ENTRY_CLASS = InstructionClass.SYSCALL_ENTRY
        EXIT_CLASS = InstructionClass.SYSCALL_EXIT
        SERIALIZING_CLASS = InstructionClass.SERIALIZING
        PRIVILEGED_CLASS = InstructionClass.PRIVILEGED
        OFFCORE_LEVELS = ("l3", "c2c", "memory")
        MASK64 = 0xFFFF_FFFF_FFFF_FFFF

        cycles = 0.0
        instructions = 0
        user_instructions = 0
        os_instructions = 0
        violations: List[ProtectionViolation] = []
        stop_reason = StopReason.BUDGET_EXHAUSTED

        # Local stat accumulators (flushed into a StatSet once at the end).
        issue_cycles_total = 0
        dmr_check_total = 0
        n_branch_penalties = 0
        branch_penalty_total = 0
        n_si = 0
        si_stall_total = 0
        n_tlb_misses = 0
        tlb_miss_total = 0
        n_tlb_denials = 0
        n_pab_stalls = 0
        pab_stall_total = 0
        n_pab_checks = 0
        n_pab_violations = 0
        n_c2c = 0
        n_mute_c2c = 0
        n_store_accesses = 0
        store_stall_total = 0
        n_load_accesses = 0
        load_stall_total = 0
        n_recoveries = 0
        recovery_cycles_total = 0
        n_corruptions = 0
        acc_counts = {"l1": 0, "l2": 0, "l3": 0, "c2c": 0, "memory": 0}

        try:
          while cycles < cycle_budget:
            if limited and instructions >= max_instructions:
                stop_reason = StopReason.INSTRUCTION_LIMIT
                break
            if wl_remaining <= 0:
                # Rare phase boundary: delegate to the generator (it samples
                # the next phase length and emits the SYSCALL instruction)
                # after syncing the mirrored state both ways.
                wl._seq = wl_seq
                wl._remaining_in_phase = wl_remaining
                wl._in_os_phase = wl_in_os
                seq, iclass, privilege, address, result, is_shared = next_raw()
                wl_seq = wl._seq
                wl_remaining = wl._remaining_in_phase
                wl_in_os = wl._in_os_phase
            else:
                # Inline of next_raw's common path: identical draw order and
                # bit stream (guarded by the exact-parity suite).
                wl_remaining -= 1
                if wl_in_os:
                    privilege = os_privilege
                    t_si, t_load, t_store, t_branch = wl_os_thresholds
                else:
                    privilege = USER_LEVEL
                    t_si, t_load, t_store, t_branch = wl_user_thresholds
                roll = wl_r01()
                address = None
                is_shared = False
                if roll >= t_si:
                    if roll < t_load:
                        iclass = LOAD_CLASS
                        address, is_shared = wl_next_address(privilege, False)
                    elif roll < t_store:
                        iclass = STORE_CLASS
                        address, is_shared = wl_next_address(privilege, True)
                    elif roll < t_branch:
                        iclass = BRANCH_CLASS
                    else:
                        iclass = ALU_CLASS
                elif wl_in_os:
                    iclass = (
                        PRIVILEGED_CLASS if wl_r01() < 0.5 else SERIALIZING_CLASS
                    )
                else:
                    iclass = SERIALIZING_CLASS
                # Exact inline of randint(0, 0xFFFF) -- see next_raw.
                result = wl_grb(17)
                while result >= 65536:
                    result = wl_grb(17)
                seq = wl_seq
                wl_seq = seq + 1
                if wl_in_os:
                    wl_os_emitted += 1
                else:
                    wl_user_emitted += 1
            instructions += 1
            if privilege is USER_LEVEL:
                user_instructions += 1
                cycles += issue_cost
                cycles += icache_user
            else:
                os_instructions += 1
                cycles += issue_cost
                cycles += icache_os
            issue_cycles_total += issue_cost
            if dmr:
                cycles += dmr_check_cost
                dmr_check_total += dmr_check_cost

            if iclass is ALU_CLASS:
                pass
            elif iclass is LOAD_CLASS or iclass is STORE_CLASS:
                if address is not None:
                    is_store_op = iclass is STORE_CLASS
                    t_entry = (
                        tlb_entries.get(address >> tlb_page_shift)
                        if tlb_page_shift is not None
                        else None
                    )
                    if t_entry is not None:
                        # Inline of translate_raw's hit path.
                        tlb._touch = tlb_touch = tlb._touch + 1
                        t_entry.last_touch = tlb_touch
                        tlb_counts["hits"] += 1
                        t_latency = 0
                        permitted = True
                        if privilege is USER_LEVEL:
                            flag_bits = t_entry.flags._value_
                            if is_store_op and not (flag_bits & _USER_WRITE):
                                permitted = False
                            if flag_bits & _PRIVILEGED_ONLY:
                                permitted = False
                            if not permitted:
                                tlb_counts["permission_denials"] += 1
                        physical = (t_entry.physical_page << tlb_page_shift) + (
                            address & tlb_page_mask
                        )
                    else:
                        physical, _flags, _domain, _hit, t_latency, permitted = translate_raw(
                            address, is_store_op, privilege is not USER_LEVEL
                        )
                    if t_latency:
                        exposed_tlb = t_latency * 0.7
                        cycles += exposed_tlb
                        tlb_miss_total += exposed_tlb
                        n_tlb_misses += 1
                    if not permitted:
                        # The TLB's own check caught the access (fault-free path).
                        self._record_violation(
                            ViolationKind.TLB_DENIED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            physical,
                            "TLB permission check denied a store",
                            violations,
                        )
                        n_tlb_denials += 1
                        continue

                    if is_store_op and fault_hook is not None:
                        physical = fault_hook.perturb_store_address(
                            core_id, mode, physical
                        )

                    if pab_check is not None and is_store_op:
                        check = pab_check(physical)
                        check_latency = check.latency
                        if check_latency:
                            # A serialised lookup delays the write-through
                            # itself, so its latency is exposed in full;
                            # PAT-fill latency behaves like any other
                            # store-completion latency.
                            exposed_pab = check_latency * (
                                1.0 if check.serialized else store_exposure
                            )
                            cycles += exposed_pab
                            pab_stall_total += exposed_pab
                            n_pab_stalls += 1
                        n_pab_checks += 1
                        if not check.allowed:
                            self._record_violation(
                                ViolationKind.PAB_BLOCKED,
                                start_cycle + int(cycles),
                                core_id,
                                vcpu_id,
                                physical,
                                "PAB blocked a store to a reliable-only page",
                                violations,
                            )
                            n_pab_violations += 1
                            continue

                    if is_store_op:
                        latency, level, c2c, _offchip, _inv = coherent_store(
                            core_id, physical
                        )
                        if c2c:
                            n_c2c += 1
                    else:
                        # Inline of _coherent_load's L1-hit path.
                        line = l1_lines.get(physical & line_neg_mask)
                        if line is not None:
                            l1._touch_counter = l1_touch = l1._touch_counter + 1
                            line.last_touch = l1_touch
                            l1_counts["hits"] += 1
                            h_counts["l1d.hits"] += 1
                            latency = l1_hit_latency
                            level = "l1"
                        else:
                            latency, level, c2c, _offchip, _inv = coherent_load(
                                core_id, physical
                            )
                            if c2c:
                                n_c2c += 1
                    if dmr_mute:
                        m_latency, m_level, m_c2c, _mo, _mi = mute_access(
                            mute_id, physical, is_store_op
                        )
                        if m_c2c:
                            n_mute_c2c += 1
                        if m_latency > latency:
                            latency = m_latency
                            level = m_level

                    if level in OFFCORE_LEVELS:
                        # Shared-resource queueing: more active cores stretch
                        # the effective latency of off-core accesses.
                        latency = latency * contention
                    if is_store_op:
                        exposed = latency * store_exposure
                        store_stall_total += exposed
                        n_store_accesses += 1
                    else:
                        exposed = latency * load_exposures[level] * load_pressure
                        load_stall_total += exposed
                        n_load_accesses += 1
                    cycles += exposed
                    acc_counts[level] += 1
            elif iclass is BRANCH_CLASS:
                # Deterministic pseudo-random misprediction decision derived
                # from the instruction's synthetic result, reproducible runs.
                if (result & 0xFF) < branch_threshold and branch_penalty:
                    cycles += branch_penalty
                    branch_penalty_total += branch_penalty
                    n_branch_penalties += 1
            elif iclass is not NOP_CLASS:
                # Serialising classes (SERIALIZING, PRIVILEGED, SYSCALL_*).
                cycles += si_total
                n_si += 1
                si_stall_total += si_total
                if dmr_pair is not None:
                    # The pair must agree on architected state before the SI.
                    outcome = pair_sync()
                    if outcome is not None and not outcome.matched:
                        penalty = outcome.penalty_cycles
                        cycles += penalty
                        n_recoveries += 1
                        recovery_cycles_total += penalty

            if dmr_pair is not None:
                icv = iclass._value_
                saddr = address if (iclass is STORE_CLASS and address) else 0
                if fault_hook is not None and fault_hook.corrupt_execution(core_id, mode):
                    vocal_token = (
                        icv * 0x9E3779B1 ^ result * 0x85EBCA77 ^ saddr
                    ) & MASK64
                    mute_token = (
                        icv * 0x9E3779B1 ^ (result ^ 0x1) * 0x85EBCA77 ^ saddr
                    ) & MASK64
                    if vocal_unit._first_seq is None:
                        vocal_unit._first_seq = seq
                    vocal_unit._last_seq = seq
                    vocal_pending.append(vocal_token)
                    if mute_unit._first_seq is None:
                        mute_unit._first_seq = seq
                    mute_unit._last_seq = seq
                    mute_pending.append(mute_token)
                    if len(vocal_pending) >= fp_interval:
                        outcome = pair_compare(vocal_unit.flush(), mute_unit.flush())
                    else:
                        outcome = None
                    n_corruptions += 1
                    if outcome is not None and not outcome.matched:
                        penalty = outcome.penalty_cycles
                        cycles += penalty
                        n_recoveries += 1
                        recovery_cycles_total += penalty
                        self._record_violation(
                            ViolationKind.DMR_DETECTED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            address,
                            "fingerprint mismatch detected an injected fault",
                            violations,
                        )
                else:
                    token = (
                        icv * 0x9E3779B1 ^ result * 0x85EBCA77 ^ saddr
                    ) & MASK64
                    if vocal_unit._first_seq is None:
                        vocal_unit._first_seq = seq
                    vocal_unit._last_seq = seq
                    vocal_pending.append(token)
                    if mute_unit._first_seq is None:
                        mute_unit._first_seq = seq
                    mute_unit._last_seq = seq
                    mute_pending.append(token)
                    if len(vocal_pending) >= fp_interval:
                        outcome = pair_compare(vocal_unit.flush(), mute_unit.flush())
                    else:
                        outcome = None
                    if outcome is not None and not outcome.matched:
                        penalty = outcome.penalty_cycles
                        cycles += penalty
                        n_recoveries += 1
                        recovery_cycles_total += penalty

            if check_stops:
                if stop_on_os_entry and iclass is ENTRY_CLASS:
                    stop_reason = StopReason.OS_ENTRY
                    break
                if stop_on_os_exit and iclass is EXIT_CLASS:
                    stop_reason = StopReason.OS_EXIT
                    break
        finally:
            # Write the mirrored generator state back so the workload resumes
            # exactly where the quantum stopped.
            wl._seq = wl_seq
            wl._remaining_in_phase = wl_remaining
            wl._in_os_phase = wl_in_os
            if wl_user_emitted:
                wl.user_instructions_emitted += wl_user_emitted
            if wl_os_emitted:
                wl.os_instructions_emitted += wl_os_emitted

        # Flush the local accumulators into a StatSet, creating exactly the
        # keys the reference implementation's per-instruction adds create.
        counters: dict = {}
        if instructions:
            counters["issue_cycles"] = issue_cycles_total
            if dmr:
                counters["dmr_check_cycles"] = dmr_check_total
        if n_branch_penalties:
            counters["branch_penalty_cycles"] = branch_penalty_total
        if n_si:
            counters["si_count"] = n_si
            counters["si_stall_cycles"] = si_stall_total
        if n_tlb_misses:
            counters["tlb_miss_cycles"] = tlb_miss_total
        if n_tlb_denials:
            counters["tlb_denials"] = n_tlb_denials
        if n_pab_stalls:
            counters["pab_stall_cycles"] = pab_stall_total
        if n_pab_checks:
            counters["pab_checks"] = n_pab_checks
        if n_pab_violations:
            counters["pab_violations"] = n_pab_violations
        if n_c2c:
            counters["c2c_transfers"] = n_c2c
        if n_mute_c2c:
            counters["mute_c2c_transfers"] = n_mute_c2c
        if n_store_accesses:
            counters["store_stall_cycles"] = store_stall_total
        if n_load_accesses:
            counters["load_stall_cycles"] = load_stall_total
        for level, count in acc_counts.items():
            if count:
                counters[f"accesses.{level}"] = count
        if n_recoveries:
            counters["dmr_recoveries"] = n_recoveries
            counters["dmr_recovery_cycles"] = recovery_cycles_total
        if n_corruptions:
            counters["dmr_corruptions_injected"] = n_corruptions

        total_cycles = max(1, int(round(cycles)))
        counters["cycles"] = total_cycles
        counters["instructions"] = instructions
        return QuantumResult(
            cycles=total_cycles,
            instructions=instructions,
            user_instructions=user_instructions,
            os_instructions=os_instructions,
            stop_reason=stop_reason,
            stats=StatSet(counters),
            violations=violations,
        )

    def run_quantum_reference(
        self,
        workload: SyntheticWorkload,
        assignment: CoreAssignment,
        cycle_budget: int,
        start_cycle: int = 0,
        vcpu_id: Optional[int] = None,
        stop_on_os_entry: bool = False,
        stop_on_os_exit: bool = False,
        max_instructions: Optional[int] = None,
        active_cores: Optional[int] = None,
    ) -> QuantumResult:
        """Reference implementation of :meth:`run_quantum`.

        One straightforward pass over :class:`Instruction` objects with a
        StatSet update per event.  Kept as the executable specification of
        the per-instruction cost model: the batched :meth:`run_quantum` must
        return bit-identical results (``tests/test_hotpath_parity.py``), and
        the fast-fidelity tier is calibrated against it.
        """
        if cycle_budget <= 0:
            raise SimulationError(f"cycle budget must be positive, got {cycle_budget}")
        dmr = assignment.mode is ExecutionMode.DMR
        performance_mode = assignment.mode is ExecutionMode.PERFORMANCE
        core_id = assignment.primary_core
        mute_id = assignment.secondary_core
        pair = assignment.reunion_pair
        tlb = self.tlbs[core_id]
        pab = (
            self.pabs[core_id]
            if performance_mode and self.pabs is not None
            else None
        )

        issue_cost = 1.0 / self.config.core.issue_width
        dmr_check_cost = 0.0
        if dmr:
            dmr_check_cost = (
                self.config.interconnect.fingerprint_latency
                / self.config.reunion.fingerprint_interval
            ) * self.parameters.dmr_check_utilisation
        store_exposure = self.lsq_model.store_exposure(dmr)
        load_pressure = self.lsq_model.load_queue_pressure()
        if active_cores is None:
            active_cores = len(assignment.cores)
        contention = 1.0
        if self.config.num_cores > 1:
            contention += self.parameters.shared_resource_contention * (
                max(0, min(active_cores, self.config.num_cores) - 1)
                / (self.config.num_cores - 1)
            )

        cycles = 0.0
        instructions = 0
        user_instructions = 0
        os_instructions = 0
        stats = StatSet()
        violations: List[ProtectionViolation] = []
        stop_reason = StopReason.BUDGET_EXHAUSTED

        while cycles < cycle_budget:
            if max_instructions is not None and instructions >= max_instructions:
                stop_reason = StopReason.INSTRUCTION_LIMIT
                break
            instruction = workload.next_instruction()
            instructions += 1
            if instruction.is_user:
                user_instructions += 1
            else:
                os_instructions += 1

            cycles += issue_cost
            cycles += self._icache_cost(workload, instruction.privilege)
            stats.add("issue_cycles", issue_cost)

            if dmr:
                cycles += dmr_check_cost
                stats.add("dmr_check_cycles", dmr_check_cost)

            if instruction.is_branch:
                penalty = self._branch_cost(instruction)
                if penalty:
                    cycles += penalty
                    stats.add("branch_penalty_cycles", penalty)

            elif instruction.is_serializing and not instruction.is_memory:
                cost = self.si_model.cost(dmr)
                cycles += cost.total
                stats.add("si_count")
                stats.add("si_stall_cycles", cost.total)
                if dmr and pair is not None:
                    # The pair must agree on architected state before the SI.
                    outcome = pair.synchronize()
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)

            elif instruction.is_memory and instruction.address is not None:
                translation = tlb.translate(
                    instruction.address,
                    is_store=instruction.is_store,
                    privileged=instruction.is_privileged_code,
                )
                if translation.latency:
                    exposed_tlb = translation.latency * 0.7
                    cycles += exposed_tlb
                    stats.add("tlb_miss_cycles", exposed_tlb)
                if not translation.permitted:
                    # The TLB's own check caught the access (fault-free path).
                    self._record_violation(
                        ViolationKind.TLB_DENIED,
                        start_cycle + int(cycles),
                        core_id,
                        vcpu_id,
                        translation.physical_address,
                        "TLB permission check denied a store",
                        violations,
                    )
                    stats.add("tlb_denials")
                    continue

                physical = translation.physical_address
                if instruction.is_store and self.fault_hook is not None:
                    physical = self.fault_hook.perturb_store_address(
                        core_id, assignment.mode, physical
                    )

                if pab is not None and instruction.is_store:
                    check = pab.check_store(physical)
                    if check.latency:
                        # A serialised lookup delays the write-through itself,
                        # so its latency is exposed in full; PAT-fill latency
                        # behaves like any other store-completion latency.
                        exposure = 1.0 if check.serialized else store_exposure
                        exposed_pab = check.latency * exposure
                        cycles += exposed_pab
                        stats.add("pab_stall_cycles", exposed_pab)
                    stats.add("pab_checks")
                    if not check.allowed:
                        self._record_violation(
                            ViolationKind.PAB_BLOCKED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            physical,
                            "PAB blocked a store to a reliable-only page",
                            violations,
                        )
                        stats.add("pab_violations")
                        continue

                vocal_access = self.hierarchy.access(
                    core_id, physical, is_store=instruction.is_store, coherent=True
                )
                latency = vocal_access.latency
                level = vocal_access.level
                if vocal_access.c2c:
                    stats.add("c2c_transfers")
                if dmr and mute_id is not None:
                    mute_access = self.hierarchy.access(
                        mute_id, physical, is_store=instruction.is_store, coherent=False
                    )
                    if mute_access.c2c:
                        stats.add("mute_c2c_transfers")
                    if mute_access.latency > latency:
                        latency = mute_access.latency
                        level = mute_access.level

                if level in ("l3", "c2c", "memory"):
                    # Shared-resource queueing: more active cores stretch the
                    # effective latency of off-core accesses.
                    latency = latency * contention
                if instruction.is_store:
                    exposed = latency * store_exposure
                    stats.add("store_stall_cycles", exposed)
                else:
                    exposure = self.window_model.exposure_for_level(level, dmr)
                    exposed = latency * exposure * load_pressure
                    stats.add("load_stall_cycles", exposed)
                cycles += exposed
                stats.add(f"accesses.{level}")

            if dmr and pair is not None and self.fault_hook is not None:
                if self.fault_hook.corrupt_execution(core_id, assignment.mode):
                    outcome = pair.observe_commit(instruction, mute_corrupted=True)
                    stats.add("dmr_corruptions_injected")
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)
                        self._record_violation(
                            ViolationKind.DMR_DETECTED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            instruction.address,
                            "fingerprint mismatch detected an injected fault",
                            violations,
                        )
                elif pair is not None:
                    outcome = pair.observe_commit(instruction)
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)
            elif dmr and pair is not None:
                outcome = pair.observe_commit(instruction)
                if outcome is not None and not outcome.matched:
                    cycles += outcome.penalty_cycles
                    stats.add("dmr_recoveries")
                    stats.add("dmr_recovery_cycles", outcome.penalty_cycles)

            if stop_on_os_entry and instruction.enters_os:
                stop_reason = StopReason.OS_ENTRY
                break
            if stop_on_os_exit and instruction.exits_os:
                stop_reason = StopReason.OS_EXIT
                break

        total_cycles = max(1, int(round(cycles)))
        stats.set("cycles", total_cycles)
        stats.set("instructions", instructions)
        return QuantumResult(
            cycles=total_cycles,
            instructions=instructions,
            user_instructions=user_instructions,
            os_instructions=os_instructions,
            stop_reason=stop_reason,
            stats=stats,
            violations=violations,
        )
