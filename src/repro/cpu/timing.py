"""Quantum-based analytic core timing model.

:class:`CoreTimingModel` executes a slice of one VCPU's synthetic instruction
stream on a physical core (or on a DMR pair) and returns how many cycles the
slice consumed, how many instructions were committed, and a detailed stall
breakdown.  The simulator drives one such call per VCPU per scheduling
quantum.

The model charges, per dynamic instruction:

* an issue cost of ``1 / issue_width`` cycles;
* branch misprediction and instruction-cache-miss penalties drawn from the
  workload profile;
* for memory operations: TLB translate latency, the *exposed* portion of the
  data access latency (exposure depends on the level that served the access,
  the instruction window size, and whether Reunion's Check stage is active),
  and -- for stores under sequential consistency -- the portion of the
  write-through latency that keeps the store in the window;
* for serialising instructions: a window drain plus, under DMR, the
  fingerprint validation round trip;
* under DMR: the amortised fingerprint-exchange cost per instruction, the
  slower of the vocal/mute data accesses (the mute fetches through its own,
  incoherent hierarchy and frequently pays a 3-hop cache-to-cache transfer),
  and any recovery penalty from fingerprint mismatches;
* in performance mode within an MMM: the PAB store-permission check
  (parallel lookups are free on a hit; serial lookups and PAT fills expose
  latency on the store path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Protocol, Sequence

from repro.common.stats import StatSet
from repro.config.system import SystemConfig
from repro.cpu.lsq import LoadStoreQueueModel
from repro.cpu.parameters import TimingModelParameters
from repro.cpu.serializing import SerializingInstructionModel
from repro.cpu.window import InstructionWindowModel
from repro.dmr.reunion import ReunionPair
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, PrivilegeLevel
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.violations import (
    ProtectionViolation,
    ViolationKind,
    ViolationLog,
)
from repro.tlb.tlb import TranslationLookasideBuffer
from repro.workloads.generator import SyntheticWorkload


class ExecutionMode(Enum):
    """How a VCPU is currently being executed."""

    #: Non-DMR execution in a machine that never mixes modes (the paper's
    #: ``No DMR`` baselines); the PAB is not consulted.
    BASELINE = auto()
    #: Non-DMR execution inside a mixed-mode machine; every store is
    #: re-validated by the PAB.
    PERFORMANCE = auto()
    #: Redundant execution on a Reunion vocal/mute pair.
    DMR = auto()


class StopReason(Enum):
    """Why :meth:`CoreTimingModel.run_quantum` returned."""

    BUDGET_EXHAUSTED = auto()
    OS_ENTRY = auto()
    OS_EXIT = auto()
    INSTRUCTION_LIMIT = auto()


class FaultHook(Protocol):
    """Interface the fault injector exposes to the timing model."""

    def perturb_store_address(
        self, core_id: int, mode: ExecutionMode, physical_address: int
    ) -> int:
        """Possibly redirect a store's physical address (TLB/datapath fault)."""

    def corrupt_execution(self, core_id: int, mode: ExecutionMode) -> bool:
        """Return True when this instruction's result is corrupted on ``core_id``."""


@dataclass(frozen=True)
class CoreAssignment:
    """Where and how a VCPU executes during one quantum."""

    mode: ExecutionMode
    primary_core: int
    secondary_core: Optional[int] = None
    reunion_pair: Optional[ReunionPair] = None

    def __post_init__(self) -> None:
        if self.mode is ExecutionMode.DMR:
            if self.secondary_core is None:
                raise SimulationError("DMR execution needs a secondary (mute) core")
            if self.secondary_core == self.primary_core:
                raise SimulationError("DMR execution needs two distinct cores")
        elif self.secondary_core is not None:
            raise SimulationError("non-DMR execution must not name a secondary core")

    @property
    def cores(self) -> Sequence[int]:
        """All physical cores consumed by this assignment."""
        if self.secondary_core is None:
            return (self.primary_core,)
        return (self.primary_core, self.secondary_core)


@dataclass
class QuantumResult:
    """Outcome of running one VCPU for one quantum."""

    cycles: int
    instructions: int
    user_instructions: int
    os_instructions: int
    stop_reason: StopReason
    stats: StatSet = field(default_factory=StatSet)
    violations: List[ProtectionViolation] = field(default_factory=list)

    @property
    def user_ipc(self) -> float:
        """Committed user instructions per cycle for this quantum."""
        if self.cycles == 0:
            return 0.0
        return self.user_instructions / self.cycles

    @property
    def total_ipc(self) -> float:
        """All committed instructions per cycle for this quantum."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles


class CoreTimingModel:
    """Analytic timing model shared by every core of the machine."""

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy,
        tlbs: Sequence[TranslationLookasideBuffer],
        pabs: Optional[Sequence[ProtectionAssistanceBuffer]] = None,
        parameters: Optional[TimingModelParameters] = None,
        violation_log: Optional[ViolationLog] = None,
        fault_hook: Optional[FaultHook] = None,
    ) -> None:
        config.validate()
        if len(tlbs) != config.num_cores:
            raise SimulationError(
                f"expected {config.num_cores} TLBs, got {len(tlbs)}"
            )
        if pabs is not None and len(pabs) != config.num_cores:
            raise SimulationError(
                f"expected {config.num_cores} PABs, got {len(pabs)}"
            )
        self.config = config
        self.hierarchy = hierarchy
        self.tlbs = list(tlbs)
        self.pabs = list(pabs) if pabs is not None else None
        self.parameters = (parameters or TimingModelParameters()).validate()
        # Note: an empty ViolationLog is falsy, so "or" must not be used here.
        self.violation_log = violation_log if violation_log is not None else ViolationLog()
        self.fault_hook = fault_hook
        self.window_model = InstructionWindowModel(config.core, self.parameters)
        self.lsq_model = LoadStoreQueueModel(config.core, self.parameters)
        self.si_model = SerializingInstructionModel(
            config.core, config.reunion, config.interconnect, self.window_model
        )

    # ------------------------------------------------------------------ #
    # Per-instruction cost components
    # ------------------------------------------------------------------ #

    def _branch_cost(self, instruction: Instruction) -> float:
        # Deterministic pseudo-random misprediction decision derived from the
        # instruction's synthetic result, so runs are reproducible.
        threshold = int(self.config.core.branch_mispredict_rate * 256)
        if (instruction.result & 0xFF) < threshold:
            return float(self.config.core.branch_penalty_cycles)
        return 0.0

    def _icache_cost(self, workload: SyntheticWorkload, privilege: PrivilegeLevel) -> float:
        mpki = workload.profile.icache_mpki_for(privilege)
        miss_latency = self.config.l2.hit_latency * self.parameters.icache_exposure
        return (mpki / 1000.0) * miss_latency

    def _record_violation(
        self,
        kind: ViolationKind,
        cycle: int,
        core_id: int,
        vcpu_id: Optional[int],
        address: Optional[int],
        description: str,
        sink: List[ProtectionViolation],
    ) -> None:
        violation = ProtectionViolation(
            kind=kind,
            cycle=cycle,
            core_id=core_id,
            vcpu_id=vcpu_id,
            physical_address=address,
            description=description,
        )
        sink.append(violation)
        self.violation_log.record(violation)

    # ------------------------------------------------------------------ #
    # Quantum execution
    # ------------------------------------------------------------------ #

    def run_quantum(
        self,
        workload: SyntheticWorkload,
        assignment: CoreAssignment,
        cycle_budget: int,
        start_cycle: int = 0,
        vcpu_id: Optional[int] = None,
        stop_on_os_entry: bool = False,
        stop_on_os_exit: bool = False,
        max_instructions: Optional[int] = None,
        active_cores: Optional[int] = None,
    ) -> QuantumResult:
        """Run one VCPU until the cycle budget (or a stop condition) is reached.

        ``active_cores`` is the number of physical cores concurrently doing
        work this quantum (including this VCPU's own cores); it drives the
        shared-resource contention term applied to off-core access latencies.
        """
        if cycle_budget <= 0:
            raise SimulationError(f"cycle budget must be positive, got {cycle_budget}")
        dmr = assignment.mode is ExecutionMode.DMR
        performance_mode = assignment.mode is ExecutionMode.PERFORMANCE
        core_id = assignment.primary_core
        mute_id = assignment.secondary_core
        pair = assignment.reunion_pair
        tlb = self.tlbs[core_id]
        pab = (
            self.pabs[core_id]
            if performance_mode and self.pabs is not None
            else None
        )

        issue_cost = 1.0 / self.config.core.issue_width
        dmr_check_cost = 0.0
        if dmr:
            dmr_check_cost = (
                self.config.interconnect.fingerprint_latency
                / self.config.reunion.fingerprint_interval
            ) * self.parameters.dmr_check_utilisation
        store_exposure = self.lsq_model.store_exposure(dmr)
        load_pressure = self.lsq_model.load_queue_pressure()
        if active_cores is None:
            active_cores = len(assignment.cores)
        contention = 1.0
        if self.config.num_cores > 1:
            contention += self.parameters.shared_resource_contention * (
                max(0, min(active_cores, self.config.num_cores) - 1)
                / (self.config.num_cores - 1)
            )

        cycles = 0.0
        instructions = 0
        user_instructions = 0
        os_instructions = 0
        stats = StatSet()
        violations: List[ProtectionViolation] = []
        stop_reason = StopReason.BUDGET_EXHAUSTED

        while cycles < cycle_budget:
            if max_instructions is not None and instructions >= max_instructions:
                stop_reason = StopReason.INSTRUCTION_LIMIT
                break
            instruction = workload.next_instruction()
            instructions += 1
            if instruction.is_user:
                user_instructions += 1
            else:
                os_instructions += 1

            cycles += issue_cost
            cycles += self._icache_cost(workload, instruction.privilege)
            stats.add("issue_cycles", issue_cost)

            if dmr:
                cycles += dmr_check_cost
                stats.add("dmr_check_cycles", dmr_check_cost)

            if instruction.is_branch:
                penalty = self._branch_cost(instruction)
                if penalty:
                    cycles += penalty
                    stats.add("branch_penalty_cycles", penalty)

            elif instruction.is_serializing and not instruction.is_memory:
                cost = self.si_model.cost(dmr)
                cycles += cost.total
                stats.add("si_count")
                stats.add("si_stall_cycles", cost.total)
                if dmr and pair is not None:
                    # The pair must agree on architected state before the SI.
                    outcome = pair.synchronize()
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)

            elif instruction.is_memory and instruction.address is not None:
                translation = tlb.translate(
                    instruction.address,
                    is_store=instruction.is_store,
                    privileged=instruction.is_privileged_code,
                )
                if translation.latency:
                    exposed_tlb = translation.latency * 0.7
                    cycles += exposed_tlb
                    stats.add("tlb_miss_cycles", exposed_tlb)
                if not translation.permitted:
                    # The TLB's own check caught the access (fault-free path).
                    self._record_violation(
                        ViolationKind.TLB_DENIED,
                        start_cycle + int(cycles),
                        core_id,
                        vcpu_id,
                        translation.physical_address,
                        "TLB permission check denied a store",
                        violations,
                    )
                    stats.add("tlb_denials")
                    continue

                physical = translation.physical_address
                if instruction.is_store and self.fault_hook is not None:
                    physical = self.fault_hook.perturb_store_address(
                        core_id, assignment.mode, physical
                    )

                if pab is not None and instruction.is_store:
                    check = pab.check_store(physical)
                    if check.latency:
                        # A serialised lookup delays the write-through itself,
                        # so its latency is exposed in full; PAT-fill latency
                        # behaves like any other store-completion latency.
                        exposure = 1.0 if check.serialized else store_exposure
                        exposed_pab = check.latency * exposure
                        cycles += exposed_pab
                        stats.add("pab_stall_cycles", exposed_pab)
                    stats.add("pab_checks")
                    if not check.allowed:
                        self._record_violation(
                            ViolationKind.PAB_BLOCKED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            physical,
                            "PAB blocked a store to a reliable-only page",
                            violations,
                        )
                        stats.add("pab_violations")
                        continue

                vocal_access = self.hierarchy.access(
                    core_id, physical, is_store=instruction.is_store, coherent=True
                )
                latency = vocal_access.latency
                level = vocal_access.level
                if vocal_access.c2c:
                    stats.add("c2c_transfers")
                if dmr and mute_id is not None:
                    mute_access = self.hierarchy.access(
                        mute_id, physical, is_store=instruction.is_store, coherent=False
                    )
                    if mute_access.c2c:
                        stats.add("mute_c2c_transfers")
                    if mute_access.latency > latency:
                        latency = mute_access.latency
                        level = mute_access.level

                if level in ("l3", "c2c", "memory"):
                    # Shared-resource queueing: more active cores stretch the
                    # effective latency of off-core accesses.
                    latency = latency * contention
                if instruction.is_store:
                    exposed = latency * store_exposure
                    stats.add("store_stall_cycles", exposed)
                else:
                    exposure = self.window_model.exposure_for_level(level, dmr)
                    exposed = latency * exposure * load_pressure
                    stats.add("load_stall_cycles", exposed)
                cycles += exposed
                stats.add(f"accesses.{level}")

            if dmr and pair is not None and self.fault_hook is not None:
                if self.fault_hook.corrupt_execution(core_id, assignment.mode):
                    outcome = pair.observe_commit(instruction, mute_corrupted=True)
                    stats.add("dmr_corruptions_injected")
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)
                        self._record_violation(
                            ViolationKind.DMR_DETECTED,
                            start_cycle + int(cycles),
                            core_id,
                            vcpu_id,
                            instruction.address,
                            "fingerprint mismatch detected an injected fault",
                            violations,
                        )
                elif pair is not None:
                    outcome = pair.observe_commit(instruction)
                    if outcome is not None and not outcome.matched:
                        cycles += outcome.penalty_cycles
                        stats.add("dmr_recoveries")
                        stats.add("dmr_recovery_cycles", outcome.penalty_cycles)
            elif dmr and pair is not None:
                outcome = pair.observe_commit(instruction)
                if outcome is not None and not outcome.matched:
                    cycles += outcome.penalty_cycles
                    stats.add("dmr_recoveries")
                    stats.add("dmr_recovery_cycles", outcome.penalty_cycles)

            if stop_on_os_entry and instruction.enters_os:
                stop_reason = StopReason.OS_ENTRY
                break
            if stop_on_os_exit and instruction.exits_os:
                stop_reason = StopReason.OS_EXIT
                break

        total_cycles = max(1, int(round(cycles)))
        stats.set("cycles", total_cycles)
        stats.set("instructions", instructions)
        return QuantumResult(
            cycles=total_cycles,
            instructions=instructions,
            user_instructions=user_instructions,
            os_instructions=os_instructions,
            stop_reason=stop_reason,
            stats=stats,
            violations=violations,
        )
