"""Load/store queue pressure model.

Under the paper's sequential-consistency configuration, stores remain in the
instruction window (and store queue) until they are committed to the cache,
which both inflates window occupancy and stalls the pipeline when the store
queue fills.  The original Reunion proposal used TSO with a store buffer,
which hides most of that latency -- the ablation benchmark flips this switch
to reproduce the paper's "Comparison to Prior Work" argument (Smolens reports
SC costs Reunion roughly 30% on average).
"""

from __future__ import annotations

from repro.config.system import ConsistencyModel, CoreConfig
from repro.cpu.parameters import TimingModelParameters


class LoadStoreQueueModel:
    """Derives the exposed cost of stores from the consistency model."""

    def __init__(self, core_config: CoreConfig, parameters: TimingModelParameters) -> None:
        self.core_config = core_config
        self.parameters = parameters

    @property
    def consistency(self) -> ConsistencyModel:
        """The configured memory consistency model."""
        return self.core_config.consistency

    def store_exposure(self, dmr_active: bool) -> float:
        """Fraction of a store's completion latency exposed to the pipeline.

        Sequential consistency keeps the store (and everything younger) from
        retiring until the write-through completes; a TSO store buffer hides
        nearly all of it.  DMR inflates the SC cost further because the Check
        stage delays the commit point that releases the store-queue entry.
        """
        if self.consistency is ConsistencyModel.TSO:
            return self.parameters.store_exposure_tso
        exposure = self.parameters.store_exposure_sc
        if dmr_active:
            exposure = min(1.0, exposure * 1.4)
        # A smaller store queue exposes more of the latency.
        reference_entries = 32.0
        scale = reference_entries / max(4.0, float(self.core_config.lsq_store_entries))
        return min(1.0, exposure * scale)

    def load_queue_pressure(self) -> float:
        """Multiplier (>= 1) applied to load exposure when the LQ is small."""
        reference_entries = 32.0
        return max(1.0, reference_entries / max(4.0, float(self.core_config.lsq_load_entries)) * 0.5 + 0.5)
