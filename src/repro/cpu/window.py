"""Instruction-window occupancy and latency-hiding model.

The analytic core model does not track individual window entries.  Instead,
:class:`InstructionWindowModel` converts the configured window size (and the
extra pressure Reunion's Check stage creates) into *exposure fractions*: the
share of a long-latency event that the window cannot hide.  A larger window
hides more latency; holding instructions longer (DMR) effectively shrinks the
window, which is the first of the three Reunion overhead sources the paper
identifies (Section 5.1, "Instruction Window Utilization").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import CoreConfig
from repro.cpu.parameters import TimingModelParameters


@dataclass
class WindowPressureSample:
    """Snapshot of the window model's view for one quantum (diagnostics)."""

    effective_entries: float
    l3_exposure: float
    memory_exposure: float


class InstructionWindowModel:
    """Derives latency-exposure fractions from the window configuration."""

    def __init__(self, core_config: CoreConfig, parameters: TimingModelParameters) -> None:
        self.core_config = core_config
        self.parameters = parameters.validate()

    def effective_entries(self, dmr_active: bool) -> float:
        """Window entries effectively available for latency hiding.

        Under DMR, instructions wait in the Check stage before releasing
        their window resources, so the effective window shrinks by the
        configured pressure factor.
        """
        entries = float(self.core_config.window_entries)
        if dmr_active:
            entries /= self.parameters.dmr_window_pressure
        return max(8.0, entries)

    def _scale(self, base_exposure: float, dmr_active: bool) -> float:
        reference = float(self.parameters.reference_window_entries)
        effective = self.effective_entries(dmr_active)
        scaled = base_exposure * (reference / effective)
        return min(1.0, max(0.05, scaled))

    def l2_exposure(self, dmr_active: bool) -> float:
        """Exposed fraction of an L2 hit latency.

        L2 hits are short enough that even a Check-stage-delayed window hides
        them, so the DMR pressure factor is not applied here (it only affects
        off-core accesses, which is where Reunion's window pressure actually
        bites).
        """
        return self._scale(self.parameters.l2_hit_exposure, dmr_active=False)

    def l3_exposure(self, dmr_active: bool) -> float:
        """Exposed fraction of an L3 or cache-to-cache latency."""
        return self._scale(self.parameters.l3_exposure, dmr_active)

    def memory_exposure(self, dmr_active: bool) -> float:
        """Exposed fraction of a DRAM access latency."""
        return self._scale(self.parameters.memory_exposure, dmr_active)

    def exposure_for_level(self, level: str, dmr_active: bool) -> float:
        """Exposure fraction for a hierarchy access classified by level."""
        if level == "l1":
            return 0.0
        if level == "l2":
            return self.l2_exposure(dmr_active)
        if level in ("l3", "c2c"):
            return self.l3_exposure(dmr_active)
        return self.memory_exposure(dmr_active)

    def drain_cycles(self, dmr_active: bool) -> float:
        """Cycles to drain the window for a serialising instruction.

        Approximated as the time to retire a half-full window at the issue
        width, inflated by the DMR pressure factor when the Check stage is
        active (younger instructions must clear Check before the serialising
        instruction may execute).
        """
        occupancy = self.effective_entries(dmr_active=False) * 0.5
        drain = occupancy / max(1, self.core_config.issue_width)
        if dmr_active:
            drain *= self.parameters.dmr_window_pressure
        return drain * self.parameters.serializing_drain_fraction

    def sample(self, dmr_active: bool) -> WindowPressureSample:
        """Return the current exposure fractions (for tests and diagnostics)."""
        return WindowPressureSample(
            effective_entries=self.effective_entries(dmr_active),
            l3_exposure=self.l3_exposure(dmr_active),
            memory_exposure=self.memory_exposure(dmr_active),
        )
