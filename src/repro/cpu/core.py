"""Physical core bookkeeping.

:class:`PhysicalCore` tracks what a core is doing right now -- which VCPU it
runs, in which role (independent, DMR vocal, DMR mute, or idle) -- and is the
unit the hardware scheduler assigns work to.  The timing behaviour lives in
:mod:`repro.cpu.timing`; this class is deliberately just state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.common.stats import StatSet
from repro.errors import SchedulingError


class CoreRole(Enum):
    """What a physical core is currently doing."""

    IDLE = auto()
    #: Running a VCPU on its own (non-DMR).
    INDEPENDENT = auto()
    #: Master of a DMR pair: maintains full coherence.
    DMR_VOCAL = auto()
    #: Slave of a DMR pair: loads through its own hierarchy, stays incoherent.
    DMR_MUTE = auto()


@dataclass
class PhysicalCore:
    """One physical core of the simulated chip."""

    core_id: int
    role: CoreRole = CoreRole.IDLE
    vcpu_id: Optional[int] = None
    partner_core_id: Optional[int] = None
    stats: StatSet = field(default_factory=StatSet)

    @property
    def is_idle(self) -> bool:
        """True when the core has no work assigned."""
        return self.role is CoreRole.IDLE

    @property
    def in_dmr_pair(self) -> bool:
        """True when the core is half of a DMR pair."""
        return self.role in (CoreRole.DMR_VOCAL, CoreRole.DMR_MUTE)

    def assign_independent(self, vcpu_id: int) -> None:
        """Run ``vcpu_id`` on this core alone (performance / baseline mode)."""
        self._require_idle()
        self.role = CoreRole.INDEPENDENT
        self.vcpu_id = vcpu_id
        self.partner_core_id = None
        self.stats.add("assignments.independent")

    def assign_vocal(self, vcpu_id: int, mute_core_id: int) -> None:
        """Run ``vcpu_id`` as the vocal half of a DMR pair."""
        self._require_idle()
        if mute_core_id == self.core_id:
            raise SchedulingError(f"core {self.core_id} cannot pair with itself")
        self.role = CoreRole.DMR_VOCAL
        self.vcpu_id = vcpu_id
        self.partner_core_id = mute_core_id
        self.stats.add("assignments.vocal")

    def assign_mute(self, vcpu_id: int, vocal_core_id: int) -> None:
        """Run ``vcpu_id`` as the mute half of a DMR pair."""
        self._require_idle()
        if vocal_core_id == self.core_id:
            raise SchedulingError(f"core {self.core_id} cannot pair with itself")
        self.role = CoreRole.DMR_MUTE
        self.vcpu_id = vcpu_id
        self.partner_core_id = vocal_core_id
        self.stats.add("assignments.mute")

    def release(self) -> None:
        """Return the core to the idle pool."""
        self.role = CoreRole.IDLE
        self.vcpu_id = None
        self.partner_core_id = None
        self.stats.add("releases")

    def _require_idle(self) -> None:
        if not self.is_idle:
            raise SchedulingError(
                f"core {self.core_id} is already {self.role.name} for VCPU {self.vcpu_id}"
            )
