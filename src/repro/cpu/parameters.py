"""Calibration parameters of the analytic core timing model.

These constants translate micro-architectural events into exposed cycles.
They are deliberately collected in one frozen dataclass so that:

* the calibration is visible and documented in a single place,
* experiments (and tests) can construct variants explicitly, and
* the ablation benchmarks can explore the same design space the paper's
  "Comparison to Prior Work" discussion covers (window size, store buffer).

The default values were calibrated so that the reproduction's *relative*
results land in the ranges the paper reports (see EXPERIMENTS.md); they are
not claimed to be cycle-accurate for any real machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingModelParameters:
    """Knobs of the analytic out-of-order timing model."""

    #: Fraction of an L2 hit's latency exposed to the pipeline (most of a
    #: 12-cycle hit is hidden by the out-of-order window).
    l2_hit_exposure: float = 0.25
    #: Baseline fraction of a shared-L3 / cache-to-cache latency exposed when
    #: the instruction window is at its reference size (128 entries).
    l3_exposure: float = 0.35
    #: Baseline fraction of a DRAM access latency exposed at the reference
    #: window size (out-of-order overlap, memory-level parallelism and
    #: prefetching hide the rest).
    memory_exposure: float = 0.35
    #: Queueing pressure on the shared L3, interconnect and memory channels:
    #: the exposed latency of off-core accesses grows by this fraction when
    #: every core of the chip is active (linearly interpolated in between).
    #: This is what separates the paper's ``No DMR`` (8 active cores) from
    #: ``No DMR 2X`` (16 active cores).
    shared_resource_contention: float = 0.6
    #: Reference window size the exposure baselines were calibrated at.
    reference_window_entries: int = 128
    #: Fraction of a store's completion latency that occupies the window
    #: under sequential consistency (stores retire only when the
    #: write-through completes).
    store_exposure_sc: float = 0.35
    #: Same, when a TSO-style store buffer is available (original Reunion
    #: configuration); nearly everything is hidden.
    store_exposure_tso: float = 0.06
    #: Multiplier on window pressure when Reunion's Check stage is active;
    #: the paper observes full structures about twice as often under DMR (the calibrated default is slightly lower because part of that pressure is already captured by the per-instruction check cost).
    dmr_window_pressure: float = 1.55
    #: Extra exposed cycles per committed instruction from the Check stage
    #: hand-shake, expressed as a fraction of the fingerprint-network latency
    #: amortised over the fingerprint interval.
    dmr_check_utilisation: float = 0.3
    #: Fraction of the pipeline depth charged when a serialising instruction
    #: drains the window (both halves: drain plus refill).
    serializing_drain_fraction: float = 1.0
    #: Exposed fraction of the instruction-cache miss latency.
    icache_exposure: float = 1.0

    def validate(self) -> "TimingModelParameters":
        """Check every knob is within a meaningful range; return ``self``."""
        for label, value, low, high in (
            ("l2_hit_exposure", self.l2_hit_exposure, 0.0, 1.0),
            ("l3_exposure", self.l3_exposure, 0.0, 1.0),
            ("memory_exposure", self.memory_exposure, 0.0, 1.0),
            ("store_exposure_sc", self.store_exposure_sc, 0.0, 1.0),
            ("store_exposure_tso", self.store_exposure_tso, 0.0, 1.0),
            ("icache_exposure", self.icache_exposure, 0.0, 1.0),
            ("shared_resource_contention", self.shared_resource_contention, 0.0, 2.0),
            ("dmr_check_utilisation", self.dmr_check_utilisation, 0.0, 4.0),
            ("serializing_drain_fraction", self.serializing_drain_fraction, 0.0, 4.0),
            ("dmr_window_pressure", self.dmr_window_pressure, 1.0, 4.0),
        ):
            if not low <= value <= high:
                raise ConfigurationError(
                    f"timing parameter {label} = {value} outside [{low}, {high}]"
                )
        if self.reference_window_entries < 8:
            raise ConfigurationError("reference window size is unreasonably small")
        return self
