"""Calibrated analytical fast tier for the quantum timing model.

:class:`FastTimingModel` wraps a :class:`~repro.cpu.timing.CoreTimingModel`
and trades cycle-accuracy for speed.  Quanta are grouped into *execution
contexts* -- a (workload profile, execution mode, active-core count)
combination, i.e. everything that changes per-cycle behaviour -- and only a
duty-cycled fraction (one in :data:`SAMPLE_EVERY`) of each context's quanta
is simulated accurately.  Every accurate quantum feeds the context's running
*calibration aggregate* (total cycles, instructions, user/OS split, stall
breakdown); the remaining quanta are synthesised by scaling the aggregate's
per-cycle rates to the requested cycle budget instead of simulating every
dynamic instruction, which is where the speedup comes from.

Three properties of the scheme matter for fidelity:

* sampling is coordinated per VM, not per VCPU: a VM's quanta are grouped
  into *rounds* by their start cycle (all placements of one of its
  timeslices share it), and one round in :data:`SAMPLE_EVERY` runs
  accurate for **every** sibling VCPU at once, so sampled quanta contend
  against genuinely executing neighbours.  Per-VCPU duty-cycling instead
  samples each VCPU against synthesised (silent) neighbours, which
  under-pressures the shared cache levels and biases the calibrated rates
  optimistic.  Rounds are counted per VM because consolidated VMs
  time-multiplex the machine: sampling on a machine-wide round counter
  keeps re-sampling whichever VM owns the matching timeslices while the
  others extrapolate their earliest (phase-biased) quanta forever;
* samples are whole quanta run in place against the warmed memory system,
  so the calibrated rates reflect steady-state cache pressure (a
  truncated-probe scheme under-pressures the shared levels even within one
  quantum);
* the aggregate pools samples across *all* VCPUs running the same profile
  in the same mode, and keeps growing as the run proceeds.  Individual
  quanta swing wildly with the user/OS phase the VCPU happens to occupy
  (an OS-heavy quantum can commit zero user instructions); pooling averages
  that phase noise with ~(VCPUs x duty-cycle) samples per context, and the
  periodic accurate rounds keep feeding behavioural drift back in.

Skipped rounds do not advance the synthetic address streams, but those
streams are stationary by construction, so re-entering a sampled round at
the old stream state is statistically equivalent to having executed the
gap -- the classic functional-warming requirement of sampled simulation
does not bite here.

Calls the analytical model cannot represent faithfully -- fine-grained runs
that stop on OS entry/exit, instruction-limited runs, or any run under
fault injection -- are delegated to the wrapped accurate model unchanged, so
measurement-style experiments return identical results under either tier.

The fast tier is selected per experiment via
``ExperimentSettings(fidelity="fast")`` (CLI: ``--fidelity fast``); its
deviation from the accurate tier is bounded by the parity test suite
(``tests/test_fidelity_parity.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.stats import StatSet
from repro.cpu.timing import (
    CoreAssignment,
    CoreTimingModel,
    QuantumResult,
    StopReason,
)
from repro.workloads.generator import SyntheticWorkload

#: One round (timeslice) in this many runs fully accurate -- for every
#: VCPU at once, so sampled quanta see true contention -- and feeds the
#: calibration aggregates; the rest are synthesised.  The asymptotic
#: speedup of the tier on steady phases is bounded by this number.
SAMPLE_EVERY = 4

#: Accurate samples a context must accumulate before any quantum of it is
#: synthesised.  Keeps short-lived contexts (a placement that exists only
#: briefly after a core failure, the tail of a churn burst) essentially
#: accurate instead of extrapolating from one noisy sample.
MIN_SAMPLES = 3

#: A VM's first rounds all run accurate.  Every VCPU starts its synthetic
#: stream at the beginning of a user phase, so the earliest rounds are
#: systematically user-heavy and settle towards the steady phase mix over
#: the first few timeslices; extrapolating that transient forward is the
#: largest single error source of round sampling.  Simulating the
#: transient accurately means synthesis only ever extrapolates from
#: post-transient rounds.
MIN_ROUNDS = 3

#: Per-sample-round decay of the calibration aggregate.  The synthetic
#: workloads drift (the user/OS phase mix in particular is not stationary
#: over a run), so synthesising from the all-time mean anchors every
#: prediction to the earliest samples; decaying the aggregate whenever a
#: new sample round begins weights the calibration towards recent rounds
#: while still averaging several rounds' sibling quanta against phase
#: noise.  Swept over {0.3, 0.5, 0.7} on the quick parity grid: stronger
#: decay tracks drift better but amplifies single-round phase noise, and
#: 0.7 minimises the worst-case residual across the registered specs.
ROUND_DECAY = 0.7


class _Calibration:
    """Decayed aggregate of one context's accurately simulated quanta.

    ``samples`` counts raw (undecayed) samples for the :data:`MIN_SAMPLES`
    gate; the rate totals decay by :data:`ROUND_DECAY` per sample round so
    synthesis tracks recent behaviour.
    """

    __slots__ = ("cycles", "instructions", "user_instructions", "stats", "samples", "round")

    def __init__(self) -> None:
        self.cycles = 0.0
        self.instructions = 0.0
        self.user_instructions = 0.0
        self.stats = StatSet()
        self.samples = 0
        self.round = -1

    def add(self, result: QuantumResult, sample_round: int) -> None:
        if sample_round != self.round:
            self.round = sample_round
            self.cycles *= ROUND_DECAY
            self.instructions *= ROUND_DECAY
            self.user_instructions *= ROUND_DECAY
            self.stats = self.stats.scaled(ROUND_DECAY)
        self.cycles += result.cycles
        self.instructions += result.instructions
        self.user_instructions += result.user_instructions
        self.stats.merge(result.stats)
        self.samples += 1


class FastTimingModel:
    """Sample-and-extrapolate wrapper around the accurate timing model.

    Drop-in for :class:`~repro.cpu.timing.CoreTimingModel` at the
    ``run_quantum`` interface; every other attribute (hierarchy, TLBs,
    violation log, ...) is forwarded to the wrapped model, so machine and
    simulator code observes a single coherent timing model.
    """

    def __init__(self, accurate: CoreTimingModel) -> None:
        self._accurate = accurate
        self._calibrations: Dict[Tuple, _Calibration] = {}
        # Per-VM sampling round: all of a VM's quanta sharing a start cycle
        # belong to one round, and the sample/synthesise decision is made
        # per round so sibling VCPUs sample (and skip) together.  Rounds are
        # counted per VM, not machine-wide: consolidated VMs time-multiplex
        # the machine, and a global round counter would keep sampling
        # whichever VM happens to own the matching timeslices while the
        # others extrapolate their earliest quanta forever.
        self._vm_rounds: Dict[int, list] = {}

    def __getattr__(self, name: str):
        return getattr(self._accurate, name)

    @property
    def accurate_model(self) -> CoreTimingModel:
        """The wrapped cycle-accurate model (the calibration reference)."""
        return self._accurate

    def run_quantum(
        self,
        workload: SyntheticWorkload,
        assignment: CoreAssignment,
        cycle_budget: int,
        start_cycle: int = 0,
        vcpu_id: Optional[int] = None,
        stop_on_os_entry: bool = False,
        stop_on_os_exit: bool = False,
        max_instructions: Optional[int] = None,
        active_cores: Optional[int] = None,
    ) -> QuantumResult:
        accurate = self._accurate
        if (
            stop_on_os_entry
            or stop_on_os_exit
            or max_instructions is not None
            or accurate.fault_hook is not None
        ):
            # Fine-grained stop conditions and fault injection depend on the
            # exact dynamic instruction sequence; extrapolation cannot
            # represent them, so these calls run fully accurate.
            return accurate.run_quantum(
                workload,
                assignment,
                cycle_budget,
                start_cycle=start_cycle,
                vcpu_id=vcpu_id,
                stop_on_os_entry=stop_on_os_entry,
                stop_on_os_exit=stop_on_os_exit,
                max_instructions=max_instructions,
                active_cores=active_cores,
            )

        round_state = self._vm_rounds.get(workload.vm_id)
        if round_state is None:
            round_state = self._vm_rounds[workload.vm_id] = [start_cycle, 0]
        elif start_cycle != round_state[0]:
            round_state[0] = start_cycle
            round_state[1] += 1

        # The context pools sibling VCPUs of the same VM: per-quantum
        # behaviour varies far more with the user/OS phase a VCPU happens to
        # occupy than between siblings, so pooling averages the phase noise.
        # It deliberately excludes the concrete core IDs (policies that
        # rotate placements would otherwise never revisit a context,
        # degenerating the fast tier to the accurate one) but keeps the VM:
        # two VMs can run the same profile in the same mode with different
        # consolidation ratios, and pooling across them would drag both
        # towards the pooled mean.
        key = (workload.vm_id, workload.profile.name, assignment.mode, active_cores)
        calibration = self._calibrations.get(key)
        if calibration is None:
            calibration = self._calibrations[key] = _Calibration()
        if (
            round_state[1] < MIN_ROUNDS
            or round_state[1] % SAMPLE_EVERY == 0
            or calibration.samples < MIN_SAMPLES
        ):
            result = accurate.run_quantum(
                workload,
                assignment,
                cycle_budget,
                start_cycle=start_cycle,
                vcpu_id=vcpu_id,
                active_cores=active_cores,
            )
            if result.stop_reason is StopReason.BUDGET_EXHAUSTED and result.cycles > 0:
                calibration.add(result, round_state[1])
            return result
        return self._synthesize(calibration, cycle_budget)

    def _synthesize(self, calibration: _Calibration, cycle_budget: int) -> QuantumResult:
        """Scale the calibration aggregate's rates to the requested budget.

        Synthesised quanta touch no machine state at all -- because whole
        rounds are skipped machine-wide, the memory system simply freezes
        across the gap instead of decaying towards an under-contended
        state, and the next sampled round resumes against a representative
        hierarchy.
        """
        factor = cycle_budget / calibration.cycles
        instructions = int(round(calibration.instructions * factor))
        user = int(round(calibration.user_instructions * factor))
        return QuantumResult(
            cycles=cycle_budget,
            instructions=instructions,
            user_instructions=user,
            os_instructions=max(0, instructions - user),
            stop_reason=StopReason.BUDGET_EXHAUSTED,
            stats=calibration.stats.scaled(factor),
            # Protection violations are point events tied to specific dynamic
            # instructions; the accurate sample quanta already logged theirs,
            # and synthesised quanta execute none.
            violations=[],
        )
