"""Serialising-instruction cost model.

OS-intensive workloads encounter frequent serialising instructions (SIs):
privileged register writes, traps, returns, memory-barrier-like operations.
An SI cannot execute until every older instruction has committed and stalls
fetch until it is itself validated.  Reunion makes SIs markedly more
expensive (Section 5.1): younger instructions must clear the Check stage
before the SI can execute, and the SI itself must be validated (a fingerprint
round trip) before younger instructions may enter the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import CoreConfig, InterconnectConfig, ReunionConfig
from repro.cpu.window import InstructionWindowModel


@dataclass(frozen=True)
class SerializingCosts:
    """Cycle costs charged for one serialising instruction."""

    drain_cycles: float
    validation_cycles: float

    @property
    def total(self) -> float:
        """Total exposed cycles for the serialising instruction."""
        return self.drain_cycles + self.validation_cycles


class SerializingInstructionModel:
    """Computes the exposed cost of serialising instructions."""

    def __init__(
        self,
        core_config: CoreConfig,
        reunion_config: ReunionConfig,
        interconnect_config: InterconnectConfig,
        window_model: InstructionWindowModel,
    ) -> None:
        self.core_config = core_config
        self.reunion_config = reunion_config
        self.interconnect_config = interconnect_config
        self.window_model = window_model

    def cost(self, dmr_active: bool) -> SerializingCosts:
        """Exposed cycles for one serialising instruction."""
        drain = self.window_model.drain_cycles(dmr_active)
        drain += self.core_config.serializing_drain_cycles
        if not dmr_active:
            return SerializingCosts(drain_cycles=drain, validation_cycles=0.0)
        # Under Reunion the SI must be validated before younger instructions
        # may enter the pipeline: one fingerprint exchange over the dedicated
        # network plus the comparison/commit hand-shake.
        validation = (
            self.interconnect_config.fingerprint_latency
            + self.reunion_config.serializing_check_cycles
            + self.reunion_config.check_stage_cycles
        )
        return SerializingCosts(drain_cycles=drain, validation_cycles=float(validation))
