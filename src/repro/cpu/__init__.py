"""Out-of-order core timing model.

The reproduction uses a quantum-based *analytic* core model rather than a
cycle-by-cycle pipeline simulation: each dynamic instruction is charged an
issue cost plus the exposed portion of any stall it causes (memory latency
not hidden by the instruction window, branch mispredictions, instruction
cache misses, serialising-instruction drains, DMR check/fingerprint delays,
PAB lookups).  The exposure fractions are derived from the configured window
and LSQ sizes through :mod:`repro.cpu.window` and :mod:`repro.cpu.lsq`, so
the ablation experiments (larger window, TSO store buffer) change behaviour
through the same mechanisms the paper discusses.
"""

from repro.cpu.core import PhysicalCore
from repro.cpu.parameters import TimingModelParameters
from repro.cpu.timing import (
    CoreAssignment,
    CoreTimingModel,
    ExecutionMode,
    QuantumResult,
    StopReason,
)

__all__ = [
    "PhysicalCore",
    "TimingModelParameters",
    "CoreAssignment",
    "CoreTimingModel",
    "ExecutionMode",
    "QuantumResult",
    "StopReason",
]
