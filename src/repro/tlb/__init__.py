"""Address translation: page table and hardware-filled TLB.

The protection argument of the paper starts here: in a fault-free machine the
TLB's permission check is sufficient to stop a user application from writing
memory it does not own.  A hardware fault in the TLB array, its checking
logic, or the privileged registers can defeat that check, which is why a
performance-mode (non-DMR) core needs the redundant PAB check
(:mod:`repro.protection`).
"""

from repro.tlb.page_table import PageFlags, PageTable, PageTableEntry
from repro.tlb.tlb import TlbEntry, TranslationLookasideBuffer, TranslationResult

__all__ = [
    "PageFlags",
    "PageTable",
    "PageTableEntry",
    "TlbEntry",
    "TranslationLookasideBuffer",
    "TranslationResult",
]
