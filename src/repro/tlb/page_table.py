"""Page table with per-page permissions and reliability domains.

System software (the OS or VMM) owns the page table.  The reproduction keeps
the mapping identity (virtual page == physical page) because the paper's
mechanisms care about *permissions* and *ownership*, not about the shape of
the mapping; faults are modelled as corruption of the cached translation in
the TLB, not of the page table itself (the page table lives in ECC-protected
memory).

Each entry records:

* whether user-level code may write the page,
* which guest VM (domain) owns the page,
* whether the page may only be touched by software running in reliable mode
  (this is the information the system software distils into the Protection
  Assistance Table).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Flag, auto
from typing import Dict, Iterator, Optional, Tuple

from repro.common.addresses import DEFAULT_PAGE_SIZE, Region
from repro.errors import ProtectionError


class PageFlags(Flag):
    """Permission bits of one page."""

    NONE = 0
    USER_READ = auto()
    USER_WRITE = auto()
    PRIVILEGED_ONLY = auto()
    #: The page belongs to software that requires reliable (DMR) execution;
    #: stores from performance-mode cores must never reach it.
    RELIABLE_ONLY = auto()


@dataclass(slots=True)
class PageTableEntry:
    """One page's translation and permissions."""

    virtual_page: int
    physical_page: int
    flags: PageFlags
    domain: int

    @property
    def user_writable(self) -> bool:
        """True when user-level code may store to the page."""
        return bool(self.flags & PageFlags.USER_WRITE)

    @property
    def reliable_only(self) -> bool:
        """True when only reliable-mode software may write the page."""
        return bool(self.flags & PageFlags.RELIABLE_ONLY)


class PageTable:
    """The system software's page table for the whole simulated machine."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ProtectionError(f"page size must be a power of two, got {page_size}")
        self.page_size = page_size
        self._entries: Dict[int, PageTableEntry] = {}

    def _page_of(self, address: int) -> int:
        return address // self.page_size

    # ------------------------------------------------------------------ #
    # Mapping management (system-software interface)
    # ------------------------------------------------------------------ #

    def map_page(
        self,
        virtual_page: int,
        flags: PageFlags,
        domain: int,
        physical_page: Optional[int] = None,
    ) -> PageTableEntry:
        """Install (or replace) the mapping for ``virtual_page``."""
        entry = PageTableEntry(
            virtual_page=virtual_page,
            physical_page=virtual_page if physical_page is None else physical_page,
            flags=flags,
            domain=domain,
        )
        self._entries[virtual_page] = entry
        return entry

    def map_region(self, region: Region, flags: PageFlags, domain: int) -> int:
        """Map every page of ``region`` with the given flags; return the count."""
        first = region.base // self.page_size
        last = (region.end - 1) // self.page_size
        for page in range(first, last + 1):
            self.map_page(page, flags, domain)
        return last - first + 1

    def unmap_page(self, virtual_page: int) -> Optional[PageTableEntry]:
        """Remove the mapping for ``virtual_page`` (returns the old entry)."""
        return self._entries.pop(virtual_page, None)

    def update_flags(self, virtual_page: int, flags: PageFlags) -> PageTableEntry:
        """Replace the flags of an existing mapping."""
        entry = self._entries.get(virtual_page)
        if entry is None:
            raise ProtectionError(f"page {virtual_page:#x} is not mapped")
        entry.flags = flags
        return entry

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup_page(self, virtual_page: int) -> Optional[PageTableEntry]:
        """Return the entry for ``virtual_page`` or ``None``."""
        return self._entries.get(virtual_page)

    def lookup_address(self, virtual_address: int) -> Optional[PageTableEntry]:
        """Return the entry covering ``virtual_address`` or ``None``."""
        return self._entries.get(self._page_of(virtual_address))

    def translate(self, virtual_address: int) -> Tuple[int, PageTableEntry]:
        """Translate an address; raises when the page is unmapped."""
        entry = self.lookup_address(virtual_address)
        if entry is None:
            raise ProtectionError(f"address {virtual_address:#x} is not mapped")
        offset = virtual_address % self.page_size
        return entry.physical_page * self.page_size + offset, entry

    def entries(self) -> Iterator[PageTableEntry]:
        """Iterate over every mapping."""
        return iter(self._entries.values())

    def reliable_pages(self) -> Iterator[int]:
        """Physical page numbers writable only by reliable-mode software."""
        for entry in self._entries.values():
            if entry.reliable_only:
                yield entry.physical_page

    def __len__(self) -> int:
        return len(self._entries)
