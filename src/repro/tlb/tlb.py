"""Hardware-filled translation lookaside buffer.

The paper models a hardware-filled TLB (like the Ideal SPARC configuration of
Wells & Sohi) so that TLB refills do not inflate the number of serialising
instructions.  The reproduction does the same: a TLB miss costs a fixed
hardware-walk latency and never traps to software.

The TLB is also one of the fault-injection targets: a bit flip in a cached
entry can change the physical page or the permission bits, which is precisely
the failure mode the PAB is designed to catch for performance-mode cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.stats import StatSet
from repro.config.system import TlbConfig
from repro.errors import ProtectionError
from repro.tlb.page_table import PageFlags, PageTable

# Integer values of the permission bits consulted on every translation; doing
# the permission arithmetic on plain ints avoids two Flag.__and__ enum
# constructions per access.
_USER_WRITE = PageFlags.USER_WRITE.value
_PRIVILEGED_ONLY = PageFlags.PRIVILEGED_ONLY.value


@dataclass(slots=True)
class TlbEntry:
    """One cached translation."""

    virtual_page: int
    physical_page: int
    flags: PageFlags
    domain: int
    last_touch: int = 0


@dataclass(slots=True)
class TranslationResult:
    """Outcome of one TLB translation."""

    physical_address: int
    flags: PageFlags
    domain: int
    hit: bool
    latency: int
    #: True when the access violates the TLB's permission check (the core
    #: raises a trap); hardware faults may erroneously clear this.
    permitted: bool


class TranslationLookasideBuffer:
    """A small fully-associative, hardware-filled TLB."""

    def __init__(
        self,
        config: TlbConfig,
        page_table: PageTable,
        demap_listener: Optional[Callable[[int], None]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.page_table = page_table
        self._entries: Dict[int, TlbEntry] = {}
        self._touch = 0
        self._demap_listener = demap_listener
        self.stats = StatSet()
        # Hot-path binding: translate_raw bumps counters directly instead of
        # calling StatSet.add once or twice per translation.
        self._counts = self.stats.counters
        self._page_size = page_table.page_size
        self._fill_latency = config.fill_latency
        # Page sizes are powers of two in every configuration, which turns
        # the page/offset split into shifts and masks (identical results for
        # the non-negative addresses the workloads generate); keep the
        # division fallback for exotic page sizes.
        if self._page_size & (self._page_size - 1) == 0:
            self._page_shift: Optional[int] = self._page_size.bit_length() - 1
            self._page_mask = self._page_size - 1
        else:
            self._page_shift = None
            self._page_mask = 0

    @property
    def page_size(self) -> int:
        """Page size of the underlying page table."""
        return self.page_table.page_size

    def set_demap_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the physical page on each demap.

        The PAB registers itself here so that a TLB demap invalidates the
        corresponding PAB entry (Section 3.4.1: the PAB is kept coherent
        during a TLB demap operation).
        """
        self._demap_listener = listener

    # ------------------------------------------------------------------ #
    # Translation
    # ------------------------------------------------------------------ #

    def _evict_if_needed(self) -> None:
        if len(self._entries) < self.config.entries:
            return
        victim = min(self._entries.values(), key=lambda entry: entry.last_touch)
        del self._entries[victim.virtual_page]
        self.stats.add("evictions")

    def _fill(self, virtual_page: int) -> TlbEntry:
        pte = self.page_table.lookup_page(virtual_page)
        if pte is None:
            raise ProtectionError(f"TLB fill for unmapped page {virtual_page:#x}")
        self._evict_if_needed()
        self._touch += 1
        entry = TlbEntry(
            virtual_page=virtual_page,
            physical_page=pte.physical_page,
            flags=pte.flags,
            domain=pte.domain,
            last_touch=self._touch,
        )
        self._entries[virtual_page] = entry
        self.stats.add("fills")
        return entry

    def translate_raw(self, virtual_address: int, is_store: bool, privileged: bool):
        """Translate without building a :class:`TranslationResult`.

        Returns ``(physical_address, flags, domain, hit, latency,
        permitted)``; the behaviour and statistics are identical to
        :meth:`translate`, which wraps this.  The core timing model's hot
        loop consumes the tuple directly.
        """
        page_shift = self._page_shift
        if page_shift is not None:
            virtual_page = virtual_address >> page_shift
        else:
            virtual_page = virtual_address // self._page_size
        entry = self._entries.get(virtual_page)
        counts = self._counts
        if entry is None:
            hit = False
            latency = self._fill_latency
            entry = self._fill(virtual_page)
            counts["misses"] += 1
        else:
            hit = True
            latency = 0
            self._touch += 1
            entry.last_touch = self._touch
            counts["hits"] += 1

        flags = entry.flags
        permitted = True
        if not privileged:
            flag_bits = flags._value_
            if is_store and not (flag_bits & _USER_WRITE):
                permitted = False
            if flag_bits & _PRIVILEGED_ONLY:
                permitted = False
            if not permitted:
                counts["permission_denials"] += 1

        if page_shift is not None:
            physical = (entry.physical_page << page_shift) + (
                virtual_address & self._page_mask
            )
        else:
            page_size = self._page_size
            physical = entry.physical_page * page_size + virtual_address % page_size
        return (physical, flags, entry.domain, hit, latency, permitted)

    def translate(
        self, virtual_address: int, is_store: bool, privileged: bool
    ) -> TranslationResult:
        """Translate ``virtual_address`` and perform the permission check."""
        physical, flags, domain, hit, latency, permitted = self.translate_raw(
            virtual_address, is_store, privileged
        )
        return TranslationResult(
            physical_address=physical,
            flags=flags,
            domain=domain,
            hit=hit,
            latency=latency,
            permitted=permitted,
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def demap(self, virtual_page: int) -> bool:
        """Remove one translation; notifies the PAB via the demap listener."""
        entry = self._entries.pop(virtual_page, None)
        if entry is None:
            return False
        self.stats.add("demaps")
        if self._demap_listener is not None:
            self._demap_listener(entry.physical_page)
        return True

    def flush(self) -> int:
        """Drop every cached translation; returns the number dropped."""
        count = len(self._entries)
        if self._demap_listener is not None:
            for entry in list(self._entries.values()):
                self._demap_listener(entry.physical_page)
        self._entries.clear()
        self.stats.add("flushes")
        return count

    # ------------------------------------------------------------------ #
    # Fault-injection hooks
    # ------------------------------------------------------------------ #

    def resident_entries(self) -> List[TlbEntry]:
        """Every cached entry (fault injection picks a victim from these)."""
        return list(self._entries.values())

    def corrupt_entry(
        self,
        virtual_page: int,
        new_physical_page: Optional[int] = None,
        grant_user_write: bool = False,
    ) -> TlbEntry:
        """Model a hardware fault in the TLB array.

        Either redirects the translation to a different physical page or
        erroneously grants user write permission -- the two corruptions the
        paper's protection discussion singles out.
        """
        entry = self._entries.get(virtual_page)
        if entry is None:
            raise ProtectionError(f"cannot corrupt non-resident page {virtual_page:#x}")
        if new_physical_page is not None:
            entry.physical_page = new_physical_page
        if grant_user_write:
            entry.flags = entry.flags | PageFlags.USER_WRITE
            if entry.flags & PageFlags.PRIVILEGED_ONLY:
                entry.flags = entry.flags & ~PageFlags.PRIVILEGED_ONLY
        self.stats.add("injected_faults")
        return entry

    @property
    def occupancy(self) -> int:
        """Number of resident translations."""
        return len(self._entries)
