"""Probabilistic fault injector.

:class:`FaultInjector` implements the :class:`repro.cpu.timing.FaultHook`
protocol used by the core timing model, deciding per instruction whether a
fault strikes and what it does.  Rates are expressed per dynamic instruction
so that scaled-down simulations still observe faults; realistic rates would
be many orders of magnitude lower, but the mechanisms exercised are the same.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import DeterministicRng
from repro.common.stats import StatSet
from repro.cpu.timing import ExecutionMode
from repro.isa.registers import PRIVILEGED_REGISTERS
from repro.virt.vcpu import VirtualCPU


@dataclass(frozen=True)
class FaultRates:
    """Per-instruction probabilities of each modelled fault."""

    #: Probability that an instruction's result is corrupted on one core of a
    #: DMR pair (combinational-logic upset).
    execution_result: float = 0.0
    #: Probability that a store's physical address is redirected towards a
    #: reliable-only page while in performance mode (TLB / datapath fault).
    store_address: float = 0.0
    #: Probability per quantum that a privileged register is corrupted while
    #: a VCPU runs in performance mode.
    privileged_register: float = 0.0

    def any_active(self) -> bool:
        """True when at least one rate is non-zero."""
        return (
            self.execution_result > 0.0
            or self.store_address > 0.0
            or self.privileged_register > 0.0
        )


class FaultInjector:
    """Injects faults into the timing model and the functional structures."""

    def __init__(
        self,
        rates: FaultRates,
        rng: DeterministicRng,
        reliable_target_address: int | None = None,
    ) -> None:
        self.rates = rates
        self.rng = rng
        #: Physical address inside reliable memory that corrupted stores are
        #: redirected to (chosen by the machine builder when available).
        self.reliable_target_address = reliable_target_address
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # FaultHook protocol (called by the core timing model)
    # ------------------------------------------------------------------ #

    def perturb_store_address(
        self, core_id: int, mode: ExecutionMode, physical_address: int
    ) -> int:
        """Possibly redirect a performance-mode store to reliable memory."""
        if mode is ExecutionMode.DMR:
            # In DMR mode a corrupted address diverges the fingerprints and is
            # caught there; the address itself is not silently redirected.
            return physical_address
        if self.rates.store_address <= 0.0 or self.reliable_target_address is None:
            return physical_address
        if self.rng.chance(self.rates.store_address):
            self.stats.add("store_address_faults")
            return self.reliable_target_address
        return physical_address

    def corrupt_execution(self, core_id: int, mode: ExecutionMode) -> bool:
        """Whether this instruction's result is corrupted on ``core_id``."""
        if self.rates.execution_result <= 0.0:
            return False
        if self.rng.chance(self.rates.execution_result):
            self.stats.add("execution_faults")
            return True
        return False

    # ------------------------------------------------------------------ #
    # Quantum-level injections (called by the simulator)
    # ------------------------------------------------------------------ #

    def maybe_corrupt_privileged_register(self, vcpu: VirtualCPU) -> str | None:
        """Corrupt one privileged register of a performance-mode VCPU.

        Returns the register name when a fault was injected.  The corruption
        is only *detected* (and repaired) by the privileged-register
        verification of the next Enter-DMR transition.
        """
        if self.rates.privileged_register <= 0.0:
            return None
        if not self.rng.chance(self.rates.privileged_register):
            return None
        register = self.rng.choice(PRIVILEGED_REGISTERS)
        vcpu.arch_state.privileged[register] ^= 0x1
        self.stats.add("privileged_register_faults")
        return register

    @property
    def injected_fault_count(self) -> int:
        """Total faults injected so far."""
        return int(
            self.stats.get("store_address_faults")
            + self.stats.get("execution_faults")
            + self.stats.get("privileged_register_faults")
        )
