"""Fault taxonomy: types, sites, and specifications."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Mapping

from repro.errors import FaultInjectionError


class FaultType(Enum):
    """Temporal behaviour of a hardware fault."""

    #: A one-shot upset (e.g. a particle strike): affects a single operation.
    TRANSIENT = auto()
    #: Comes and goes over a window of operations (marginal circuits,
    #: temperature/voltage sensitivity).
    INTERMITTENT = auto()
    #: Permanent damage: affects every operation using the broken structure.
    PERMANENT = auto()


class FaultSite(Enum):
    """Hardware structure affected by a fault."""

    #: Combinational logic in the core datapath: corrupts an instruction's
    #: architectural result.
    EXECUTION_RESULT = auto()
    #: The TLB array or its checking logic: corrupts a cached translation's
    #: physical page or permission bits.
    TLB_ENTRY = auto()
    #: A privileged register written erroneously during unprivileged execution.
    PRIVILEGED_REGISTER = auto()
    #: The address path between the TLB and the L2: redirects a store to the
    #: wrong physical address.
    STORE_ADDRESS_PATH = auto()
    #: An unprotected L1 cache line (L2/L3 are assumed ECC-protected).
    L1_LINE = auto()


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject."""

    site: FaultSite
    fault_type: FaultType = FaultType.TRANSIENT
    #: Which core the fault strikes (None = any / chosen by the injector).
    core_id: int | None = None
    #: For address-path faults: the physical address the store is redirected
    #: to (typically inside a reliable application's memory).
    target_address: int | None = None
    #: For register faults: the privileged register name to corrupt.
    register_name: str | None = None
    #: For intermittent faults: how many operations the fault persists.
    duration_operations: int = 1

    def validate(self) -> "FaultSpec":
        """Check the specification is internally consistent."""
        if self.duration_operations < 1:
            raise FaultInjectionError("fault duration must be at least one operation")
        if self.site is FaultSite.STORE_ADDRESS_PATH and self.target_address is None:
            raise FaultInjectionError(
                "a store-address fault needs a target physical address"
            )
        if self.site is FaultSite.PRIVILEGED_REGISTER and self.register_name is None:
            raise FaultInjectionError("a register fault needs a register name")
        return self

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe description (enums by name, scalars as-is)."""
        return {
            "site": self.site.name,
            "fault_type": self.fault_type.name,
            "core_id": self.core_id,
            "target_address": self.target_address,
            "register_name": self.register_name,
            "duration_operations": self.duration_operations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a cached cell)."""
        return cls(
            site=FaultSite[str(payload["site"])],
            fault_type=FaultType[str(payload.get("fault_type", FaultType.TRANSIENT.name))],
            core_id=payload.get("core_id"),
            target_address=payload.get("target_address"),
            register_name=payload.get("register_name"),
            duration_operations=int(payload.get("duration_operations", 1)),
        )
