"""Classification of fault-injection outcomes and coverage reporting.

:class:`TrialRecord` and :class:`CoverageReport` round-trip through plain
JSON dictionaries (:meth:`~TrialRecord.to_dict` / ``from_dict``), which is
what lets the experiment engine cache fault-campaign cells on disk and
reassemble byte-identical coverage reports from any mix of fresh and cached
cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.faults.models import FaultSite, FaultSpec


class FaultOutcome(Enum):
    """What happened after a fault was injected."""

    #: The fault never became architecturally visible (overwritten, unused).
    MASKED = auto()
    #: DMR fingerprint comparison detected the corruption before retirement.
    DETECTED_DMR = auto()
    #: The PAB blocked the corrupted store before it reached the L2.
    DETECTED_PAB = auto()
    #: The Enter-DMR privileged-register verification caught the corruption.
    DETECTED_TRANSITION = auto()
    #: The TLB's own (fault-free) permission check caught the access.
    DETECTED_TLB = auto()
    #: The corruption reached state owned by the performance application
    #: itself -- tolerated by definition of performance mode.
    CONTAINED_TO_PERFORMANCE_DOMAIN = auto()
    #: Reliable-application or system state was silently corrupted.
    SILENT_CORRUPTION = auto()


#: Outcomes that count as "the system protected reliable state".
PROTECTED_OUTCOMES = frozenset(
    {
        FaultOutcome.MASKED,
        FaultOutcome.DETECTED_DMR,
        FaultOutcome.DETECTED_PAB,
        FaultOutcome.DETECTED_TRANSITION,
        FaultOutcome.DETECTED_TLB,
        FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN,
    }
)


@dataclass(frozen=True)
class TrialRecord:
    """One injected fault and its outcome."""

    spec: FaultSpec
    outcome: FaultOutcome
    configuration: str
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe description of the trial (the cell-result format)."""
        return {
            "spec": self.spec.to_dict(),
            "outcome": self.outcome.name,
            "configuration": self.configuration,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TrialRecord":
        """Rebuild a trial from :meth:`to_dict` output."""
        return cls(
            spec=FaultSpec.from_dict(payload["spec"]),
            outcome=FaultOutcome[str(payload["outcome"])],
            configuration=str(payload["configuration"]),
            detail=str(payload.get("detail", "")),
        )


@dataclass
class CoverageReport:
    """Aggregated outcomes of a fault-injection campaign."""

    configuration: str
    trials: List[TrialRecord] = field(default_factory=list)

    def record(self, trial: TrialRecord) -> None:
        """Append one trial."""
        self.trials.append(trial)

    def extend(self, trials: Iterable[TrialRecord]) -> None:
        """Append a batch of trials (e.g. one campaign cell's records)."""
        self.trials.extend(trials)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe description of the whole report."""
        return {
            "configuration": self.configuration,
            "trials": [trial.to_dict() for trial in self.trials],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CoverageReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            configuration=str(payload["configuration"]),
            trials=[TrialRecord.from_dict(t) for t in payload.get("trials", ())],
        )

    @property
    def total(self) -> int:
        """Number of injected faults."""
        return len(self.trials)

    def count(self, outcome: FaultOutcome) -> int:
        """Number of trials with the given outcome."""
        return sum(1 for trial in self.trials if trial.outcome is outcome)

    def outcome_histogram(self) -> Dict[FaultOutcome, int]:
        """Counts per outcome."""
        histogram: Dict[FaultOutcome, int] = {}
        for trial in self.trials:
            histogram[trial.outcome] = histogram.get(trial.outcome, 0) + 1
        return histogram

    @property
    def coverage(self) -> float:
        """Fraction of faults from which reliable state was protected."""
        if not self.trials:
            return 1.0
        protected = sum(1 for t in self.trials if t.outcome in PROTECTED_OUTCOMES)
        return protected / len(self.trials)

    @property
    def silent_corruption_rate(self) -> float:
        """Fraction of faults that silently corrupted reliable state."""
        if not self.trials:
            return 0.0
        return self.count(FaultOutcome.SILENT_CORRUPTION) / len(self.trials)

    def by_site(self) -> Dict[FaultSite, Tuple[int, int]]:
        """Per-site ``(protected, total)`` counts."""
        result: Dict[FaultSite, Tuple[int, int]] = {}
        for trial in self.trials:
            protected, total = result.get(trial.spec.site, (0, 0))
            total += 1
            if trial.outcome in PROTECTED_OUTCOMES:
                protected += 1
            result[trial.spec.site] = (protected, total)
        return result

    def summary_rows(self) -> Iterable[Tuple[str, int, float]]:
        """``(outcome, count, fraction)`` rows for reporting."""
        for outcome, count in sorted(
            self.outcome_histogram().items(), key=lambda item: item[0].name
        ):
            yield (outcome.name, count, count / max(1, self.total))
