"""Fault-campaign cells: the ``faults`` job kind of the experiment engine.

This module is the glue between the fault-injection campaign
(:mod:`repro.faults.campaign`) and the experiment engine
(:mod:`repro.sim.jobs` / :mod:`repro.sim.runner`):

* :func:`fault_campaign_jobs` enumerates one picklable
  :class:`~repro.sim.jobs.ExperimentJob` per ``(configuration, fault site,
  seed, trials chunk)`` cell;
* :func:`execute_fault_cell` (registered as the ``faults`` kind) runs one
  chunk of trials and returns the serialized
  :class:`~repro.faults.outcomes.TrialRecord` list as the cell's metrics;
* :func:`assemble_coverage_reports` folds any mix of fresh and cached cell
  results back into per-configuration
  :class:`~repro.faults.outcomes.CoverageReport` values, in enumeration
  order, so serial, parallel and warm-cache runs assemble byte-identical
  reports.

It lives apart from :mod:`repro.faults.campaign` (and is imported by the
``repro`` package *after* the simulator) so the campaign itself stays free
of engine imports; the import also doubles as the registration side effect
process-pool workers rely on.

At the experiment layer, the campaign is declared as the ``faults``
:class:`~repro.sim.specs.ExperimentSpec` (see :mod:`repro.sim.specs`),
whose ``--sweep-rates`` option turns the coverage comparison into the
fault-space sweep; both legacy entry points in
:mod:`repro.sim.experiments` are thin wrappers over that spec.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.presets import paper_system_config
from repro.config.system import SystemConfig
from repro.errors import ExperimentError, FaultInjectionError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    TRIAL_SITES,
    CampaignConfiguration,
    run_trial_chunk,
)
from repro.faults.outcomes import CoverageReport, TrialRecord
from repro.sim.jobs import ExperimentJob, register_job_kind

#: Trials grouped into one cell: small enough to fan a campaign out across
#: workers, large enough to amortise the per-cell campaign construction.
DEFAULT_TRIALS_PER_CELL = 25


def fault_campaign_jobs(
    trials_per_site: int = 50,
    configurations: Sequence[CampaignConfiguration] = DEFAULT_CONFIGURATIONS,
    seeds: Sequence[int] = (0,),
    fault_rate: float = 1.0,
    config: Optional[SystemConfig] = None,
    trials_per_cell: int = DEFAULT_TRIALS_PER_CELL,
) -> List[ExperimentJob]:
    """Every (configuration, fault-site, seed, trials-chunk) campaign cell.

    The chunking (``trials_per_cell``) shapes the cells but not the results:
    trial outcomes depend only on the trial's own identity, so re-chunking a
    sweep changes its cache keys, never its assembled report.
    """
    if trials_per_site < 1:
        raise FaultInjectionError("trials_per_site must be at least 1")
    if trials_per_cell < 1:
        raise FaultInjectionError("trials_per_cell must be at least 1")
    if not seeds:
        raise FaultInjectionError("a fault campaign needs at least one seed")
    # A duplicated seed would enumerate duplicate cells and double-count
    # their trials in the assembled reports.
    seeds = tuple(dict.fromkeys(seeds))
    resolved = (config or paper_system_config()).validate()
    jobs: List[ExperimentJob] = []
    for configuration in configurations:
        for site in TRIAL_SITES:
            for seed in seeds:
                for first_trial in range(0, trials_per_site, trials_per_cell):
                    trials = min(trials_per_cell, trials_per_site - first_trial)
                    jobs.append(
                        ExperimentJob(
                            kind="faults",
                            workload=site,
                            variant=configuration.name,
                            seed=seed,
                            config=resolved,
                            params=(
                                ("dmr_active", configuration.dmr_active),
                                ("fault_rate", float(fault_rate)),
                                ("first_trial", first_trial),
                                ("pab_active", configuration.pab_active),
                                ("transition_verification", configuration.transition_verification),
                                ("trials", trials),
                            ),
                        )
                    )
    return jobs


def _configuration_from_job(job: ExperimentJob) -> CampaignConfiguration:
    """Rebuild the campaign configuration a cell describes in its params."""
    return CampaignConfiguration(
        name=job.variant,
        dmr_active=bool(job.param("dmr_active")),
        pab_active=bool(job.param("pab_active")),
        transition_verification=bool(job.param("transition_verification", True)),
    )


@register_job_kind("faults")
def execute_fault_cell(job: ExperimentJob) -> Dict[str, object]:
    """Run one campaign cell and return its serialized trial records.

    Module-level (and registered at import time) so process-pool workers can
    execute fault cells exactly like simulation cells.
    """
    if job.config is None:
        raise ExperimentError(f"fault cell {job.label} needs a SystemConfig")
    records = run_trial_chunk(
        config=job.config,
        configuration=_configuration_from_job(job),
        site=job.workload,
        seed=job.seed,
        first_trial=int(job.param("first_trial", 0)),
        trials=int(job.param("trials", DEFAULT_TRIALS_PER_CELL)),
        fault_rate=float(job.param("fault_rate", 1.0)),
    )
    return {"trials": [record.to_dict() for record in records]}


def _cell_records(metrics: Mapping[str, object]) -> List[TrialRecord]:
    return [TrialRecord.from_dict(payload) for payload in metrics["trials"]]


def assemble_campaign_reports(
    jobs: Sequence[ExperimentJob],
    results: Mapping[ExperimentJob, Mapping[str, object]],
) -> Tuple[Dict[str, CoverageReport], Dict[Tuple[str, int], CoverageReport]]:
    """Both views of a campaign batch in one pass: merged and per-seed.

    Returns ``(by_configuration, by_configuration_and_seed)``.  Trials are
    concatenated in the order the cells were *enumerated*, never the order
    they executed, so serial, parallel and warm-cache runs of the same sweep
    produce byte-identical reports; each cell's records are deserialized
    once and shared between the two views.  The per-seed view feeds the
    multi-seed confidence intervals of
    :func:`repro.sim.experiments.run_fault_coverage_experiment`.
    """
    merged: Dict[str, CoverageReport] = {}
    per_seed: Dict[Tuple[str, int], CoverageReport] = {}
    for job in jobs:
        if job.kind != "faults":
            continue
        records = _cell_records(results[job])
        merged.setdefault(
            job.variant, CoverageReport(configuration=job.variant)
        ).extend(records)
        per_seed.setdefault(
            (job.variant, job.seed), CoverageReport(configuration=job.variant)
        ).extend(records)
    return merged, per_seed


def assemble_coverage_reports(
    jobs: Sequence[ExperimentJob],
    results: Mapping[ExperimentJob, Mapping[str, object]],
) -> Dict[str, CoverageReport]:
    """One merged coverage report per configuration, in enumeration order."""
    return assemble_campaign_reports(jobs, results)[0]


def assemble_seed_coverage_reports(
    jobs: Sequence[ExperimentJob],
    results: Mapping[ExperimentJob, Mapping[str, object]],
) -> Dict[Tuple[str, int], CoverageReport]:
    """Per-(configuration, seed) coverage reports, in enumeration order."""
    return assemble_campaign_reports(jobs, results)[1]
