"""Hardware fault modelling and injection.

The paper's motivation is that future chips will suffer transient,
intermittent and permanent faults from particle strikes, process variation
and wear-out.  This package models the fault scenarios the MMM design must
handle:

* corrupted execution on a DMR pair (caught by fingerprint comparison),
* a store from a performance-mode core whose physical address or permission
  was corrupted by a TLB / datapath fault (caught by the PAB, silent
  corruption without it),
* a privileged register corrupted while a core ran in performance mode
  (caught by the Enter-DMR verification step).

:class:`FaultInjector` plugs into the core timing model as its fault hook;
:class:`FaultInjectionCampaign` runs functional coverage trials over the real
protection components and produces the coverage report used by the
``bench_fault_coverage`` benchmark and the fault-injection example.
"""

from repro.faults.campaign import CampaignConfiguration, FaultInjectionCampaign
from repro.faults.injector import FaultInjector, FaultRates
from repro.faults.models import FaultSite, FaultSpec, FaultType
from repro.faults.outcomes import CoverageReport, FaultOutcome

__all__ = [
    "CampaignConfiguration",
    "FaultInjectionCampaign",
    "FaultInjector",
    "FaultRates",
    "FaultSite",
    "FaultSpec",
    "FaultType",
    "CoverageReport",
    "FaultOutcome",
]
