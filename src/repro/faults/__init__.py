"""Hardware fault modelling and injection.

The paper's motivation is that future chips will suffer transient,
intermittent and permanent faults from particle strikes, process variation
and wear-out.  This package models the fault scenarios the MMM design must
handle:

* corrupted execution on a DMR pair (caught by fingerprint comparison),
* a store from a performance-mode core whose physical address or permission
  was corrupted by a TLB / datapath fault (caught by the PAB, silent
  corruption without it),
* a privileged register corrupted while a core ran in performance mode
  (caught by the Enter-DMR verification step).

:class:`FaultInjector` plugs into the core timing model as its fault hook;
:class:`FaultInjectionCampaign` runs functional coverage trials over the real
protection components.  The campaign is cell-shaped: :mod:`repro.faults.cells`
registers a ``faults`` job kind with the experiment engine, so campaigns run
through :class:`repro.sim.runner.ExperimentRunner` -- parallel and cached --
exactly like the timing experiments (that module is imported by the top-level
``repro`` package rather than here, keeping this package free of engine
imports).
"""

from repro.faults.campaign import CampaignConfiguration, FaultInjectionCampaign
from repro.faults.injector import FaultInjector, FaultRates
from repro.faults.models import FaultSite, FaultSpec, FaultType
from repro.faults.outcomes import CoverageReport, FaultOutcome

__all__ = [
    "CampaignConfiguration",
    "FaultInjectionCampaign",
    "FaultInjector",
    "FaultRates",
    "FaultSite",
    "FaultSpec",
    "FaultType",
    "CoverageReport",
    "FaultOutcome",
]
