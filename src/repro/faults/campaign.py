"""Fault-injection coverage campaigns.

A campaign answers the qualitative protection questions of Sections 2.1 and
3.4 of the paper by injecting individual faults into the *real* protection
components and classifying what happens:

* execution faults on a DMR pair are detected by fingerprint comparison;
* store-address faults in performance mode are blocked by the PAB (and
  silently corrupt reliable memory when the PAB is disabled);
* privileged-register corruption in performance mode is caught by the
  Enter-DMR verification step;
* faults whose effect stays within the performance application's own memory
  are *contained* -- exactly the trade-off a performance application accepts.

The campaign is decomposed into independent *trials*: every trial is fully
identified by ``(configuration, fault site, seed, trial index)`` and draws
its randomness from an rng forked from exactly that identity
(:func:`trial_rng`), so its outcome does not depend on which other trials
ran, in which order, or in which process.  :func:`run_trial_chunk` is the
picklable unit of work the experiment engine executes -- see
:mod:`repro.faults.cells` for the ``faults`` job kind built on top --
while :meth:`FaultInjectionCampaign.run` remains the inline convenience
driver for small interactive studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.config.system import ReunionConfig, SystemConfig
from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.dmr.reunion import ReunionPair
from repro.errors import FaultInjectionError
from repro.faults.models import FaultSite, FaultSpec, FaultType
from repro.faults.outcomes import CoverageReport, FaultOutcome, TrialRecord
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.isa.registers import ArchitecturalState
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable


@dataclass(frozen=True)
class CampaignConfiguration:
    """Which protection mechanisms are active for a set of trials."""

    name: str
    dmr_active: bool
    pab_active: bool
    #: Whether Enter-DMR verification of privileged registers happens (it
    #: always does in an MMM; disabling it models a naive design that simply
    #: turns DMR off and on).
    transition_verification: bool = True


#: The three configurations the paper implicitly compares: a traditional DMR
#: machine, an MMM with its protection mechanisms, and a naive design that
#: turns DMR off without adding any protection.
DEFAULT_CONFIGURATIONS: Sequence[CampaignConfiguration] = (
    CampaignConfiguration(name="always-dmr", dmr_active=True, pab_active=False),
    CampaignConfiguration(name="mmm", dmr_active=False, pab_active=True),
    CampaignConfiguration(
        name="naive-mode-switch",
        dmr_active=False,
        pab_active=False,
        transition_verification=False,
    ),
)

#: Belt-and-braces design point: DMR *and* the PAB active at once (the MMM
#: hardware supports it; the paper argues it is redundant).  Part of the
#: extended fault-space sweep.
PAB_WITH_DMR = CampaignConfiguration(name="dmr-plus-pab", dmr_active=True, pab_active=True)

#: The extended configuration set swept by the fault-space studies.
SWEEP_CONFIGURATIONS: Sequence[CampaignConfiguration] = (
    *DEFAULT_CONFIGURATIONS,
    PAB_WITH_DMR,
)

#: The fault-site trial families of the campaign, in presentation order.
#: Each name keys one trial routine of :class:`FaultInjectionCampaign`.
TRIAL_SITES: Tuple[str, ...] = (
    "execution-result",
    "store-reliable",
    "store-performance",
    "privileged-register",
)


def trial_rng(seed: int, configuration: str, site: str, index: int) -> DeterministicRng:
    """The rng of one trial, derived from the trial's full identity.

    Forking from ``(seed, configuration, site, index)`` -- never from a
    shared sequential stream -- is what makes trial outcomes independent of
    how trials are grouped into cells and of the order cells execute in.
    """
    return DeterministicRng(seed).fork(f"fault-campaign/{configuration}/{site}/{index}")


class FaultInjectionCampaign:
    """Runs functional fault-injection trials against the protection stack."""

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.layout = AddressSpaceLayout(num_vms=2)
        self.pat = ProtectionAssistanceTable(
            physical_memory_bytes=self.layout.total_bytes,
            page_size=config.pab.page_bytes,
            backing_region=self.layout.pat_region(),
        )
        # VM 0 is the reliable guest: its memory (and the VMM structures) are
        # reliable-only; VM 1 is the performance guest.
        self.pat.mark_reliable_region(self.layout.vm_region(0))
        self.pat.mark_reliable_region(self.layout.scratchpad_region())
        self.pat.mark_reliable_region(self.layout.pat_region())

    # ------------------------------------------------------------------ #
    # Individual trials
    # ------------------------------------------------------------------ #

    def _reliable_address(self, rng: DeterministicRng) -> int:
        region = self.layout.user_region(0)
        return rng.sample_address(region.base, region.size, 64)

    def _performance_address(self, rng: DeterministicRng) -> int:
        region = self.layout.user_region(1)
        return rng.sample_address(region.base, region.size, 64)

    @staticmethod
    def _masked_by_rate(
        rng: DeterministicRng, fault_rate: float, spec: FaultSpec,
        configuration: CampaignConfiguration,
    ) -> TrialRecord | None:
        """A MASKED record when rate scaling decides the fault never strikes."""
        if fault_rate >= 1.0 or rng.chance(fault_rate):
            return None
        return TrialRecord(
            spec=spec,
            outcome=FaultOutcome.MASKED,
            configuration=configuration.name,
            detail="fault did not strike at this fault-rate scale",
        )

    def _trial_execution_fault(
        self,
        configuration: CampaignConfiguration,
        rng: DeterministicRng,
        fault_rate: float = 1.0,
    ) -> TrialRecord:
        spec = FaultSpec(site=FaultSite.EXECUTION_RESULT, fault_type=FaultType.TRANSIENT)
        masked = self._masked_by_rate(rng, fault_rate, spec, configuration)
        if masked is not None:
            return masked
        if not configuration.dmr_active:
            # Without redundancy the corrupted result lands in the performance
            # application's own state: tolerated, but only within its domain.
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN,
                configuration=configuration.name,
                detail="no redundancy: corruption confined to the faulty application",
            )
        pair = ReunionPair(
            vocal_core_id=0,
            mute_core_id=1,
            config=ReunionConfig(fingerprint_interval=4),
            network=FingerprintNetwork(self.config.interconnect),
        )
        outcome = FaultOutcome.MASKED
        for seq in range(8):
            instruction = Instruction(
                seq=seq,
                iclass=InstructionClass.ALU,
                privilege=PrivilegeLevel.USER,
                result=rng.randint(0, 0xFFFF),
            )
            check = pair.observe_commit(instruction, mute_corrupted=(seq == 2))
            if check is not None and not check.matched:
                outcome = FaultOutcome.DETECTED_DMR
                break
        return TrialRecord(
            spec=spec,
            outcome=outcome,
            configuration=configuration.name,
            detail="fingerprint comparison",
        )

    def _trial_store_address_fault(
        self,
        configuration: CampaignConfiguration,
        rng: DeterministicRng,
        fault_rate: float = 1.0,
    ) -> TrialRecord:
        target = self._reliable_address(rng)
        spec = FaultSpec(
            site=FaultSite.STORE_ADDRESS_PATH,
            fault_type=FaultType.TRANSIENT,
            target_address=target,
        ).validate()
        masked = self._masked_by_rate(rng, fault_rate, spec, configuration)
        if masked is not None:
            return masked
        if configuration.dmr_active:
            # The corrupted address differs between vocal and mute, so the
            # store's fingerprint mismatches before it can retire.
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="store address diverges the fingerprints",
            )
        if configuration.pab_active:
            pab = ProtectionAssistanceBuffer(
                config=self.config.pab, pat=self.pat, core_id=0, hierarchy=None
            )
            check = pab.check_store(target)
            outcome = (
                FaultOutcome.DETECTED_PAB if not check.allowed else FaultOutcome.SILENT_CORRUPTION
            )
            return TrialRecord(
                spec=spec,
                outcome=outcome,
                configuration=configuration.name,
                detail="PAB physical-address permission check",
            )
        return TrialRecord(
            spec=spec,
            outcome=FaultOutcome.SILENT_CORRUPTION,
            configuration=configuration.name,
            detail="no redundant permission check on the store path",
        )

    def _trial_store_within_domain(
        self,
        configuration: CampaignConfiguration,
        rng: DeterministicRng,
        fault_rate: float = 1.0,
    ) -> TrialRecord:
        target = self._performance_address(rng)
        spec = FaultSpec(
            site=FaultSite.STORE_ADDRESS_PATH,
            fault_type=FaultType.TRANSIENT,
            target_address=target,
        ).validate()
        masked = self._masked_by_rate(rng, fault_rate, spec, configuration)
        if masked is not None:
            return masked
        if configuration.dmr_active:
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="store address diverges the fingerprints",
            )
        if configuration.pab_active:
            pab = ProtectionAssistanceBuffer(
                config=self.config.pab, pat=self.pat, core_id=0, hierarchy=None
            )
            check = pab.check_store(target)
            outcome = (
                FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN
                if check.allowed
                else FaultOutcome.DETECTED_PAB
            )
            return TrialRecord(
                spec=spec,
                outcome=outcome,
                configuration=configuration.name,
                detail="corrupted store stays inside the performance VM's memory",
            )
        return TrialRecord(
            spec=spec,
            outcome=FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN,
            configuration=configuration.name,
            detail="corrupted store stays inside the performance VM's memory",
        )

    def _trial_privileged_register_fault(
        self,
        configuration: CampaignConfiguration,
        rng: DeterministicRng,
        fault_rate: float = 1.0,
    ) -> TrialRecord:
        spec = FaultSpec(
            site=FaultSite.PRIVILEGED_REGISTER,
            fault_type=FaultType.TRANSIENT,
            register_name="tba",
        ).validate()
        masked = self._masked_by_rate(rng, fault_rate, spec, configuration)
        if masked is not None:
            return masked
        if configuration.dmr_active:
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="register writes are fingerprinted",
            )
        live = ArchitecturalState()
        redundant = live.copy()
        live.privileged["tba"] ^= 0x40
        if configuration.transition_verification:
            ok, mismatches = live.verify_privileged_against(redundant)
            outcome = (
                FaultOutcome.DETECTED_TRANSITION if not ok else FaultOutcome.MASKED
            )
            detail = f"Enter-DMR verification mismatches: {', '.join(mismatches)}"
        else:
            outcome = FaultOutcome.SILENT_CORRUPTION
            detail = "no verification when re-entering DMR"
        return TrialRecord(
            spec=spec, outcome=outcome, configuration=configuration.name, detail=detail
        )

    # ------------------------------------------------------------------ #
    # Campaign driver
    # ------------------------------------------------------------------ #

    def run_trial(
        self,
        configuration: CampaignConfiguration,
        site: str,
        index: int,
        fault_rate: float = 1.0,
    ) -> TrialRecord:
        """Run the ``index``-th trial of one (configuration, site) family.

        Deterministic in ``(seed, configuration, site, index, fault_rate)``
        alone -- see :func:`trial_rng`.
        """
        try:
            handler = _TRIAL_HANDLERS[site]
        except KeyError:
            known = ", ".join(TRIAL_SITES)
            raise FaultInjectionError(
                f"unknown fault-trial site {site!r} (known sites: {known})"
            ) from None
        rng = trial_rng(self.seed, configuration.name, site, index)
        return handler(self, configuration, rng, fault_rate)

    def run(
        self,
        trials_per_site: int = 25,
        configurations: Sequence[CampaignConfiguration] = DEFAULT_CONFIGURATIONS,
        fault_rate: float = 1.0,
    ) -> List[CoverageReport]:
        """Run ``trials_per_site`` trials of every fault class per configuration."""
        if trials_per_site < 1:
            raise FaultInjectionError("trials_per_site must be at least 1")
        reports: List[CoverageReport] = []
        for configuration in configurations:
            report = CoverageReport(configuration=configuration.name)
            for site in TRIAL_SITES:
                for index in range(trials_per_site):
                    report.record(self.run_trial(configuration, site, index, fault_rate))
            reports.append(report)
        return reports


#: Trial routine per fault site; keys are the :data:`TRIAL_SITES` names.
_TRIAL_HANDLERS: Dict[str, object] = {
    "execution-result": FaultInjectionCampaign._trial_execution_fault,
    "store-reliable": FaultInjectionCampaign._trial_store_address_fault,
    "store-performance": FaultInjectionCampaign._trial_store_within_domain,
    "privileged-register": FaultInjectionCampaign._trial_privileged_register_fault,
}


def run_trial_chunk(
    config: SystemConfig,
    configuration: CampaignConfiguration,
    site: str,
    seed: int,
    first_trial: int,
    trials: int,
    fault_rate: float = 1.0,
) -> List[TrialRecord]:
    """Run one contiguous chunk of a (configuration, site, seed) trial family.

    This is the picklable unit of work behind the ``faults`` job kind: a
    process-pool worker rebuilds the (cheap) campaign context and runs trials
    ``first_trial .. first_trial + trials - 1``.  Because every trial's rng
    comes from :func:`trial_rng`, the concatenation of any chunking of the
    same family is identical to running it in one piece.
    """
    if trials < 1:
        raise FaultInjectionError("a trial chunk needs at least one trial")
    campaign = FaultInjectionCampaign(config=config, seed=seed)
    return [
        campaign.run_trial(configuration, site, index, fault_rate)
        for index in range(first_trial, first_trial + trials)
    ]
