"""Fault-injection coverage campaigns.

A campaign answers the qualitative protection questions of Sections 2.1 and
3.4 of the paper by injecting individual faults into the *real* protection
components and classifying what happens:

* execution faults on a DMR pair are detected by fingerprint comparison;
* store-address faults in performance mode are blocked by the PAB (and
  silently corrupt reliable memory when the PAB is disabled);
* privileged-register corruption in performance mode is caught by the
  Enter-DMR verification step;
* faults whose effect stays within the performance application's own memory
  are *contained* -- exactly the trade-off a performance application accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.config.system import ReunionConfig, SystemConfig
from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.dmr.reunion import ReunionPair
from repro.errors import FaultInjectionError
from repro.faults.models import FaultSite, FaultSpec, FaultType
from repro.faults.outcomes import CoverageReport, FaultOutcome, TrialRecord
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.isa.registers import ArchitecturalState
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable


@dataclass(frozen=True)
class CampaignConfiguration:
    """Which protection mechanisms are active for a set of trials."""

    name: str
    dmr_active: bool
    pab_active: bool
    #: Whether Enter-DMR verification of privileged registers happens (it
    #: always does in an MMM; disabling it models a naive design that simply
    #: turns DMR off and on).
    transition_verification: bool = True


#: The three configurations the paper implicitly compares: a traditional DMR
#: machine, an MMM with its protection mechanisms, and a naive design that
#: turns DMR off without adding any protection.
DEFAULT_CONFIGURATIONS: Sequence[CampaignConfiguration] = (
    CampaignConfiguration(name="always-dmr", dmr_active=True, pab_active=False),
    CampaignConfiguration(name="mmm", dmr_active=False, pab_active=True),
    CampaignConfiguration(
        name="naive-mode-switch",
        dmr_active=False,
        pab_active=False,
        transition_verification=False,
    ),
)


class FaultInjectionCampaign:
    """Runs functional fault-injection trials against the protection stack."""

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = DeterministicRng(seed).fork("fault-campaign")
        self.layout = AddressSpaceLayout(num_vms=2)
        self.pat = ProtectionAssistanceTable(
            physical_memory_bytes=self.layout.total_bytes,
            page_size=config.pab.page_bytes,
            backing_region=self.layout.pat_region(),
        )
        # VM 0 is the reliable guest: its memory (and the VMM structures) are
        # reliable-only; VM 1 is the performance guest.
        self.pat.mark_reliable_region(self.layout.vm_region(0))
        self.pat.mark_reliable_region(self.layout.scratchpad_region())
        self.pat.mark_reliable_region(self.layout.pat_region())

    # ------------------------------------------------------------------ #
    # Individual trials
    # ------------------------------------------------------------------ #

    def _reliable_address(self) -> int:
        region = self.layout.user_region(0)
        return self.rng.sample_address(region.base, region.size, 64)

    def _performance_address(self) -> int:
        region = self.layout.user_region(1)
        return self.rng.sample_address(region.base, region.size, 64)

    def _trial_execution_fault(
        self, configuration: CampaignConfiguration
    ) -> TrialRecord:
        spec = FaultSpec(site=FaultSite.EXECUTION_RESULT, fault_type=FaultType.TRANSIENT)
        if not configuration.dmr_active:
            # Without redundancy the corrupted result lands in the performance
            # application's own state: tolerated, but only within its domain.
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN,
                configuration=configuration.name,
                detail="no redundancy: corruption confined to the faulty application",
            )
        pair = ReunionPair(
            vocal_core_id=0,
            mute_core_id=1,
            config=ReunionConfig(fingerprint_interval=4),
            network=FingerprintNetwork(self.config.interconnect),
        )
        outcome = FaultOutcome.MASKED
        for seq in range(8):
            instruction = Instruction(
                seq=seq,
                iclass=InstructionClass.ALU,
                privilege=PrivilegeLevel.USER,
                result=self.rng.randint(0, 0xFFFF),
            )
            check = pair.observe_commit(instruction, mute_corrupted=(seq == 2))
            if check is not None and not check.matched:
                outcome = FaultOutcome.DETECTED_DMR
                break
        return TrialRecord(
            spec=spec,
            outcome=outcome,
            configuration=configuration.name,
            detail="fingerprint comparison",
        )

    def _trial_store_address_fault(
        self, configuration: CampaignConfiguration
    ) -> TrialRecord:
        target = self._reliable_address()
        spec = FaultSpec(
            site=FaultSite.STORE_ADDRESS_PATH,
            fault_type=FaultType.TRANSIENT,
            target_address=target,
        ).validate()
        if configuration.dmr_active:
            # The corrupted address differs between vocal and mute, so the
            # store's fingerprint mismatches before it can retire.
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="store address diverges the fingerprints",
            )
        if configuration.pab_active:
            pab = ProtectionAssistanceBuffer(
                config=self.config.pab, pat=self.pat, core_id=0, hierarchy=None
            )
            check = pab.check_store(target)
            outcome = (
                FaultOutcome.DETECTED_PAB if not check.allowed else FaultOutcome.SILENT_CORRUPTION
            )
            return TrialRecord(
                spec=spec,
                outcome=outcome,
                configuration=configuration.name,
                detail="PAB physical-address permission check",
            )
        return TrialRecord(
            spec=spec,
            outcome=FaultOutcome.SILENT_CORRUPTION,
            configuration=configuration.name,
            detail="no redundant permission check on the store path",
        )

    def _trial_store_within_domain(
        self, configuration: CampaignConfiguration
    ) -> TrialRecord:
        target = self._performance_address()
        spec = FaultSpec(
            site=FaultSite.STORE_ADDRESS_PATH,
            fault_type=FaultType.TRANSIENT,
            target_address=target,
        ).validate()
        if configuration.dmr_active:
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="store address diverges the fingerprints",
            )
        if configuration.pab_active:
            pab = ProtectionAssistanceBuffer(
                config=self.config.pab, pat=self.pat, core_id=0, hierarchy=None
            )
            check = pab.check_store(target)
            outcome = (
                FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN
                if check.allowed
                else FaultOutcome.DETECTED_PAB
            )
            return TrialRecord(
                spec=spec,
                outcome=outcome,
                configuration=configuration.name,
                detail="corrupted store stays inside the performance VM's memory",
            )
        return TrialRecord(
            spec=spec,
            outcome=FaultOutcome.CONTAINED_TO_PERFORMANCE_DOMAIN,
            configuration=configuration.name,
            detail="corrupted store stays inside the performance VM's memory",
        )

    def _trial_privileged_register_fault(
        self, configuration: CampaignConfiguration
    ) -> TrialRecord:
        spec = FaultSpec(
            site=FaultSite.PRIVILEGED_REGISTER,
            fault_type=FaultType.TRANSIENT,
            register_name="tba",
        ).validate()
        if configuration.dmr_active:
            return TrialRecord(
                spec=spec,
                outcome=FaultOutcome.DETECTED_DMR,
                configuration=configuration.name,
                detail="register writes are fingerprinted",
            )
        live = ArchitecturalState()
        redundant = live.copy()
        live.privileged["tba"] ^= 0x40
        if configuration.transition_verification:
            ok, mismatches = live.verify_privileged_against(redundant)
            outcome = (
                FaultOutcome.DETECTED_TRANSITION if not ok else FaultOutcome.MASKED
            )
            detail = f"Enter-DMR verification mismatches: {', '.join(mismatches)}"
        else:
            outcome = FaultOutcome.SILENT_CORRUPTION
            detail = "no verification when re-entering DMR"
        return TrialRecord(
            spec=spec, outcome=outcome, configuration=configuration.name, detail=detail
        )

    # ------------------------------------------------------------------ #
    # Campaign driver
    # ------------------------------------------------------------------ #

    def run(
        self,
        trials_per_site: int = 25,
        configurations: Sequence[CampaignConfiguration] = DEFAULT_CONFIGURATIONS,
    ) -> List[CoverageReport]:
        """Run ``trials_per_site`` trials of every fault class per configuration."""
        if trials_per_site < 1:
            raise FaultInjectionError("trials_per_site must be at least 1")
        reports: List[CoverageReport] = []
        for configuration in configurations:
            report = CoverageReport(configuration=configuration.name)
            for _ in range(trials_per_site):
                report.record(self._trial_execution_fault(configuration))
                report.record(self._trial_store_address_fault(configuration))
                report.record(self._trial_store_within_domain(configuration))
                report.record(self._trial_privileged_register_fault(configuration))
            reports.append(report)
        return reports
