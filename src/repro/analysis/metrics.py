"""Small metric helpers shared by the experiment and reporting code."""

from __future__ import annotations

from typing import Dict, Mapping


def normalize_to(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalise every value to the value stored under ``baseline_key``.

    A zero or missing baseline yields zeros (rather than raising), which keeps
    report generation robust against degenerate runs.
    """
    baseline = values.get(baseline_key, 0.0)
    if baseline == 0.0:
        return {key: 0.0 for key in values}
    return {key: value / baseline for key, value in values.items()}


def speedup(new_value: float, old_value: float) -> float:
    """``new / old`` (0 when the old value is 0)."""
    if old_value == 0.0:
        return 0.0
    return new_value / old_value


def percent_change(new_value: float, old_value: float) -> float:
    """Percentage change from ``old_value`` to ``new_value``."""
    if old_value == 0.0:
        return 0.0
    return (new_value - old_value) / old_value * 100.0
