"""Result analysis helpers: normalisation, speedups, text tables."""

from repro.analysis.metrics import normalize_to, percent_change, speedup
from repro.analysis.tables import TextTable, format_series

__all__ = ["normalize_to", "percent_change", "speedup", "TextTable", "format_series"]
