"""Plain-text table rendering for experiment reports.

The benchmark harness prints each reproduced table and figure as a text
table whose rows mirror the paper's presentation (workloads down the side,
configurations across the top), so a reader can compare shapes side by side
with the published figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class TextTable:
    """A very small fixed-width text table builder."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are converted with :func:`format_cell`."""
        self.rows.append([format_cell(cell) for cell in cells])

    def render(self) -> str:
        """Render the table as aligned plain text."""
        columns = len(self.headers)
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index in range(columns):
                cell = row[index] if index < len(row) else ""
                widths[index] = max(widths[index], len(cell))

        def render_row(cells: Sequence[str]) -> str:
            padded = [
                (cells[i] if i < len(cells) else "").ljust(widths[i])
                for i in range(columns)
            ]
            return "  ".join(padded).rstrip()

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(render_row(self.headers))
        lines.append(render_row(["-" * w for w in widths]))
        for row in self.rows:
            lines.append(render_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_cell(value: object) -> str:
    """Format one table cell (floats get three significant decimals)."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name: str, values: Sequence[float]) -> str:
    """One-line rendering of a named series of numbers."""
    rendered = ", ".join(f"{value:.3f}" for value in values)
    return f"{name}: [{rendered}]"
