"""Command-line interface for the reproduction.

Two groups of subcommands:

* ``run`` simulates one mixed-mode system (a consolidated server or a
  single-OS desktop) and prints a per-VM summary -- the quickest way to see
  the MMM trade-off without writing any code;
* one subcommand per paper artefact (``figure5``, ``figure6``, ``pab``,
  ``table1``, ``table2``, ``single-os``, ``ablation``, ``faults``, and
  ``report`` / ``run-all`` for everything at once) regenerates that table or
  figure and prints it in the paper's layout.

The experiment subcommands (including ``faults``) share the
experiment-engine flags: ``--jobs N`` fans the experiment cells out over N
worker processes, ``--seeds`` widens the seed sweep, and results are cached
on disk (``.repro-cache`` by default) so a re-run only executes changed
cells; ``--no-cache`` forces fresh runs and ``--cache-dir`` relocates the
cache.  Every engine-backed invocation ends with a one-line cache
effectiveness summary (``N executed, M from cache, K memoized``).

Examples::

    python -m repro list-workloads
    python -m repro run --policy mmm-tp --reliable oltp --performance apache
    python -m repro figure6 --workloads apache oltp --jobs 4
    python -m repro faults --trials 200 --seeds 8 --jobs 4
    python -m repro run-all --quick --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.tables import TextTable
from repro.config.presets import evaluation_system_config
from repro.core.mmm import MixedModeMulticore
from repro.core.policies import available_policies
from repro.faults.campaign import DEFAULT_CONFIGURATIONS, SWEEP_CONFIGURATIONS
from repro.sim.experiments import (
    FAULT_DEFAULT_SEEDS,
    ExperimentSettings,
    run_dmr_overhead_experiment,
    run_fault_coverage_experiment,
    run_fault_rate_sweep,
    run_mixed_mode_experiment,
    run_pab_latency_study,
    run_single_os_overhead_study,
    run_switch_frequency_experiment,
    run_switch_overhead_experiment,
    run_window_ablation,
)
from repro.sim.reporting import full_report
from repro.sim.runner import ExperimentRunner
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES, PAPER_WORKLOADS


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings()
    if args.workloads:
        settings = settings.with_workloads(tuple(args.workloads))
    if getattr(args, "seeds", None):
        settings = settings.with_seeds(args.seeds)
    return settings


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return number


def _parse_seeds(value: str) -> tuple:
    """``--seeds`` accepts a comma list ('0,1,2') or a count N (seeds 0..N-1)."""
    try:
        if "," in value:
            # dict.fromkeys: drop duplicate seeds while keeping their order
            # (a duplicated seed would double-count its cells in a sweep).
            seeds = tuple(
                dict.fromkeys(int(part) for part in value.split(",") if part.strip())
            )
        else:
            seeds = tuple(range(int(value)))
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated seed list like '0,1,2' or a count like '5'"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError("needs at least one seed")
    return seeds


def _parse_rates(value: str) -> tuple:
    """``--sweep-rates`` accepts a comma list of fault-rate scales in (0, 1]."""
    try:
        rates = tuple(float(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of rates like '0.25,0.5,1.0'"
        ) from None
    # `not (0 < rate <= 1)` rather than `rate <= 0 or rate > 1`: the former
    # also rejects NaN, for which every comparison is False.
    if not rates or any(not (0.0 < rate <= 1.0) for rate in rates):
        raise argparse.ArgumentTypeError("rates must lie in (0, 1]")
    return rates


def _runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the experiment runner the engine flags describe."""
    return ExperimentRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _print_engine_stats(runner: ExperimentRunner) -> None:
    """One-line account of how the batch was served (cache effectiveness)."""
    print()
    print(f"experiment engine: {runner.stats.summary()} (workers: {runner.jobs})")


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment-engine flags shared by every cell-shaped subcommand."""
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="run experiment cells across N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: .repro-cache, or $REPRO_CACHE_DIR)",
    )


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=PAPER_WORKLOAD_NAMES,
        help="restrict the experiment to these workloads (default: all six)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the heavily scaled quick settings (smoke test, not meaningful numbers)",
    )
    parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=None,
        metavar="LIST|N",
        help=(
            "seeds to sweep: a comma list ('0,1,2') or a count N meaning seeds "
            "0..N-1 (default: the settings' single seed; cells are cached, so "
            "larger sweeps only pay for the new seeds)"
        ),
    )
    _add_engine_arguments(parser)


def _cmd_list_workloads(_: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "description", "user phase (instr)", "OS phase (instr)"],
        title="Calibrated workload profiles (see repro.workloads.profiles)",
    )
    for name, profile in PAPER_WORKLOADS.items():
        table.add_row(
            [
                name,
                profile.description,
                profile.mean_user_phase_instructions,
                profile.mean_os_phase_instructions,
            ]
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = evaluation_system_config(
        capacity_scale=args.capacity_scale, timeslice_cycles=args.timeslice
    )
    common = dict(
        reliable_workload=args.reliable,
        performance_workload=args.performance,
        config=config,
        seed=args.seed,
        phase_scale=args.phase_scale,
        footprint_scale=1.0 / args.capacity_scale,
    )
    if args.single_os:
        system = MixedModeMulticore.single_os_desktop(
            vcpus_per_application=args.reliable_vcpus, **common
        )
    else:
        system = MixedModeMulticore.consolidated_server(
            policy=args.policy, reliable_vcpus=args.reliable_vcpus, **common
        )
    result = system.run(total_cycles=args.cycles, warmup_cycles=args.warmup)

    table = TextTable(
        ["guest VM", "VCPUs", "per-thread user IPC", "throughput", "mode switches"],
        title=f"policy={system.policy_name}  cycles={result.total_cycles}",
    )
    for vm in result.vm_results:
        table.add_row(
            [
                vm.name,
                vm.num_vcpus,
                vm.average_user_ipc(result.total_cycles),
                vm.throughput(result.total_cycles),
                sum(v.mode_switches for v in vm.vcpus),
            ]
        )
    print(table.render())
    print(f"overall throughput: {result.overall_throughput():.4f} user instructions/cycle")
    print(f"mode transitions:   {result.transitions}")
    print(f"protection events:  {result.violation_counts or 'none'}")
    print(f"silent corruptions: {result.silent_corruptions()}")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    result = run_dmr_overhead_experiment(_settings_from_args(args), runner=runner)
    print(result.format_ipc_table())
    print()
    print(result.format_throughput_table())
    _print_engine_stats(runner)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    result = run_mixed_mode_experiment(_settings_from_args(args), runner=runner)
    print(result.format_ipc_table())
    print()
    print(result.format_throughput_table())
    _print_engine_stats(runner)
    return 0


def _cmd_pab(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    result = run_pab_latency_study(_settings_from_args(args), runner=runner)
    print(result.format_table())
    _print_engine_stats(runner)
    return 0


def _table_seed(args: argparse.Namespace) -> int:
    """Tables 1/2 and single-os measure one seed; ``--seeds`` uses its first.

    Says so out loud when a sweep was requested, rather than silently
    dropping seeds.
    """
    if not args.seeds:
        return 0
    if len(args.seeds) > 1:
        print(
            f"note: this measurement uses a single seed; taking seed "
            f"{args.seeds[0]} from --seeds"
        )
    return args.seeds[0]


def _cmd_table1(args: argparse.Namespace) -> int:
    workloads = tuple(args.workloads) if args.workloads else PAPER_WORKLOAD_NAMES
    runner = _runner_from_args(args)
    result = run_switch_overhead_experiment(
        workloads=workloads, seed=_table_seed(args), runner=runner
    )
    print(result.format_table())
    _print_engine_stats(runner)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    workloads = tuple(args.workloads) if args.workloads else PAPER_WORKLOAD_NAMES
    runner = _runner_from_args(args)
    result = run_switch_frequency_experiment(
        workloads=workloads, seed=_table_seed(args), runner=runner
    )
    print(result.format_table())
    _print_engine_stats(runner)
    return 0


def _cmd_single_os(args: argparse.Namespace) -> int:
    workloads = tuple(args.workloads) if args.workloads else PAPER_WORKLOAD_NAMES
    runner = _runner_from_args(args)
    result = run_single_os_overhead_study(
        workloads=workloads, seed=_table_seed(args), runner=runner
    )
    print(result.format_table())
    _print_engine_stats(runner)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    if not args.workloads:
        settings = settings.with_workloads(settings.workloads[:2])
    runner = _runner_from_args(args)
    print(run_window_ablation(settings, runner=runner).format_table())
    _print_engine_stats(runner)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    seeds = args.seeds or FAULT_DEFAULT_SEEDS
    configurations = (
        SWEEP_CONFIGURATIONS if args.all_configurations else DEFAULT_CONFIGURATIONS
    )
    if args.sweep_rates:
        result = run_fault_rate_sweep(
            fault_rates=args.sweep_rates,
            trials_per_site=args.trials,
            configurations=configurations,
            seeds=seeds,
            runner=runner,
        )
    else:
        result = run_fault_coverage_experiment(
            trials_per_site=args.trials,
            configurations=configurations,
            seeds=seeds,
            runner=runner,
        )
    print(result.format_table())
    _print_engine_stats(runner)
    return 0


def _print_full_report(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    print(
        full_report(
            _settings_from_args(args),
            include_switching=not args.skip_switching,
            include_ablation=not args.skip_ablation,
            include_faults=not args.skip_faults,
            runner=runner,
        )
    )
    _print_engine_stats(runner)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    return _print_full_report(args)


def _cmd_run_all(args: argparse.Namespace) -> int:
    return _print_full_report(args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mixed-Mode Multicore Reliability' (ASPLOS 2009).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list-workloads", help="list the calibrated workload profiles"
    )
    list_parser.set_defaults(handler=_cmd_list_workloads)

    run_parser = subparsers.add_parser(
        "run", help="simulate one mixed-mode system and print a per-VM summary"
    )
    run_parser.add_argument("--policy", default="mmm-tp", choices=available_policies())
    run_parser.add_argument("--reliable", default="oltp", choices=PAPER_WORKLOAD_NAMES)
    run_parser.add_argument("--performance", default="apache", choices=PAPER_WORKLOAD_NAMES)
    run_parser.add_argument("--reliable-vcpus", type=int, default=8)
    run_parser.add_argument("--cycles", type=int, default=60_000)
    run_parser.add_argument("--warmup", type=int, default=15_000)
    run_parser.add_argument("--timeslice", type=int, default=25_000)
    run_parser.add_argument("--capacity-scale", type=int, default=8)
    run_parser.add_argument("--phase-scale", type=float, default=0.01)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--single-os",
        action="store_true",
        help="simulate the single-OS desktop (MMM-IPC, fine-grained switching) instead",
    )
    run_parser.set_defaults(handler=_cmd_run)

    for name, handler, help_text in (
        ("figure5", _cmd_figure5, "Figure 5: DMR overhead (IPC and throughput)"),
        ("figure6", _cmd_figure6, "Figure 6: mixed-mode performance"),
        ("pab", _cmd_pab, "Section 5.2: serial vs parallel PAB lookup"),
        ("table1", _cmd_table1, "Table 1: mode-switch overheads"),
        ("table2", _cmd_table2, "Table 2: cycles between mode switches"),
        ("single-os", _cmd_single_os, "Section 5.3: single-OS switching overhead"),
        ("ablation", _cmd_ablation, "window-size / consistency ablation"),
        ("report", _cmd_report, "run every experiment and print one report"),
        ("run-all", _cmd_run_all, "run every experiment as one (parallel) job batch"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_experiment_arguments(sub)
        if name in ("report", "run-all"):
            sub.add_argument("--skip-switching", action="store_true")
            sub.add_argument("--skip-ablation", action="store_true")
            sub.add_argument("--skip-faults", action="store_true")
        sub.set_defaults(handler=handler)

    faults_parser = subparsers.add_parser(
        "faults",
        help="fault-injection coverage campaign (cell-shaped: parallel and cached)",
    )
    faults_parser.add_argument(
        "--trials",
        type=_positive_int,
        default=50,
        metavar="N",
        help="trials per (configuration, fault site, seed) (default: 50)",
    )
    faults_parser.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=None,
        metavar="LIST|N",
        help=(
            "seeds to sweep, as a comma list or a count "
            f"(default: {len(FAULT_DEFAULT_SEEDS)} seeds for confidence intervals)"
        ),
    )
    faults_parser.add_argument(
        "--sweep-rates",
        type=_parse_rates,
        default=None,
        metavar="R1,R2,...",
        help="sweep these fault-rate scales and print coverage vs rate",
    )
    faults_parser.add_argument(
        "--all-configurations",
        action="store_true",
        help="include the extended configurations (e.g. dmr-plus-pab)",
    )
    _add_engine_arguments(faults_parser)
    faults_parser.set_defaults(handler=_cmd_faults)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
