"""Command-line interface for the reproduction.

Three groups of subcommands:

* ``run`` simulates one mixed-mode system (a consolidated server or a
  single-OS desktop) and prints a per-VM summary -- the quickest way to see
  the MMM trade-off without writing any code;
* one subcommand per *registered experiment spec*: the parsers are generated
  from the central ``EXPERIMENTS`` registry of :mod:`repro.sim.specs`
  (``figure5``, ``figure6``, ``pab``, ``table1``, ``table2``, ``single-os``,
  ``ablation``, ``faults``, ... -- run ``repro list`` to see them all), plus
  ``report`` / ``run-all`` which run every registered spec as one batch.
  Registering a new spec adds its subcommand, flags and help text with no
  CLI change;
* results plumbing: every spec's results are a schema-driven
  ``ResultFrame`` (:mod:`repro.sim.frames`); ``run-all --json`` writes the
  canonical multi-frame document (settings embedded), ``repro export
  --format csv|json`` exports frames for downstream analysis, and ``repro
  diff <baseline.json>`` re-runs a baseline's evaluation and exits non-zero
  on metric drift beyond ``--rtol``/``--atol`` -- the regression check CI
  runs against a committed baseline;
* housekeeping: ``list`` prints the spec registry, ``list-workloads`` the
  calibrated workload profiles, and ``cache stats`` / ``cache clear`` /
  ``cache prune`` / ``cache compact`` / ``cache migrate`` inspect and
  maintain the packed on-disk result cache (:mod:`repro.sim.store`):
  stats includes the schema-version breakdown after a format bump,
  compact sheds superseded records, migrate packs a legacy per-file
  cache into segments;
* distributed runs: ``serve`` starts the HTTP coordinator, ``worker``
  attaches a pull-based worker to it, and any experiment subcommand
  distributes its cells with ``--backend distributed --coordinator URL``
  (see :mod:`repro.sim.distributed`).

The experiment subcommands share the experiment-engine flags: ``--jobs N``
fans the experiment cells out over N workers, ``--backend`` picks the
execution backend (``serial``, ``process``, ``thread``), ``--seeds`` widens
or narrows the seed sweep, and results are cached on disk (``.repro-cache``
by default) so a re-run only executes changed cells; ``--no-cache`` forces
fresh runs and ``--cache-dir`` relocates the cache.  ``--json`` renders the
result as the spec's uniform JSON document instead of tables.  Every
engine-backed invocation ends with a one-line cache effectiveness summary
(``N executed, M from cache, K memoized``).

Examples::

    python -m repro list
    python -m repro run --policy mmm-tp --reliable oltp --performance apache
    python -m repro figure6 --workloads apache oltp --jobs 4
    python -m repro faults --trials 200 --seeds 8 --jobs 4
    python -m repro run-all --quick --jobs 4 --backend thread
    python -m repro run-all --quick --json > baseline.json
    python -m repro diff baseline.json
    python -m repro export --format csv --experiments figure5
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.tables import TextTable
from repro.config.presets import evaluation_system_config
from repro.core.mmm import MixedModeMulticore
from repro.core.policies import available_policies
from repro.errors import ExperimentError
from repro.sim.experiments import ExperimentSettings, collect_frames, run_all_experiments
from repro.sim.settings import FIDELITY_TIERS
from repro.sim.frames import (
    diff_documents,
    document_frames,
    frames_document,
    frames_to_csv,
)
from repro.sim.jobs import registered_job_kinds
from repro.sim.reporting import full_report
from repro.sim.runner import (
    CacheKindStats,
    ExperimentRunner,
    default_cache_dir,
    make_result_cache,
    registered_backends,
)
from repro.sim.specs import (
    EXPERIMENTS,
    ExperimentSpec,
    jsonify,
    parse_positive_int,
    parse_seed_list,
)
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES, PAPER_WORKLOADS


def _runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the experiment runner the engine flags describe."""
    backend: object = args.backend
    coordinator = getattr(args, "coordinator", None)
    if coordinator and backend in (None, "distributed"):
        # --coordinator implies the distributed backend and pins its URL
        # without going through the environment variable.
        from repro.sim.distributed.backend import DistributedBackend

        backend = DistributedBackend(coordinator)
    return ExperimentRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        backend=backend,
    )


def _print_engine_stats(runner: ExperimentRunner, to_stderr: bool = False) -> None:
    """Account for how the batch was served (cache effectiveness, timing).

    Two lines: the human-readable summary (stderr when stdout carries a
    machine-readable document, e.g. ``--json``/``export``/``diff``), and a
    machine-readable ``engine-stats:`` JSON line that always goes to stderr
    so scripts and benchmarks can scrape per-phase timing from any
    invocation without disturbing redirected output.
    """
    stream = sys.stderr if to_stderr else sys.stdout
    print(file=stream)
    print(
        f"experiment engine: {runner.stats.summary()} "
        f"(backend: {runner.backend.name}, workers: {runner.jobs})",
        file=stream,
    )
    stats = runner.stats.to_dict()
    stats["backend"] = runner.backend.name
    stats["workers"] = runner.jobs
    print(f"engine-stats: {json.dumps(stats, sort_keys=True)}", file=sys.stderr)


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment-engine flags shared by every cell-shaped subcommand."""
    parser.add_argument(
        "--jobs",
        type=parse_positive_int,
        default=1,
        metavar="N",
        help="run experiment cells across N workers (default: 1, serial)",
    )
    parser.add_argument(
        "--backend",
        choices=registered_backends(),
        default=None,
        help=(
            "execution backend for pending cells (default: serial for "
            "--jobs 1, otherwise process)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: .repro-cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help=(
            "coordinator URL for the distributed backend (implies "
            "--backend distributed; start one with `repro serve`)"
        ),
    )


def _add_sweep_arguments(
    parser: argparse.ArgumentParser,
    spec: Optional[ExperimentSpec] = None,
    json_flag: bool = True,
) -> None:
    """The settings-sweep flags (from spec metadata when one is given)."""
    if spec is None or spec.takes_workloads:
        parser.add_argument(
            "--workloads",
            nargs="+",
            choices=PAPER_WORKLOAD_NAMES,
            help="restrict the experiment to these workloads (default: all six)",
        )
        parser.add_argument(
            "--quick",
            action="store_true",
            help="use the heavily scaled quick settings (smoke test, not meaningful numbers)",
        )
    parser.add_argument(
        "--seeds",
        type=parse_seed_list,
        default=None,
        metavar="LIST|N",
        help=(
            "seeds to sweep: a comma list ('0,1,2') or a count N meaning seeds "
            "0..N-1 (default: the settings' ten-seed sweep; cells are cached, "
            "so larger sweeps only pay for the new seeds)"
        ),
    )
    parser.add_argument(
        "--fidelity",
        choices=FIDELITY_TIERS,
        default=None,
        help=(
            "timing-model fidelity tier: 'accurate' simulates every "
            "instruction, 'fast' extrapolates from calibrated cycle-accurate "
            "probes (default: accurate; cache keys are tier-distinct)"
        ),
    )
    _add_engine_arguments(parser)
    # --json prints the machine-readable document: the spec's uniform
    # document on a spec subcommand, the canonical multi-frame results
    # document (the `repro diff` baseline format) on report/run-all.
    # `repro export` has --format instead, so it opts out.
    if json_flag:
        parser.add_argument(
            "--json",
            action="store_true",
            help=(
                "print the spec's uniform JSON document instead of tables"
                if spec is not None
                else "print the canonical results document (a `repro diff` baseline)"
            ),
        )


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    settings = (
        ExperimentSettings.quick()
        if getattr(args, "quick", False)
        else ExperimentSettings()
    )
    if getattr(args, "workloads", None):
        settings = settings.with_workloads(tuple(args.workloads))
    if getattr(args, "seeds", None):
        settings = settings.with_seeds(args.seeds)
    if getattr(args, "fidelity", None):
        settings = settings.with_fidelity(args.fidelity)
    return settings


def _announce_dropped_seeds(spec: ExperimentSpec, args: argparse.Namespace) -> None:
    """Single-seed measurements say so out loud when a sweep was requested,
    rather than silently dropping seeds."""
    seeds = getattr(args, "seeds", None)
    if not spec.multi_seed and seeds and len(seeds) > 1:
        print(
            f"note: this measurement uses a single seed; taking seed "
            f"{seeds[0]} from --seeds"
        )


def _run_spec(spec: ExperimentSpec, args: argparse.Namespace) -> int:
    """Generic handler behind every registry-generated subcommand."""
    runner = _runner_from_args(args)
    _announce_dropped_seeds(spec, args)
    options = {option.name: getattr(args, option.name) for option in spec.options}
    request = spec.request(
        _settings_from_args(args),
        explicit_workloads=bool(getattr(args, "workloads", None)),
        **options,
    )
    result = spec.run(runner=runner, request=request)
    if args.json:
        document = spec.to_json(result)
        document["grid"] = jsonify(
            {name: list(values) for name, values in spec.grid(request).axes}
        )
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(spec.to_table(result))
    _print_engine_stats(runner, to_stderr=args.json)
    return 0


def _run_fuzz(spec: ExperimentSpec, args: argparse.Namespace) -> int:
    """The fuzz campaign's handler: replay one case, or run and gate.

    Unlike the generic spec handler, a campaign that breached any oracle
    exits 1 after printing the shrunk reproductions, and ``--reproduce``
    replays a single case verbosely (exit 2 on an unknown case id).
    """
    from repro.sim.fuzz.cells import reproduce_case

    settings = _settings_from_args(args)
    if getattr(args, "reproduce", None):
        try:
            return reproduce_case(
                settings, args.reproduce, planted=bool(getattr(args, "planted", False))
            )
        except ExperimentError as error:
            print(f"cannot reproduce: {error}", file=sys.stderr)
            return 2
    runner = _runner_from_args(args)
    options = {option.name: getattr(args, option.name) for option in spec.options}
    request = spec.request(
        settings,
        explicit_workloads=bool(getattr(args, "workloads", None)),
        **options,
    )
    run = spec.execute(runner=runner, request=request)
    frame = run.result()
    if args.json:
        document = spec.to_json(frame)
        document["grid"] = jsonify(
            {name: list(values) for name, values in spec.grid(request).axes}
        )
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(spec.to_table(frame))
    failing = [
        (job, metrics)
        for job, metrics in run.results.items()
        if int(metrics.get("violations", 0) or 0)
    ]
    stream = sys.stderr if args.json else sys.stdout
    for job, metrics in failing:
        print(
            f"\ncase {metrics.get('case_id', job.label)}: "
            f"{metrics.get('violations')} violation(s), shrunk in "
            f"{metrics.get('shrink_steps')} step(s):",
            file=stream,
        )
        print(str(metrics.get("repro", "")), file=stream)
    _print_engine_stats(runner, to_stderr=args.json)
    return 1 if failing else 0


def _add_spec_subcommands(subparsers) -> None:
    """One subcommand per registered spec, generated from its metadata."""
    for spec in EXPERIMENTS.values():
        sub = subparsers.add_parser(spec.name, help=spec.title)
        _add_sweep_arguments(sub, spec)
        for option in spec.options:
            if option.is_flag:
                sub.add_argument(option.flag, action="store_true", help=option.help)
            else:
                sub.add_argument(
                    option.flag,
                    type=option.parse,
                    default=option.default,
                    metavar=option.metavar,
                    help=option.help,
                )
        # The fuzz campaign gates on violations and replays cases, which
        # the generic handler has no notion of.
        handler = _run_fuzz if spec.name == "fuzz" else _run_spec
        sub.set_defaults(
            handler=lambda args, spec=spec, handler=handler: handler(spec, args)
        )


def _cmd_list(args: argparse.Namespace) -> int:
    """Print the experiment-spec registry (names, families, grids)."""
    if getattr(args, "json", False):
        document = {
            "registered_job_kinds": list(registered_job_kinds()),
            "specs": [
                {
                    "name": name,
                    "title": spec.title,
                    "family": spec.family,
                    "axes": {
                        axis: [jsonify(value) for value in values]
                        for axis, values in spec.grid(spec.request()).axes
                    },
                    "cells": spec.grid(spec.request()).size(),
                    "job_kinds": sorted(
                        {job.kind for job in spec.enumerate_jobs(spec.request())}
                    ),
                    "options": [option.flag for option in spec.options],
                    "run_all_group": spec.run_all_group,
                }
                for name, spec in EXPERIMENTS.items()
            ],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    table = TextTable(
        ["experiment", "family", "grid", "cells", "description"],
        title="Registered experiment specs (run with `repro <experiment>`)",
    )
    for name, spec in EXPERIMENTS.items():
        grid = spec.grid(spec.request())
        table.add_row(
            [name, spec.family, grid.describe(), grid.size(), spec.title]
        )
    print(table.render())
    return 0


def _cmd_list_workloads(_: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "description", "user phase (instr)", "OS phase (instr)"],
        title="Calibrated workload profiles (see repro.workloads.profiles)",
    )
    for name, profile in PAPER_WORKLOADS.items():
        table.add_row(
            [
                name,
                profile.description,
                profile.mean_user_phase_instructions,
                profile.mean_os_phase_instructions,
            ]
        )
    print(table.render())
    return 0


def _human_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB"):
        if value < 1024:
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache = make_result_cache(args.cache_dir)
    stats = cache.stats()
    if not stats:
        print(f"result cache at {cache.directory}: no entries")
        return 0
    table = TextTable(
        ["kind", "entries", "live", "disk", "segs", "versions"],
        title=f"Result cache at {cache.directory}",
    )
    total = CacheKindStats(kind="total")
    for kind_stats in stats.values():
        table.add_row(
            [
                kind_stats.kind,
                kind_stats.entries,
                _human_bytes(kind_stats.bytes),
                _human_bytes(kind_stats.disk_bytes),
                kind_stats.segments,
                kind_stats.version_summary(),
            ]
        )
        total.entries += kind_stats.entries
        total.bytes += kind_stats.bytes
        total.disk_bytes += kind_stats.disk_bytes
        total.segments += kind_stats.segments
        for version, count in kind_stats.versions.items():
            total.versions[version] = total.versions.get(version, 0) + count
    table.add_row(
        [
            total.kind,
            total.entries,
            _human_bytes(total.bytes),
            _human_bytes(total.disk_bytes),
            total.segments,
            total.version_summary(),
        ]
    )
    print(table.render())
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    cache = make_result_cache(args.cache_dir)
    removed = cache.clear(kind=args.kind)
    what = f"{args.kind!r} entries" if args.kind else "entries"
    print(f"removed {removed} cached {what} from {cache.directory}")
    return 0


def _cmd_cache_migrate(args: argparse.Namespace) -> int:
    """Pack legacy per-file cache entries into the segment store."""
    cache = make_result_cache(args.cache_dir, layout="packed")
    result = cache.migrate()
    print(f"result cache at {cache.directory}: {result.summary()}")
    return 0


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    """Rewrite segments to live records only, reclaiming dead bytes."""
    cache = make_result_cache(args.cache_dir, layout="packed")
    result = cache.compact()
    print(f"result cache at {cache.directory}: {result.summary()}")
    return 0


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
_SIZE_UNITS = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_duration(value: str) -> float:
    """``--max-age`` values: plain seconds or a suffixed ``30m``/``12h``/``7d``."""
    text = value.strip().lower()
    unit = 1.0
    if text and text[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * unit
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a duration like '3600', '30m', '12h' or '7d'"
        ) from None
    if seconds < 0:
        raise argparse.ArgumentTypeError("durations must be non-negative")
    return seconds


def parse_size(value: str) -> int:
    """``--max-bytes`` values: plain bytes or a suffixed ``512k``/``100m``/``2g``."""
    text = value.strip().lower()
    unit = 1
    if text and text[-1] in _SIZE_UNITS:
        unit = _SIZE_UNITS[text[-1]]
        text = text[:-1]
    try:
        size = int(float(text) * unit)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a size like '1048576', '512k', '100m' or '2g'"
        ) from None
    if size < 0:
        raise argparse.ArgumentTypeError("sizes must be non-negative")
    return size


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    """Garbage-collect the result cache by age and/or total size."""
    if args.max_age is None and args.max_bytes is None:
        print(
            "cache prune needs at least one limit: --max-age and/or --max-bytes",
            file=sys.stderr,
        )
        return 2
    cache = make_result_cache(args.cache_dir)
    result = cache.prune(max_age_seconds=args.max_age, max_bytes=args.max_bytes)
    print(f"result cache at {cache.directory}: {result.summary()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the distributed coordinator daemon until interrupted."""
    from repro.sim.distributed.coordinator import CoordinatorServer

    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    server = CoordinatorServer(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        lease_seconds=args.lease_seconds,
        quiet=not args.verbose,
    )
    print(f"coordinator listening on {server.url}", flush=True)
    print(
        f"  shared cache: {cache_dir if cache_dir is not None else 'disabled'}; "
        f"lease timeout: {args.lease_seconds:g}s",
        flush=True,
    )
    print(
        f"  attach workers with: repro worker --coordinator {server.url}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one pull-based worker loop against a coordinator."""
    from repro.sim.distributed.worker import run_worker

    stats = run_worker(
        args.coordinator,
        jobs=args.jobs,
        worker_id=args.id,
        poll_seconds=args.poll,
        max_batches=args.max_batches,
        max_idle_seconds=args.max_idle,
        announce=lambda message: print(message, file=sys.stderr, flush=True),
    )
    print(f"worker finished: {stats.summary()}", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = evaluation_system_config(
        capacity_scale=args.capacity_scale, timeslice_cycles=args.timeslice
    )
    common = dict(
        reliable_workload=args.reliable,
        performance_workload=args.performance,
        config=config,
        seed=args.seed,
        phase_scale=args.phase_scale,
        footprint_scale=1.0 / args.capacity_scale,
    )
    if args.single_os:
        system = MixedModeMulticore.single_os_desktop(
            vcpus_per_application=args.reliable_vcpus, **common
        )
    else:
        system = MixedModeMulticore.consolidated_server(
            policy=args.policy, reliable_vcpus=args.reliable_vcpus, **common
        )
    result = system.run(total_cycles=args.cycles, warmup_cycles=args.warmup)

    table = TextTable(
        ["guest VM", "VCPUs", "per-thread user IPC", "throughput", "mode switches"],
        title=f"policy={system.policy_name}  cycles={result.total_cycles}",
    )
    for vm in result.vm_results:
        table.add_row(
            [
                vm.name,
                vm.num_vcpus,
                vm.average_user_ipc(result.total_cycles),
                vm.throughput(result.total_cycles),
                sum(v.mode_switches for v in vm.vcpus),
            ]
        )
    print(table.render())
    print(f"overall throughput: {result.overall_throughput():.4f} user instructions/cycle")
    print(f"mode transitions:   {result.transitions}")
    print(f"protection events:  {result.violation_counts or 'none'}")
    print(f"silent corruptions: {result.silent_corruptions()}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    if args.json:
        # The canonical results document: frames keyed by experiment, with
        # the settings embedded so `repro diff <file>` can re-run it.
        everything = run_all_experiments(
            _settings_from_args(args),
            runner=runner,
            include_switching=not args.skip_switching,
            include_ablation=not args.skip_ablation,
            include_faults=not args.skip_faults,
        )
        print(json.dumps(everything.to_document(), indent=2, sort_keys=True))
        _print_engine_stats(runner, to_stderr=True)
        return 0
    print(
        full_report(
            _settings_from_args(args),
            include_switching=not args.skip_switching,
            include_ablation=not args.skip_ablation,
            include_faults=not args.skip_faults,
            runner=runner,
        )
    )
    _print_engine_stats(runner)
    return 0


def _frame_names_from_args(args: argparse.Namespace) -> list:
    """The spec names an export covers: ``--experiments`` or the run-all set."""
    if getattr(args, "experiments", None):
        unknown = [name for name in args.experiments if name not in EXPERIMENTS]
        if unknown:
            raise ExperimentError(
                f"unknown experiments {unknown} (see `repro list`)"
            )
        return list(args.experiments)
    skipped = {
        "switching": getattr(args, "skip_switching", False),
        "ablation": getattr(args, "skip_ablation", False),
        "faults": getattr(args, "skip_faults", False),
    }
    return [
        name
        for name, spec in EXPERIMENTS.items()
        if spec.schema is not None
        and not (spec.run_all_group is not None and skipped.get(spec.run_all_group))
    ]


def _write_output(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _cmd_export(args: argparse.Namespace) -> int:
    """Run the selected experiments (warm-cache friendly) and export frames."""
    runner = _runner_from_args(args)
    try:
        names = _frame_names_from_args(args)
        frames = collect_frames(_settings_from_args(args), names, runner=runner)
    except ExperimentError as error:
        print(f"cannot export: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        from dataclasses import asdict

        document = frames_document(frames, settings=asdict(_settings_from_args(args)))
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    elif len(frames) == 1:
        # A single experiment exports in its schema's wide CSV shape...
        (frame,) = frames.values()
        text = frame.to_csv()
    else:
        # ...while a mixed export uses the uniform tidy (long) shape.
        text = frames_to_csv(frames)
    _write_output(text, args.output)
    _print_engine_stats(runner, to_stderr=True)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Re-run a baseline document's evaluation and compare within tolerance."""
    runner = _runner_from_args(args)
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read baseline {args.baseline!r}: {error}", file=sys.stderr)
        return 2
    try:
        baseline = document_frames(payload)
    except ExperimentError as error:
        print(f"not a results document: {error}", file=sys.stderr)
        return 2

    try:
        settings = ExperimentSettings.from_dict(payload.get("settings") or {})
    except (ExperimentError, TypeError, ValueError) as error:
        print(f"baseline has malformed settings: {error}", file=sys.stderr)
        return 2
    if getattr(args, "fidelity", None):
        settings = settings.with_fidelity(args.fidelity)

    # A cross-tier comparison can only report drift that is really a tier
    # mismatch (the fast tier is calibrated, not exact), so it is refused
    # up front -- before paying for the re-run -- with the mismatch named.
    mismatched_tiers = sorted(
        {
            frame.fidelity
            for frame in baseline.values()
            if frame.fidelity is not None and frame.fidelity != settings.fidelity
        }
    )
    if mismatched_tiers:
        print(
            f"fidelity tier mismatch: baseline {args.baseline!r} was simulated "
            f"at tier {', '.join(repr(t) for t in mismatched_tiers)}, but this "
            f"diff would re-run at tier {settings.fidelity!r}; cross-tier "
            "numbers differ by design. Re-run with "
            f"--fidelity {mismatched_tiers[0]} or record a new baseline at the "
            "requested tier.",
            file=sys.stderr,
        )
        return 2

    # The baseline's frames define the comparison scope (partial baselines,
    # e.g. from `repro export --experiments`, are legitimate).  A baseline
    # frame this build can no longer reproduce -- its spec was deleted,
    # renamed or lost its schema -- is therefore *drift*, not a skip:
    # silently passing would let a vanished experiment through the gate.
    from repro.sim.frames import FrameDrift

    drifts = []
    known = []
    for name in baseline:
        spec = EXPERIMENTS.get(name)
        if spec is None or spec.schema is None:
            drifts.append(
                FrameDrift(
                    frame=name,
                    kind="missing-frame",
                    detail="baseline experiment has no registered schema spec",
                )
            )
        else:
            known.append(name)
    try:
        current = collect_frames(settings, known, runner=runner)
    except (ExperimentError, TypeError, ValueError) as error:
        print(f"cannot re-run baseline evaluation: {error}", file=sys.stderr)
        return 2
    drifts += diff_documents(
        {name: baseline[name] for name in known},
        current,
        rel_tol=args.rtol,
        abs_tol=args.atol,
    )
    if drifts:
        print(f"results drifted from {args.baseline} ({len(drifts)} difference(s)):")
        for drift in drifts:
            print(f"  {drift}")
        _print_engine_stats(runner, to_stderr=True)
        return 1
    print(
        f"results match {args.baseline} "
        f"({len(known)} frame(s), rtol={args.rtol:g}, atol={args.atol:g})"
    )
    _print_engine_stats(runner, to_stderr=True)
    return 0


def _load_document(path: str):
    """Read one results document's frames, or None after printing why not."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read document {path!r}: {error}", file=sys.stderr)
        return None
    try:
        return document_frames(payload)
    except ExperimentError as error:
        print(f"{path!r} is not a results document: {error}", file=sys.stderr)
        return None


def _cmd_compare(args: argparse.Namespace) -> int:
    """Compare two results documents frame by frame, without re-running."""
    baseline = _load_document(args.baseline)
    current = _load_document(args.current)
    if baseline is None or current is None:
        return 2
    drifts = diff_documents(
        baseline, current, rel_tol=args.rtol, abs_tol=args.atol
    )
    by_frame: dict = {}
    for drift in drifts:
        by_frame.setdefault(drift.frame, []).append(drift)
    table = TextTable(
        ["experiment", "status", "differences"],
        title=f"compare: {args.baseline} vs {args.current}",
    )
    for name in sorted(set(baseline) | set(current)):
        frame_drifts = by_frame.get(name, [])
        status = "differs" if frame_drifts else "match"
        table.add_row([name, status, len(frame_drifts)])
    print(table.render())
    if drifts:
        print(f"{len(drifts)} difference(s):")
        for drift in drifts:
            print(f"  {drift}")
        return 1
    print(
        f"documents match ({len(baseline)} frame(s), "
        f"rtol={args.rtol:g}, atol={args.atol:g})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser.

    The experiment subcommands are *generated* from the ``EXPERIMENTS``
    registry -- adding a spec adds its subcommand; nothing here names an
    individual experiment.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Mixed-Mode Multicore Reliability' (ASPLOS 2009).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list the registered experiment specs"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (spec names, axes, job kinds)",
    )
    list_parser.set_defaults(handler=_cmd_list)

    list_workloads_parser = subparsers.add_parser(
        "list-workloads", help="list the calibrated workload profiles"
    )
    list_workloads_parser.set_defaults(handler=_cmd_list_workloads)

    run_parser = subparsers.add_parser(
        "run", help="simulate one mixed-mode system and print a per-VM summary"
    )
    run_parser.add_argument("--policy", default="mmm-tp", choices=available_policies())
    run_parser.add_argument("--reliable", default="oltp", choices=PAPER_WORKLOAD_NAMES)
    run_parser.add_argument("--performance", default="apache", choices=PAPER_WORKLOAD_NAMES)
    run_parser.add_argument("--reliable-vcpus", type=int, default=8)
    run_parser.add_argument("--cycles", type=int, default=60_000)
    run_parser.add_argument("--warmup", type=int, default=15_000)
    run_parser.add_argument("--timeslice", type=int, default=25_000)
    run_parser.add_argument("--capacity-scale", type=int, default=8)
    run_parser.add_argument("--phase-scale", type=float, default=0.01)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--single-os",
        action="store_true",
        help="simulate the single-OS desktop (MMM-IPC, fine-grained switching) instead",
    )
    run_parser.set_defaults(handler=_cmd_run)

    _add_spec_subcommands(subparsers)

    for name, help_text in (
        ("report", "run every registered experiment and print one report"),
        ("run-all", "run every registered experiment as one (parallel) job batch"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_sweep_arguments(sub)
        sub.add_argument("--skip-switching", action="store_true")
        sub.add_argument("--skip-ablation", action="store_true")
        sub.add_argument("--skip-faults", action="store_true")
        sub.set_defaults(handler=_cmd_report)

    export_parser = subparsers.add_parser(
        "export",
        help="run experiments and export their result frames as CSV or JSON",
    )
    _add_sweep_arguments(export_parser, json_flag=False)
    export_parser.add_argument(
        "--format",
        choices=("csv", "json"),
        default="json",
        help="export format (default: json, the canonical frames document)",
    )
    export_parser.add_argument(
        "--experiments",
        nargs="+",
        metavar="NAME",
        help="restrict the export to these registered specs (default: the run-all set)",
    )
    export_parser.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="write to FILE instead of stdout",
    )
    export_parser.add_argument("--skip-switching", action="store_true")
    export_parser.add_argument("--skip-ablation", action="store_true")
    export_parser.add_argument("--skip-faults", action="store_true")
    export_parser.set_defaults(handler=_cmd_export)

    diff_parser = subparsers.add_parser(
        "diff",
        help=(
            "re-run a baseline results document (repro run-all --json) and "
            "fail on metric drift"
        ),
    )
    diff_parser.add_argument(
        "baseline",
        help="baseline document written by `repro run-all --json` or `repro export`",
    )
    diff_parser.add_argument(
        "--rtol",
        type=float,
        default=1e-9,
        metavar="R",
        help="relative tolerance for numeric comparisons (default: 1e-9)",
    )
    diff_parser.add_argument(
        "--atol",
        type=float,
        default=1e-12,
        metavar="A",
        help="absolute tolerance for numeric comparisons (default: 1e-12)",
    )
    diff_parser.add_argument(
        "--fidelity",
        choices=FIDELITY_TIERS,
        default=None,
        help=(
            "re-run the baseline at this fidelity tier instead of the tier "
            "recorded in its settings (a tier mismatch with the baseline's "
            "frames is refused with exit code 2)"
        ),
    )
    _add_engine_arguments(diff_parser)
    diff_parser.set_defaults(handler=_cmd_diff)

    compare_parser = subparsers.add_parser(
        "compare",
        help=(
            "compare two results documents frame by frame (no re-run; "
            "exit 1 on drift)"
        ),
    )
    compare_parser.add_argument(
        "baseline", help="baseline document (`repro run-all --json` output)"
    )
    compare_parser.add_argument(
        "current", help="document to compare against the baseline"
    )
    compare_parser.add_argument(
        "--rtol",
        type=float,
        default=1e-9,
        metavar="R",
        help="relative tolerance for numeric comparisons (default: 1e-9)",
    )
    compare_parser.add_argument(
        "--atol",
        type=float,
        default=1e-12,
        metavar="A",
        help="absolute tolerance for numeric comparisons (default: 1e-12)",
    )
    compare_parser.set_defaults(handler=_cmd_compare)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune the on-disk result cache"
    )
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_subparsers.add_parser(
        "stats", help="per-kind entry counts and sizes"
    )
    cache_stats.set_defaults(handler=_cmd_cache_stats)
    cache_clear = cache_subparsers.add_parser(
        "clear",
        help=(
            "delete cached results (e.g. entries left stale by a code change); "
            "--kind prunes one job kind only"
        ),
    )
    cache_clear.add_argument(
        "--kind",
        default=None,
        metavar="KIND",
        help="only clear this job kind's entries (default: everything)",
    )
    cache_clear.set_defaults(handler=_cmd_cache_clear)
    cache_prune = cache_subparsers.add_parser(
        "prune",
        help=(
            "garbage-collect the cache: drop entries older than --max-age, "
            "then evict oldest-first until the cache fits --max-bytes"
        ),
    )
    cache_prune.add_argument(
        "--max-age",
        type=parse_duration,
        default=None,
        metavar="AGE",
        help="drop entries older than AGE (seconds, or suffixed: 30m, 12h, 7d)",
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=parse_size,
        default=None,
        metavar="SIZE",
        help="evict oldest entries until the cache fits SIZE (bytes, or 512k/100m/2g)",
    )
    cache_prune.set_defaults(handler=_cmd_cache_prune)
    cache_migrate = cache_subparsers.add_parser(
        "migrate",
        help=(
            "pack legacy one-file-per-cell entries into the segment store "
            "(invalid/stale-schema files are dropped; they load as misses)"
        ),
    )
    cache_migrate.set_defaults(handler=_cmd_cache_migrate)
    cache_compact = cache_subparsers.add_parser(
        "compact",
        help=(
            "rewrite segment files to live records only, reclaiming the "
            "dead bytes left by superseded and pruned entries"
        ),
    )
    cache_compact.set_defaults(handler=_cmd_cache_compact)
    for sub in (cache_stats, cache_clear, cache_prune, cache_migrate, cache_compact):
        sub.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result cache location (default: .repro-cache, or $REPRO_CACHE_DIR)",
        )

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the distributed coordinator: queues submitted cells, leases "
            "them to workers, and serves whole runs over its HTTP API"
        ),
    )
    serve_parser.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8765,
        metavar="PORT",
        help="listening port (default: 8765; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        metavar="S",
        help="re-queue a leased chunk after S seconds without a report (default: 60)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "shared result cache backing the coordinator's dedupe "
            "(default: .repro-cache, or $REPRO_CACHE_DIR)"
        ),
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="serve without an on-disk cache (results live in memory only)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    worker_parser = subparsers.add_parser(
        "worker",
        help=(
            "run a pull-based worker: lease cell chunks from a coordinator, "
            "execute them locally, report metrics back"
        ),
    )
    worker_parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator URL (printed by `repro serve`)",
    )
    worker_parser.add_argument(
        "--jobs",
        type=parse_positive_int,
        default=1,
        metavar="N",
        help="local parallelism: execute each leased chunk across N processes",
    )
    worker_parser.add_argument(
        "--id",
        default=None,
        metavar="NAME",
        help="worker identity in coordinator stats (default: host:pid)",
    )
    worker_parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="seconds between lease polls when the queue is empty (default: 0.5)",
    )
    worker_parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="S",
        help="exit after the queue stays empty for S seconds (default: poll forever)",
    )
    worker_parser.add_argument(
        "--max-batches",
        type=parse_positive_int,
        default=None,
        metavar="N",
        help="exit after completing N leases (mostly for tests)",
    )
    worker_parser.set_defaults(handler=_cmd_worker)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Long-lived subcommands (serve, worker) stop with Ctrl-C.
        return 130


if __name__ == "__main__":
    sys.exit(main())
