"""Memory-protection assistance structures (the paper's PAT and PAB).

When a core runs in performance (non-DMR) mode, a hardware fault can defeat
the TLB's permission check and let a store reach a physical page owned by
reliable software or by the system software.  The paper's defence is a second,
independent permission check on the store's *physical* address:

* the **Protection Assistance Table (PAT)** is a memory-resident bitmap with
  one bit per physical page -- ``1`` means the page may only be written by
  software running in reliable mode;
* the **Protection Assistance Buffer (PAB)** is a small per-core cache of PAT
  entries consulted for every store write-through from a performance-mode
  core, either in parallel with or serially before the L2 access.

A mismatch between the TLB's decision and the PAB's decision raises an
exception to system software *before* the store can corrupt anything.
"""

from repro.protection.pab import PabCheckResult, ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable
from repro.protection.violations import ProtectionViolation, ViolationKind, ViolationLog

__all__ = [
    "PabCheckResult",
    "ProtectionAssistanceBuffer",
    "ProtectionAssistanceTable",
    "ProtectionViolation",
    "ViolationKind",
    "ViolationLog",
]
