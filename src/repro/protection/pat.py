"""Protection Assistance Table (PAT).

The PAT is similar to an inverse page table: one bit per physical page, where
``1`` means the page may only be written by applications executing in
reliable mode and ``0`` means any software (including performance-mode
applications) may potentially write it.  At one bit per 8 KB page the PAT
costs 16 MB per TB of physical memory and lives in ordinary cacheable memory;
system software maintains it alongside its page table.
"""

from __future__ import annotations

from typing import Iterator, Set

from repro.common.addresses import DEFAULT_PAGE_SIZE, Region
from repro.common.stats import StatSet
from repro.errors import ProtectionError


class ProtectionAssistanceTable:
    """The memory-resident reliable-page bitmap maintained by system software."""

    def __init__(
        self,
        physical_memory_bytes: int,
        page_size: int = DEFAULT_PAGE_SIZE,
        backing_region: Region | None = None,
    ) -> None:
        if physical_memory_bytes <= 0:
            raise ProtectionError("physical memory size must be positive")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ProtectionError("page size must be a power of two")
        self.physical_memory_bytes = physical_memory_bytes
        self.page_size = page_size
        self.num_pages = (physical_memory_bytes + page_size - 1) // page_size
        #: Physical pages whose PAT bit is 1 (reliable-only).
        self._reliable_pages: Set[int] = set()
        #: Region of physical memory where the PAT itself is stored; PAB
        #: misses fetch their entries from here through the cache hierarchy.
        self.backing_region = backing_region
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def size_bytes(self) -> int:
        """Bytes of memory occupied by the PAT bitmap (one bit per page)."""
        return (self.num_pages + 7) // 8

    def entry_address(self, physical_page: int, entry_bytes: int = 64) -> int:
        """Physical address of the PAT block holding ``physical_page``'s bit.

        Used by the PAB to issue a cacheable fill request on a miss.  When no
        backing region was provided the PAT is addressed from physical 0,
        which only matters for statistics.
        """
        self._check_page(physical_page)
        block_index = physical_page // (entry_bytes * 8)
        base = self.backing_region.base if self.backing_region is not None else 0
        return base + block_index * entry_bytes

    def _check_page(self, physical_page: int) -> None:
        if not 0 <= physical_page < self.num_pages:
            raise ProtectionError(
                f"physical page {physical_page:#x} outside the {self.num_pages}-page PAT"
            )

    # ------------------------------------------------------------------ #
    # System-software interface
    # ------------------------------------------------------------------ #

    def mark_reliable_page(self, physical_page: int) -> None:
        """Set the PAT bit: only reliable-mode software may write the page."""
        self._check_page(physical_page)
        self._reliable_pages.add(physical_page)
        self.stats.add("pages_marked_reliable")

    def mark_open_page(self, physical_page: int) -> None:
        """Clear the PAT bit: the page may be written by any software."""
        self._check_page(physical_page)
        self._reliable_pages.discard(physical_page)
        self.stats.add("pages_marked_open")

    def mark_reliable_region(self, region: Region) -> int:
        """Mark every page of ``region`` reliable-only; return the page count."""
        first = region.base // self.page_size
        last = (region.end - 1) // self.page_size
        for page in range(first, last + 1):
            self.mark_reliable_page(page)
        return last - first + 1

    def mark_open_region(self, region: Region) -> int:
        """Mark every page of ``region`` writable by any software."""
        first = region.base // self.page_size
        last = (region.end - 1) // self.page_size
        for page in range(first, last + 1):
            self.mark_open_page(page)
        return last - first + 1

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def is_reliable_only(self, physical_page: int) -> bool:
        """True when the page may only be written in reliable mode."""
        self._check_page(physical_page)
        return physical_page in self._reliable_pages

    def is_reliable_only_address(self, physical_address: int) -> bool:
        """Like :meth:`is_reliable_only`, starting from a byte address."""
        return self.is_reliable_only(physical_address // self.page_size)

    def reliable_pages(self) -> Iterator[int]:
        """Iterate over all reliable-only physical pages."""
        return iter(sorted(self._reliable_pages))

    @property
    def reliable_page_count(self) -> int:
        """Number of pages currently marked reliable-only."""
        return len(self._reliable_pages)
