"""Protection-violation events.

A blocked store is not a Python exception: it is an architectural event the
hardware reports to system software, which may kill the offending
application, retry, or log it.  The simulator records each event in a
:class:`ViolationLog` so experiments and the fault-injection campaign can
reason about what was caught, where, and on whose behalf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator, List, Optional


class ViolationKind(Enum):
    """Which mechanism detected (or failed to detect) an illegal access."""

    #: The TLB's own permission check rejected the access (fault-free path).
    TLB_DENIED = auto()
    #: The PAB blocked a store whose physical page is reliable-only.
    PAB_BLOCKED = auto()
    #: DMR fingerprint comparison caught corrupted execution before retirement.
    DMR_DETECTED = auto()
    #: The privileged-register verification during an Enter-DMR transition
    #: caught a corrupted register.
    TRANSITION_VERIFY_FAILED = auto()
    #: Nothing caught the access: reliable state was silently corrupted.
    SILENT_CORRUPTION = auto()


@dataclass(frozen=True)
class ProtectionViolation:
    """One detected or missed illegal access."""

    kind: ViolationKind
    cycle: int
    core_id: int
    vcpu_id: Optional[int]
    physical_address: Optional[int]
    description: str = ""


@dataclass
class ViolationLog:
    """An append-only log of protection events for one simulation."""

    events: List[ProtectionViolation] = field(default_factory=list)

    def record(self, violation: ProtectionViolation) -> None:
        """Append one event."""
        self.events.append(violation)

    def count(self, kind: Optional[ViolationKind] = None) -> int:
        """Number of events (optionally of one kind)."""
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind is kind)

    def of_kind(self, kind: ViolationKind) -> Iterator[ProtectionViolation]:
        """Iterate over events of one kind."""
        return (event for event in self.events if event.kind is kind)

    @property
    def silent_corruptions(self) -> int:
        """Number of accesses nothing caught (the outcome MMM must avoid)."""
        return self.count(ViolationKind.SILENT_CORRUPTION)

    def __len__(self) -> int:
        return len(self.events)
