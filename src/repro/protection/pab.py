"""Protection Assistance Buffer (PAB).

The PAB is a small, cache-like hardware structure private to each core.  Each
entry is physically tagged and holds 64 bytes (one cache line) of PAT bits,
i.e. the reliable-only bits for 512 contiguous 8 KB pages.  For a core
executing in performance mode, every store write-through consults the PAB
either in parallel with or serially before the L2 access:

* a **hit** whose bit is 0 means the store has permission (the TLB and PAB
  agree) and proceeds;
* a **hit** whose bit is 1 means the physical address belongs to reliable
  software -- an exception is raised to system software before the store can
  reach the L2;
* a **miss** fetches the PAT block through the ordinary cacheable hierarchy
  and then repeats the check.

The PAB is not consulted in reliable (DMR) mode.  It is kept coherent with
TLB demap operations: when the TLB drops a translation it forwards the
physical page to the PAB, which invalidates the covering entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.stats import StatSet
from repro.config.system import PabConfig, PabLookupMode
from repro.errors import ProtectionError
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pat import ProtectionAssistanceTable


@dataclass(slots=True)
class _PabEntry:
    """One PAB entry: a tag plus the cached block of PAT bits."""

    block_index: int
    reliable_bits: int  # bitmap over the pages covered by this block
    last_touch: int = 0


@dataclass(slots=True)
class PabCheckResult:
    """Outcome of one PAB store-permission check."""

    allowed: bool
    hit: bool
    latency: int
    physical_page: int
    #: True when the latency is exposed on the store path (serial lookup);
    #: parallel lookups overlap with the L2 access and add no latency.
    serialized: bool


class ProtectionAssistanceBuffer:
    """Per-core cache of PAT entries used to re-validate store permissions."""

    def __init__(
        self,
        config: PabConfig,
        pat: ProtectionAssistanceTable,
        core_id: int,
        hierarchy: Optional[MemoryHierarchy] = None,
    ) -> None:
        config.validate()
        if pat.page_size != config.page_bytes:
            raise ProtectionError(
                "PAB and PAT disagree on the page size "
                f"({config.page_bytes} vs {pat.page_size})"
            )
        self.config = config
        self.pat = pat
        self.core_id = core_id
        self.hierarchy = hierarchy
        self._entries: Dict[int, _PabEntry] = {}
        self._touch = 0
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #

    @property
    def pages_per_entry(self) -> int:
        """Number of pages whose bits one PAB entry caches."""
        return self.config.pages_per_entry

    def _block_of(self, physical_page: int) -> int:
        return physical_page // self.pages_per_entry

    def _build_block_bits(self, block_index: int) -> int:
        """Assemble the reliable-only bitmap for one PAT block."""
        bits = 0
        first_page = block_index * self.pages_per_entry
        for offset in range(self.pages_per_entry):
            page = first_page + offset
            if page >= self.pat.num_pages:
                break
            if self.pat.is_reliable_only(page):
                bits |= 1 << offset
        return bits

    # ------------------------------------------------------------------ #
    # Store permission check
    # ------------------------------------------------------------------ #

    def _evict_if_needed(self) -> None:
        if len(self._entries) < self.config.entries:
            return
        victim = min(self._entries.values(), key=lambda entry: entry.last_touch)
        del self._entries[victim.block_index]
        self.stats.add("evictions")

    def _fill(self, block_index: int) -> tuple[_PabEntry, int]:
        """Fetch a PAT block through the cache hierarchy; return (entry, latency)."""
        latency = 0
        if self.hierarchy is not None:
            entry_address = self.pat.entry_address(
                block_index * self.pages_per_entry, self.config.entry_bytes
            )
            result = self.hierarchy.load(self.core_id, entry_address)
            latency = result.latency
        self._evict_if_needed()
        self._touch += 1
        entry = _PabEntry(
            block_index=block_index,
            reliable_bits=self._build_block_bits(block_index),
            last_touch=self._touch,
        )
        self._entries[block_index] = entry
        self.stats.add("fills")
        return entry, latency

    def check_store(self, physical_address: int) -> PabCheckResult:
        """Re-validate the permission of a performance-mode store.

        Returns whether the store may proceed and the latency exposed on the
        store path (zero for parallel lookups that hit; the PAT fill latency
        is always exposed because the store cannot proceed unchecked).
        """
        physical_page = physical_address // self.config.page_bytes
        if physical_page >= self.pat.num_pages:
            # An address outside the installed physical memory can only be the
            # product of a fault; treat it as a violation.
            self.stats.add("out_of_range_stores")
            return PabCheckResult(
                allowed=False,
                hit=False,
                latency=self.config.serial_lookup_latency,
                physical_page=physical_page,
                serialized=True,
            )
        block_index = self._block_of(physical_page)
        entry = self._entries.get(block_index)
        hit = entry is not None
        fill_latency = 0
        if entry is None:
            self.stats.add("misses")
            entry, fill_latency = self._fill(block_index)
        else:
            self._touch += 1
            entry.last_touch = self._touch
            self.stats.add("hits")

        bit = (entry.reliable_bits >> (physical_page % self.pages_per_entry)) & 1
        allowed = bit == 0
        if not allowed:
            self.stats.add("violations_blocked")

        serialized = self.config.lookup_mode is PabLookupMode.SERIAL
        lookup_latency = self.config.serial_lookup_latency if serialized else 0
        return PabCheckResult(
            allowed=allowed,
            hit=hit,
            latency=lookup_latency + fill_latency,
            physical_page=physical_page,
            serialized=serialized or fill_latency > 0,
        )

    # ------------------------------------------------------------------ #
    # Coherence with the TLB and the PAT
    # ------------------------------------------------------------------ #

    def on_tlb_demap(self, physical_page: int) -> bool:
        """Invalidate the entry covering ``physical_page`` (TLB demap hook)."""
        block_index = self._block_of(physical_page)
        if block_index in self._entries:
            del self._entries[block_index]
            self.stats.add("demap_invalidations")
            return True
        return False

    def on_pat_update(self, physical_page: int) -> bool:
        """Invalidate the entry covering a page whose PAT bit changed."""
        return self.on_tlb_demap(physical_page)

    def invalidate_all(self) -> int:
        """Drop every cached entry; returns the number dropped."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.add("full_invalidations")
        return count

    @property
    def occupancy(self) -> int:
        """Number of resident PAB entries."""
        return len(self._entries)

    @property
    def mapped_bytes(self) -> int:
        """Bytes of physical memory covered by a fully populated PAB."""
        return self.config.mapped_bytes
