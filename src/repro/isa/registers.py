"""Architectural register state.

Only a functional sketch of the register file is needed: the fault-injection
study corrupts privileged registers on performance-mode cores and checks that
the mode-transition verification step (Section 3.4.3) or DMR fingerprinting
catches the corruption.  The state intentionally mirrors the split the paper
relies on: *user* registers (replicated freely) versus *privileged* registers
(verified against the mute core's saved copy when re-entering DMR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

#: Names of the general-purpose (user-visible) registers.
USER_REGISTERS: Tuple[str, ...] = tuple(f"r{i}" for i in range(32)) + (
    "pc",
    "npc",
    "ccr",
    "y",
)

#: Names of the privileged registers the mode-transition machinery protects.
#: Loosely modelled on the SPARC v9 privileged state the paper targets.
PRIVILEGED_REGISTERS: Tuple[str, ...] = (
    "pstate",
    "tba",
    "tl",
    "tt",
    "tpc",
    "tnpc",
    "tstate",
    "pil",
    "cwp",
    "cansave",
    "canrestore",
    "asi",
    "ver",
    "context",
)

#: Registers that may legitimately change during unprivileged execution and
#: therefore receive only a sanity check (not an equality check) when
#: re-entering DMR mode (Section 3.4.3).
SANITY_CHECK_ONLY: Tuple[str, ...] = ("tt", "tpc", "tnpc", "tstate", "tl")


@dataclass
class ArchitecturalState:
    """Functional register state of one VCPU."""

    user: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in USER_REGISTERS}
    )
    privileged: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in PRIVILEGED_REGISTERS}
    )

    def copy(self) -> "ArchitecturalState":
        """Deep copy of the state (used for redundant scratchpad copies)."""
        return ArchitecturalState(user=dict(self.user), privileged=dict(self.privileged))

    def write_user(self, name: str, value: int) -> None:
        """Write a user register."""
        if name not in self.user:
            raise KeyError(f"unknown user register {name!r}")
        self.user[name] = value & 0xFFFF_FFFF_FFFF_FFFF

    def write_privileged(self, name: str, value: int) -> None:
        """Write a privileged register."""
        if name not in self.privileged:
            raise KeyError(f"unknown privileged register {name!r}")
        self.privileged[name] = value & 0xFFFF_FFFF_FFFF_FFFF

    def read_user(self, name: str) -> int:
        """Read a user register."""
        return self.user[name]

    def read_privileged(self, name: str) -> int:
        """Read a privileged register."""
        return self.privileged[name]

    def privileged_digest(self, include: Iterable[str] | None = None) -> int:
        """A stable hash of (a subset of) the privileged registers.

        Used by the Enter-DMR verification step to compare the vocal core's
        privileged state against the redundant copy saved in the scratchpad.
        """
        names = tuple(include) if include is not None else PRIVILEGED_REGISTERS
        acc = 0xCBF29CE484222325
        for name in names:
            value = self.privileged.get(name, 0)
            for byte in name.encode("utf-8"):
                acc ^= byte
                acc = (acc * 0x100000001B3) & 0xFFFF_FFFF_FFFF_FFFF
            acc ^= value & 0xFFFF_FFFF_FFFF_FFFF
            acc = (acc * 0x100000001B3) & 0xFFFF_FFFF_FFFF_FFFF
        return acc

    def verify_privileged_against(
        self, other: "ArchitecturalState"
    ) -> Tuple[bool, Tuple[str, ...]]:
        """Compare privileged registers with another copy.

        Registers in :data:`SANITY_CHECK_ONLY` are allowed to differ (they can
        legitimately change during unprivileged execution); every other
        privileged register must match exactly.  Returns ``(ok, mismatches)``.
        """
        mismatches = tuple(
            name
            for name in PRIVILEGED_REGISTERS
            if name not in SANITY_CHECK_ONLY
            and self.privileged[name] != other.privileged[name]
        )
        return (not mismatches, mismatches)

    def state_bytes(self) -> int:
        """Approximate architected state size in bytes (8 bytes per register)."""
        return 8 * (len(self.user) + len(self.privileged))
