"""Reunion fingerprints.

Reunion compresses the results of an instruction interval -- register
outputs, branch targets, store addresses and values -- into a small hash (the
*fingerprint*) that the vocal and mute cores exchange and compare before
retirement.  :class:`FingerprintUnit` reproduces that behaviour functionally:
it accumulates per-instruction results and emits a fingerprint every
``interval`` instructions (or on demand, e.g. before a serialising
instruction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import Instruction

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def fingerprint_of(values: List[int]) -> int:
    """Hash a list of integers into a 64-bit fingerprint (FNV-1a style)."""
    acc = _FNV_OFFSET
    for value in values:
        acc ^= value & _MASK64
        acc = (acc * _FNV_PRIME) & _MASK64
    return acc


def instruction_token(iclass_value: int, result: int, store_address: int) -> int:
    """The per-instruction fingerprint input token.

    A stable mix of the instruction class, result value, and store address --
    the same outputs the paper says a fingerprint captures ("all outputs,
    branch targets, and store addresses and values").  ``store_address`` must
    be 0 for anything that is not a store with a data address.  (Python's
    hash of small ints is deterministic, so no per-process salting can creep
    in here.)
    """
    return (
        iclass_value * 0x9E3779B1 ^ result * 0x85EBCA77 ^ store_address
    ) & _MASK64


@dataclass
class Fingerprint:
    """One emitted fingerprint covering ``count`` instructions."""

    value: int
    first_seq: int
    last_seq: int
    count: int


@dataclass
class FingerprintUnit:
    """Accumulates instruction results and emits interval fingerprints.

    Parameters
    ----------
    interval:
        Number of instructions summarised by one fingerprint (the paper and
        the Reunion proposal leave this as a design parameter; the default of
        16 matches :class:`repro.config.system.ReunionConfig`).
    """

    interval: int = 16
    _pending: List[int] = field(default_factory=list, init=False)
    _first_seq: Optional[int] = field(default=None, init=False)
    _last_seq: int = field(default=0, init=False)
    emitted: int = field(default=0, init=False)

    def observe(self, instruction: Instruction) -> Optional[Fingerprint]:
        """Record one committed instruction; return a fingerprint if due.

        The fingerprint input mixes the instruction class, result value, and
        store address -- see :func:`instruction_token`.
        """
        token = instruction_token(
            instruction.iclass.value,
            instruction.result,
            instruction.address if instruction.is_store and instruction.address else 0,
        )
        return self.observe_token(instruction.seq, token)

    def observe_token(self, seq: int, token: int) -> Optional[Fingerprint]:
        """Record one committed instruction given its precomputed token.

        The hot path computes tokens inline (via :func:`instruction_token`)
        and feeds them here, avoiding an :class:`Instruction` allocation per
        dynamic instruction; state evolution is identical to :meth:`observe`.
        """
        if self._first_seq is None:
            self._first_seq = seq
        self._last_seq = seq
        self._pending.append(token)
        if len(self._pending) >= self.interval:
            return self.flush()
        return None

    def flush(self) -> Optional[Fingerprint]:
        """Emit a fingerprint for any pending instructions (or ``None``)."""
        if not self._pending:
            return None
        fingerprint = Fingerprint(
            value=fingerprint_of(self._pending),
            first_seq=self._first_seq if self._first_seq is not None else 0,
            last_seq=self._last_seq,
            count=len(self._pending),
        )
        self._pending.clear()
        self._first_seq = None
        self.emitted += 1
        return fingerprint

    @property
    def pending_count(self) -> int:
        """Number of instructions accumulated since the last fingerprint."""
        return len(self._pending)
