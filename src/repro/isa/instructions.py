"""Instruction classes and the lightweight instruction record.

Instructions are produced in bulk by the synthetic workload generators and
consumed by the core timing model, so the record is intentionally small
(``__slots__``-based dataclass) and carries only the fields the timing,
protection and DMR models inspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional


class PrivilegeLevel(Enum):
    """Privilege level at which an instruction executes."""

    USER = auto()
    #: Guest operating system code (privileged inside the VM, unprivileged
    #: with respect to the VMM in a consolidated server).
    GUEST_OS = auto()
    #: The most privileged software: the OS in a single-OS system or the VMM
    #: in a consolidated server.  Always executes in reliable (DMR) mode.
    HYPERVISOR = auto()


class InstructionClass(Enum):
    """Coarse instruction classes with distinct timing/protection behaviour."""

    ALU = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    #: Serialising instruction: cannot execute until all older instructions
    #: have committed and stalls fetch until it is validated (Section 5.1).
    SERIALIZING = auto()
    #: Privileged register manipulation; only legal above user level.
    PRIVILEGED = auto()
    #: Transition from user code into the OS (system call, trap, interrupt).
    SYSCALL_ENTRY = auto()
    #: Return from the OS back to user code.
    SYSCALL_EXIT = auto()
    NOP = auto()


#: Instruction classes that access data memory.
MEMORY_CLASSES = frozenset({InstructionClass.LOAD, InstructionClass.STORE})

#: Instruction classes that the core treats as serialising.  The paper (and
#: Wells & Sohi's HPCA'08 study) serialises privileged register writes, traps
#: and returns in addition to explicitly serialising instructions.
SERIALIZING_CLASSES = frozenset(
    {
        InstructionClass.SERIALIZING,
        InstructionClass.PRIVILEGED,
        InstructionClass.SYSCALL_ENTRY,
        InstructionClass.SYSCALL_EXIT,
    }
)


@dataclass(slots=True)
class Instruction:
    """One dynamic instruction from a synthetic stream.

    Attributes
    ----------
    seq:
        Per-VCPU dynamic sequence number (monotonically increasing).
    iclass:
        The :class:`InstructionClass`.
    privilege:
        Privilege level of the code containing the instruction.
    address:
        Virtual data address for loads and stores, ``None`` otherwise.
    result:
        A small integer summarising the architectural result; only used to
        feed fingerprints and the fault-injection machinery, never
        interpreted as a real value.
    is_shared:
        True when the data address falls in the workload's shared region
        (used for cache-to-cache transfer statistics).
    """

    seq: int
    iclass: InstructionClass
    privilege: PrivilegeLevel = PrivilegeLevel.USER
    address: Optional[int] = None
    result: int = 0
    is_shared: bool = False

    @property
    def is_load(self) -> bool:
        """True for load instructions."""
        return self.iclass is InstructionClass.LOAD

    @property
    def is_store(self) -> bool:
        """True for store instructions."""
        return self.iclass is InstructionClass.STORE

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.iclass in MEMORY_CLASSES

    @property
    def is_branch(self) -> bool:
        """True for branches."""
        return self.iclass is InstructionClass.BRANCH

    @property
    def is_serializing(self) -> bool:
        """True when the core must serialise around this instruction."""
        return self.iclass in SERIALIZING_CLASSES

    @property
    def is_user(self) -> bool:
        """True when the instruction belongs to user-level code.

        User commits are the unit of work in every experiment (the paper uses
        committed user instructions as its work metric).
        """
        return self.privilege is PrivilegeLevel.USER

    @property
    def is_privileged_code(self) -> bool:
        """True when the instruction runs above user privilege."""
        return self.privilege is not PrivilegeLevel.USER

    @property
    def enters_os(self) -> bool:
        """True when this instruction transfers control into the OS/VMM."""
        return self.iclass is InstructionClass.SYSCALL_ENTRY

    @property
    def exits_os(self) -> bool:
        """True when this instruction returns from the OS/VMM to user code."""
        return self.iclass is InstructionClass.SYSCALL_EXIT
