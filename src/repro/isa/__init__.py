"""Abstract instruction set used by the synthetic workloads.

The reproduction does not interpret a real ISA.  It models the *classes* of
instructions whose behaviour matters to the paper's mechanisms: memory
operations (which exercise the TLB, caches and PAB), branches, serialising
instructions (which interact badly with Reunion's Check stage), privileged
instructions and syscall boundaries (which force DMR mode), and ordinary ALU
work.
"""

from repro.isa.fingerprints import FingerprintUnit, fingerprint_of
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.isa.registers import ArchitecturalState, PRIVILEGED_REGISTERS, USER_REGISTERS

__all__ = [
    "FingerprintUnit",
    "fingerprint_of",
    "Instruction",
    "InstructionClass",
    "PrivilegeLevel",
    "ArchitecturalState",
    "PRIVILEGED_REGISTERS",
    "USER_REGISTERS",
]
