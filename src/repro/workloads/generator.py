"""Synthetic per-VCPU instruction stream generator.

:class:`SyntheticWorkload` produces an endless stream of
:class:`~repro.isa.instructions.Instruction` records that alternates between
*user phases* and *OS phases*:

* a user phase contains a geometrically distributed number of user-level
  instructions drawn from the profile's user mix, then ends with a
  ``SYSCALL_ENTRY`` instruction;
* an OS phase contains privileged instructions drawn from the OS mix
  (including a higher density of serialising and privileged-register
  instructions), then ends with a ``SYSCALL_EXIT`` back to user code.

The stream is *resumable*: the simulator pulls instructions quantum by
quantum and the generator keeps its phase position, so a VCPU that is paused
(e.g. because its core pair was appropriated for DMR) continues exactly where
it stopped.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.errors import WorkloadError
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.workloads.address_stream import AddressStreamModel
from repro.workloads.profiles import WorkloadProfile


class SyntheticWorkload:
    """A resumable synthetic instruction stream for one VCPU.

    Parameters
    ----------
    profile:
        Workload profile (see :mod:`repro.workloads.profiles`).
    layout:
        Physical address-space layout used to place the VCPU's data.
    vm_id, vcpu_index, num_vcpus:
        Identify the VCPU within its VM (selects private/shared windows).
    seed:
        Seed for the VCPU's private random stream.
    phase_scale:
        Factor applied to the profile's phase lengths.  Experiments that run
        scaled-down simulations use values well below one so that every VCPU
        still alternates between user and OS code several times per run.
    os_privilege:
        Privilege level of OS-phase instructions -- ``GUEST_OS`` for a guest
        VM in a consolidated server, ``HYPERVISOR`` for the single-OS
        experiments where the OS *is* the most privileged software.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        layout: AddressSpaceLayout,
        vm_id: int = 0,
        vcpu_index: int = 0,
        num_vcpus: int = 8,
        seed: int = 0,
        phase_scale: float = 1.0,
        os_privilege: PrivilegeLevel = PrivilegeLevel.GUEST_OS,
    ) -> None:
        if os_privilege is PrivilegeLevel.USER:
            raise WorkloadError("os_privilege must be a privileged level")
        self.profile = profile.scaled(phase_scale=phase_scale) if phase_scale != 1.0 else profile
        self.vm_id = vm_id
        self.vcpu_index = vcpu_index
        self._os_privilege = os_privilege
        self._rng = DeterministicRng(seed).fork(f"wl.{profile.name}.{vm_id}.{vcpu_index}")
        self._addresses = AddressStreamModel(
            profile=self.profile,
            layout=layout,
            vm_id=vm_id,
            vcpu_index=vcpu_index,
            num_vcpus=num_vcpus,
            rng=self._rng.fork("addr"),
        )
        self._seq = 0
        self._in_os_phase = False
        self._remaining_in_phase = self._sample_phase_length(user=True)
        self._iterator: Optional[Iterator[Instruction]] = None

        # Statistics the Table 2 experiment reads back.
        self.user_phases_completed = 0
        self.os_phases_completed = 0
        self.user_instructions_emitted = 0
        self.os_instructions_emitted = 0

    # ------------------------------------------------------------------ #
    # Phase machinery
    # ------------------------------------------------------------------ #

    def _sample_phase_length(self, user: bool) -> int:
        mean = (
            self.profile.mean_user_phase_instructions
            if user
            else self.profile.mean_os_phase_instructions
        )
        return self._rng.geometric(float(mean))

    @property
    def address_model(self) -> AddressStreamModel:
        """The VCPU's data-address generator (used for cache warming)."""
        return self._addresses

    @property
    def in_os_phase(self) -> bool:
        """True while the stream is currently emitting OS-phase instructions."""
        return self._in_os_phase

    @property
    def current_privilege(self) -> PrivilegeLevel:
        """Privilege level of the next instruction to be emitted."""
        return self._os_privilege if self._in_os_phase else PrivilegeLevel.USER

    # ------------------------------------------------------------------ #
    # Instruction synthesis
    # ------------------------------------------------------------------ #

    def _make_instruction(self, privilege: PrivilegeLevel) -> Instruction:
        load_frac, store_frac, branch_frac = self.profile.mix_for(privilege)
        si_prob = self.profile.si_per_kilo_for(privilege) / 1000.0
        roll = self._rng.uniform(0.0, 1.0)
        address = None
        is_shared = False
        if roll < si_prob:
            iclass = (
                InstructionClass.PRIVILEGED
                if privilege is not PrivilegeLevel.USER and self._rng.chance(0.5)
                else InstructionClass.SERIALIZING
            )
        elif roll < si_prob + load_frac:
            iclass = InstructionClass.LOAD
            address, is_shared = self._addresses.next_address(privilege, is_store=False)
        elif roll < si_prob + load_frac + store_frac:
            iclass = InstructionClass.STORE
            address, is_shared = self._addresses.next_address(privilege, is_store=True)
        elif roll < si_prob + load_frac + store_frac + branch_frac:
            iclass = InstructionClass.BRANCH
        else:
            iclass = InstructionClass.ALU
        instruction = Instruction(
            seq=self._seq,
            iclass=iclass,
            privilege=privilege,
            address=address,
            result=self._rng.randint(0, 0xFFFF),
            is_shared=is_shared,
        )
        self._seq += 1
        return instruction

    def _boundary_instruction(self, entering_os: bool) -> Instruction:
        iclass = (
            InstructionClass.SYSCALL_ENTRY if entering_os else InstructionClass.SYSCALL_EXIT
        )
        # The trap itself executes at the privileged level it transfers to /
        # from, which is what forces the mode transition in an MMM.
        instruction = Instruction(
            seq=self._seq,
            iclass=iclass,
            privilege=self._os_privilege,
            address=None,
            result=self._rng.randint(0, 0xFFFF),
        )
        self._seq += 1
        return instruction

    def next_instruction(self) -> Instruction:
        """Return the next dynamic instruction of this VCPU's stream."""
        if self._remaining_in_phase <= 0:
            if self._in_os_phase:
                self.os_phases_completed += 1
                self._in_os_phase = False
                self._remaining_in_phase = self._sample_phase_length(user=True)
                return self._boundary_instruction(entering_os=False)
            self.user_phases_completed += 1
            self._in_os_phase = True
            self._remaining_in_phase = self._sample_phase_length(user=False)
            return self._boundary_instruction(entering_os=True)

        self._remaining_in_phase -= 1
        privilege = self.current_privilege
        instruction = self._make_instruction(privilege)
        if privilege is PrivilegeLevel.USER:
            self.user_instructions_emitted += 1
        else:
            self.os_instructions_emitted += 1
        return instruction

    def stream(self) -> Iterator[Instruction]:
        """An infinite iterator over the VCPU's dynamic instruction stream."""
        while True:
            yield self.next_instruction()

    def take(self, count: int) -> List[Instruction]:
        """Return the next ``count`` instructions as a list (mainly for tests)."""
        if count < 0:
            raise WorkloadError("cannot take a negative number of instructions")
        return [self.next_instruction() for _ in range(count)]

    @property
    def instructions_emitted(self) -> int:
        """Total dynamic instructions emitted so far (including boundaries)."""
        return self._seq
