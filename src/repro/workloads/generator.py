"""Synthetic per-VCPU instruction stream generator.

:class:`SyntheticWorkload` produces an endless stream of
:class:`~repro.isa.instructions.Instruction` records that alternates between
*user phases* and *OS phases*:

* a user phase contains a geometrically distributed number of user-level
  instructions drawn from the profile's user mix, then ends with a
  ``SYSCALL_ENTRY`` instruction;
* an OS phase contains privileged instructions drawn from the OS mix
  (including a higher density of serialising and privileged-register
  instructions), then ends with a ``SYSCALL_EXIT`` back to user code.

The stream is *resumable*: the simulator pulls instructions quantum by
quantum and the generator keeps its phase position, so a VCPU that is paused
(e.g. because its core pair was appropriated for DMR) continues exactly where
it stopped.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.common.addresses import AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.errors import WorkloadError
from repro.isa.instructions import Instruction, InstructionClass, PrivilegeLevel
from repro.workloads.address_stream import AddressStreamModel
from repro.workloads.profiles import WorkloadProfile


class SyntheticWorkload:
    """A resumable synthetic instruction stream for one VCPU.

    Parameters
    ----------
    profile:
        Workload profile (see :mod:`repro.workloads.profiles`).
    layout:
        Physical address-space layout used to place the VCPU's data.
    vm_id, vcpu_index, num_vcpus:
        Identify the VCPU within its VM (selects private/shared windows).
    seed:
        Seed for the VCPU's private random stream.
    phase_scale:
        Factor applied to the profile's phase lengths.  Experiments that run
        scaled-down simulations use values well below one so that every VCPU
        still alternates between user and OS code several times per run.
    os_privilege:
        Privilege level of OS-phase instructions -- ``GUEST_OS`` for a guest
        VM in a consolidated server, ``HYPERVISOR`` for the single-OS
        experiments where the OS *is* the most privileged software.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        layout: AddressSpaceLayout,
        vm_id: int = 0,
        vcpu_index: int = 0,
        num_vcpus: int = 8,
        seed: int = 0,
        phase_scale: float = 1.0,
        os_privilege: PrivilegeLevel = PrivilegeLevel.GUEST_OS,
    ) -> None:
        if os_privilege is PrivilegeLevel.USER:
            raise WorkloadError("os_privilege must be a privileged level")
        self.profile = profile.scaled(phase_scale=phase_scale) if phase_scale != 1.0 else profile
        self.vm_id = vm_id
        self.vcpu_index = vcpu_index
        self._os_privilege = os_privilege
        self._rng = DeterministicRng(seed).fork(f"wl.{profile.name}.{vm_id}.{vcpu_index}")
        self._addresses = AddressStreamModel(
            profile=self.profile,
            layout=layout,
            vm_id=vm_id,
            vcpu_index=vcpu_index,
            num_vcpus=num_vcpus,
            rng=self._rng.fork("addr"),
        )
        self._seq = 0
        self._in_os_phase = False
        self._remaining_in_phase = self._sample_phase_length(user=True)
        self._iterator: Optional[Iterator[Instruction]] = None

        # Hot-path bindings and per-privilege threshold tables.  The profile
        # is immutable after construction, so the cumulative mix thresholds
        # the per-instruction roll is compared against can be computed once;
        # the sums are built left-to-right exactly as the per-instruction code
        # used to, so the comparisons see bit-identical floats.
        self._random01 = self._rng.raw.random
        self._randint = self._rng.raw.randint
        self._getrandbits = self._rng.raw.getrandbits
        self._next_address = self._addresses.next_address
        self._user_thresholds = self._mix_thresholds(PrivilegeLevel.USER)
        self._os_thresholds = self._mix_thresholds(self._os_privilege)

        # Statistics the Table 2 experiment reads back.
        self.user_phases_completed = 0
        self.os_phases_completed = 0
        self.user_instructions_emitted = 0
        self.os_instructions_emitted = 0

    def _mix_thresholds(
        self, privilege: PrivilegeLevel
    ) -> Tuple[float, float, float, float]:
        load_frac, store_frac, branch_frac = self.profile.mix_for(privilege)
        si_prob = self.profile.si_per_kilo_for(privilege) / 1000.0
        t_load = si_prob + load_frac
        t_store = t_load + store_frac
        t_branch = t_store + branch_frac
        return (si_prob, t_load, t_store, t_branch)

    # ------------------------------------------------------------------ #
    # Phase machinery
    # ------------------------------------------------------------------ #

    def _sample_phase_length(self, user: bool) -> int:
        mean = (
            self.profile.mean_user_phase_instructions
            if user
            else self.profile.mean_os_phase_instructions
        )
        return self._rng.geometric(float(mean))

    @property
    def address_model(self) -> AddressStreamModel:
        """The VCPU's data-address generator (used for cache warming)."""
        return self._addresses

    @property
    def in_os_phase(self) -> bool:
        """True while the stream is currently emitting OS-phase instructions."""
        return self._in_os_phase

    @property
    def current_privilege(self) -> PrivilegeLevel:
        """Privilege level of the next instruction to be emitted."""
        return self._os_privilege if self._in_os_phase else PrivilegeLevel.USER

    # ------------------------------------------------------------------ #
    # Instruction synthesis
    # ------------------------------------------------------------------ #

    def next_raw(
        self,
    ) -> Tuple[int, InstructionClass, PrivilegeLevel, Optional[int], int, bool]:
        """Return the next instruction as a raw field tuple.

        This is the allocation-free form of :meth:`next_instruction` (which
        wraps it): the core timing model's hot loop consumes these tuples
        directly instead of building an :class:`Instruction` per dynamic
        instruction.  The tuple is ``(seq, iclass, privilege, address,
        result, is_shared)`` and the RNG consumption (draw order and count)
        is identical to the historical per-instruction code.
        """
        if self._remaining_in_phase <= 0:
            if self._in_os_phase:
                self.os_phases_completed += 1
                self._in_os_phase = False
                self._remaining_in_phase = self._sample_phase_length(user=True)
                iclass = InstructionClass.SYSCALL_EXIT
            else:
                self.user_phases_completed += 1
                self._in_os_phase = True
                self._remaining_in_phase = self._sample_phase_length(user=False)
                iclass = InstructionClass.SYSCALL_ENTRY
            seq = self._seq
            self._seq = seq + 1
            # Exact inline of ``randint(0, 0xFFFF)``: randrange reduces it to
            # ``_randbelow(65536)``, which draws 17-bit chunks (65536 needs 17
            # bits) until one lands below 65536 -- same bit stream, no
            # argument-checking overhead.
            getrandbits = self._getrandbits
            result = getrandbits(17)
            while result >= 65536:
                result = getrandbits(17)
            # The trap itself executes at the privileged level it transfers
            # to / from, which is what forces the mode transition in an MMM.
            return (seq, iclass, self._os_privilege, None, result, False)

        self._remaining_in_phase -= 1
        if self._in_os_phase:
            privilege = self._os_privilege
            t_si, t_load, t_store, t_branch = self._os_thresholds
            user = False
        else:
            privilege = PrivilegeLevel.USER
            t_si, t_load, t_store, t_branch = self._user_thresholds
            user = True

        roll = self._random01()
        address = None
        is_shared = False
        if roll >= t_si:
            if roll < t_load:
                iclass = InstructionClass.LOAD
                address, is_shared = self._next_address(privilege, False)
            elif roll < t_store:
                iclass = InstructionClass.STORE
                address, is_shared = self._next_address(privilege, True)
            elif roll < t_branch:
                iclass = InstructionClass.BRANCH
            else:
                iclass = InstructionClass.ALU
        elif user:
            iclass = InstructionClass.SERIALIZING
        else:
            iclass = (
                InstructionClass.PRIVILEGED
                if self._random01() < 0.5
                else InstructionClass.SERIALIZING
            )
        # Exact inline of ``randint(0, 0xFFFF)`` -- see the boundary path.
        getrandbits = self._getrandbits
        result = getrandbits(17)
        while result >= 65536:
            result = getrandbits(17)
        seq = self._seq
        self._seq = seq + 1
        if user:
            self.user_instructions_emitted += 1
        else:
            self.os_instructions_emitted += 1
        return (seq, iclass, privilege, address, result, is_shared)

    def next_instruction(self) -> Instruction:
        """Return the next dynamic instruction of this VCPU's stream."""
        seq, iclass, privilege, address, result, is_shared = self.next_raw()
        return Instruction(
            seq=seq,
            iclass=iclass,
            privilege=privilege,
            address=address,
            result=result,
            is_shared=is_shared,
        )

    def stream(self) -> Iterator[Instruction]:
        """An infinite iterator over the VCPU's dynamic instruction stream."""
        while True:
            yield self.next_instruction()

    def take(self, count: int) -> List[Instruction]:
        """Return the next ``count`` instructions as a list (mainly for tests)."""
        if count < 0:
            raise WorkloadError("cannot take a negative number of instructions")
        return [self.next_instruction() for _ in range(count)]

    @property
    def instructions_emitted(self) -> int:
        """Total dynamic instructions emitted so far (including boundaries)."""
        return self._seq
