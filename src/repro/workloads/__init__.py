"""Synthetic workload models.

The paper evaluates six commercial workloads (Apache, Zeus, OLTP/DB2, pgoltp,
pgbench, pmake) running on Solaris under Simics.  The reproduction replaces
them with synthetic instruction-stream generators whose statistical
properties -- instruction mix, user/OS phase structure, serialising
instruction density, working-set sizes and sharing behaviour -- are
calibrated to the characteristics the paper reports (Table 2 and the
discussion in Section 5.1).

Public entry points:

* :data:`PAPER_WORKLOADS` / :func:`get_profile` -- the six calibrated
  profiles,
* :class:`SyntheticWorkload` -- a resumable per-VCPU instruction stream,
* :class:`AddressStreamModel` -- the underlying address generator.
"""

from repro.workloads.address_stream import AddressStreamModel
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import (
    PAPER_WORKLOAD_NAMES,
    PAPER_WORKLOADS,
    WorkloadProfile,
    get_profile,
)

__all__ = [
    "AddressStreamModel",
    "SyntheticWorkload",
    "WorkloadProfile",
    "PAPER_WORKLOADS",
    "PAPER_WORKLOAD_NAMES",
    "get_profile",
]
