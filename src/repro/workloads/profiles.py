"""Workload profiles calibrated to the paper's six benchmarks.

A :class:`WorkloadProfile` captures everything the synthetic generator needs
to emit an instruction stream that *behaves like* one of the paper's
workloads as far as the evaluated mechanisms are concerned:

* the user/OS phase structure drives Table 2 (cycles between mode switches)
  and the single-OS overhead analysis in Section 5.3;
* the serialising-instruction densities drive a large part of Reunion's IPC
  loss (Section 5.1, "Serializing Instructions");
* the working-set and sharing parameters drive shared-L3 contention (the
  No DMR vs. No DMR 2X gap) and cache-to-cache transfer behaviour (Section
  5.1, "Cache-to-Cache Transfers");
* the instruction mixes drive baseline IPC and memory-system pressure.

The calibration targets are recorded next to each profile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.isa.instructions import PrivilegeLevel


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one workload."""

    name: str
    description: str

    # Instruction mix in user code (fractions of dynamic instructions).
    user_load_fraction: float
    user_store_fraction: float
    user_branch_fraction: float

    # Instruction mix in OS/privileged code.
    os_load_fraction: float
    os_store_fraction: float
    os_branch_fraction: float

    # Serialising-instruction density (per 1000 dynamic instructions).
    user_si_per_kilo: float
    os_si_per_kilo: float

    # Phase structure: mean dynamic instructions per user phase (between OS
    # entries) and per OS visit.  Together with the achieved IPC these
    # reproduce the paper's Table 2 (cycles before switching modes).
    mean_user_phase_instructions: int
    mean_os_phase_instructions: int

    # Data working sets (bytes).
    user_hot_bytes: int
    user_footprint_bytes: int
    kernel_hot_bytes: int
    kernel_footprint_bytes: int
    hot_access_fraction: float

    # Probability that a user-phase (resp. OS-phase) memory access touches
    # data shared with other VCPUs of the same VM.
    shared_access_fraction: float
    os_shared_access_fraction: float

    # Instruction-cache misses per 1000 instructions (front-end stalls).
    user_icache_mpki: float
    os_icache_mpki: float

    def validate(self) -> "WorkloadProfile":
        """Check all fractions and sizes are sensible; return ``self``."""
        for label, value in (
            ("user_load_fraction", self.user_load_fraction),
            ("user_store_fraction", self.user_store_fraction),
            ("user_branch_fraction", self.user_branch_fraction),
            ("os_load_fraction", self.os_load_fraction),
            ("os_store_fraction", self.os_store_fraction),
            ("os_branch_fraction", self.os_branch_fraction),
            ("hot_access_fraction", self.hot_access_fraction),
            ("shared_access_fraction", self.shared_access_fraction),
            ("os_shared_access_fraction", self.os_shared_access_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {label} must be in [0, 1], got {value}")
        if self.user_load_fraction + self.user_store_fraction + self.user_branch_fraction >= 1.0:
            raise WorkloadError(f"{self.name}: user instruction mix exceeds 1.0")
        if self.os_load_fraction + self.os_store_fraction + self.os_branch_fraction >= 1.0:
            raise WorkloadError(f"{self.name}: OS instruction mix exceeds 1.0")
        if self.mean_user_phase_instructions < 1 or self.mean_os_phase_instructions < 1:
            raise WorkloadError(f"{self.name}: phase lengths must be at least 1 instruction")
        if self.user_hot_bytes > self.user_footprint_bytes:
            raise WorkloadError(f"{self.name}: hot set larger than the footprint")
        if self.kernel_hot_bytes > self.kernel_footprint_bytes:
            raise WorkloadError(f"{self.name}: kernel hot set larger than its footprint")
        if self.user_si_per_kilo < 0 or self.os_si_per_kilo < 0:
            raise WorkloadError(f"{self.name}: serialising densities cannot be negative")
        return self

    def mix_for(self, privilege: PrivilegeLevel) -> Tuple[float, float, float]:
        """Return ``(load, store, branch)`` fractions for the given privilege."""
        if privilege is PrivilegeLevel.USER:
            return (
                self.user_load_fraction,
                self.user_store_fraction,
                self.user_branch_fraction,
            )
        return (self.os_load_fraction, self.os_store_fraction, self.os_branch_fraction)

    def si_per_kilo_for(self, privilege: PrivilegeLevel) -> float:
        """Serialising-instruction density for the given privilege level."""
        if privilege is PrivilegeLevel.USER:
            return self.user_si_per_kilo
        return self.os_si_per_kilo

    def icache_mpki_for(self, privilege: PrivilegeLevel) -> float:
        """Instruction-cache miss density for the given privilege level."""
        if privilege is PrivilegeLevel.USER:
            return self.user_icache_mpki
        return self.os_icache_mpki

    @property
    def os_intensity(self) -> float:
        """Fraction of dynamic instructions spent in the OS."""
        total = self.mean_user_phase_instructions + self.mean_os_phase_instructions
        return self.mean_os_phase_instructions / total

    def scaled(
        self, phase_scale: float = 1.0, footprint_scale: float = 1.0
    ) -> "WorkloadProfile":
        """Return a copy with scaled phase lengths and/or working sets.

        The experiments scale phases down so that scaled-down simulations
        still alternate between user and OS execution several times per run,
        and scale footprints down for the small test configuration.
        """
        if phase_scale <= 0 or footprint_scale <= 0:
            raise WorkloadError("scale factors must be positive")
        return replace(
            self,
            mean_user_phase_instructions=max(
                1, int(self.mean_user_phase_instructions * phase_scale)
            ),
            mean_os_phase_instructions=max(
                1, int(self.mean_os_phase_instructions * phase_scale)
            ),
            user_hot_bytes=max(4096, int(self.user_hot_bytes * footprint_scale)),
            user_footprint_bytes=max(8192, int(self.user_footprint_bytes * footprint_scale)),
            kernel_hot_bytes=max(4096, int(self.kernel_hot_bytes * footprint_scale)),
            kernel_footprint_bytes=max(
                8192, int(self.kernel_footprint_bytes * footprint_scale)
            ),
        ).validate()


def _kb(value: float) -> int:
    return int(value * 1024)


def _mb(value: float) -> int:
    return int(value * 1024 * 1024)


#: Apache: static web server driven by Surge.  Highly OS-intensive (Table 2:
#: 59 k user cycles vs 98 k OS cycles per round trip), moderate working set,
#: significant sharing through the network stack.
APACHE = WorkloadProfile(
    name="apache",
    description="Static web server (Surge client, no think time); OS-intensive.",
    user_load_fraction=0.26,
    user_store_fraction=0.11,
    user_branch_fraction=0.19,
    os_load_fraction=0.27,
    os_store_fraction=0.14,
    os_branch_fraction=0.21,
    user_si_per_kilo=0.5,
    os_si_per_kilo=16.0,
    mean_user_phase_instructions=55_000,
    mean_os_phase_instructions=65_000,
    user_hot_bytes=_kb(48),
    user_footprint_bytes=_kb(192),
    kernel_hot_bytes=_kb(64),
    kernel_footprint_bytes=_kb(128),
    hot_access_fraction=0.90,
    shared_access_fraction=0.05,
    os_shared_access_fraction=0.10,
    user_icache_mpki=6.0,
    os_icache_mpki=14.0,
).validate()

#: Zeus: the other static web server; even more OS-intensive than Apache
#: (Table 2: 65 k user cycles vs 220 k OS cycles).
ZEUS = WorkloadProfile(
    name="zeus",
    description="Static web server (Surge client); the most OS-intensive workload.",
    user_load_fraction=0.25,
    user_store_fraction=0.10,
    user_branch_fraction=0.20,
    os_load_fraction=0.28,
    os_store_fraction=0.14,
    os_branch_fraction=0.21,
    user_si_per_kilo=0.5,
    os_si_per_kilo=18.0,
    mean_user_phase_instructions=60_000,
    mean_os_phase_instructions=145_000,
    user_hot_bytes=_kb(40),
    user_footprint_bytes=_kb(160),
    kernel_hot_bytes=_kb(72),
    kernel_footprint_bytes=_kb(144),
    hot_access_fraction=0.90,
    shared_access_fraction=0.05,
    os_shared_access_fraction=0.08,
    user_icache_mpki=6.5,
    os_icache_mpki=15.0,
).validate()

#: OLTP: TPC-C-like workload on IBM DB2 (~800 MB database, 192 user threads).
#: Large data working set, moderate OS activity (218 k user / 52 k OS cycles).
OLTP = WorkloadProfile(
    name="oltp",
    description="TPC-C-like transactions on a commercial database (DB2).",
    user_load_fraction=0.29,
    user_store_fraction=0.13,
    user_branch_fraction=0.17,
    os_load_fraction=0.26,
    os_store_fraction=0.13,
    os_branch_fraction=0.20,
    user_si_per_kilo=0.8,
    os_si_per_kilo=12.0,
    mean_user_phase_instructions=200_000,
    mean_os_phase_instructions=35_000,
    user_hot_bytes=_kb(96),
    user_footprint_bytes=_kb(256),
    kernel_hot_bytes=_kb(56),
    kernel_footprint_bytes=_kb(96),
    hot_access_fraction=0.87,
    shared_access_fraction=0.08,
    os_shared_access_fraction=0.09,
    user_icache_mpki=9.0,
    os_icache_mpki=12.0,
).validate()

#: pgoltp: TPC-C-like queries on PostgreSQL (OSDL dbt2).  Similar to OLTP but
#: slightly less OS activity (210 k user / 35 k OS cycles).
PGOLTP = WorkloadProfile(
    name="pgoltp",
    description="TPC-C-like queries on PostgreSQL (OSDL dbt2 test suite).",
    user_load_fraction=0.28,
    user_store_fraction=0.12,
    user_branch_fraction=0.18,
    os_load_fraction=0.26,
    os_store_fraction=0.13,
    os_branch_fraction=0.20,
    user_si_per_kilo=0.7,
    os_si_per_kilo=11.0,
    mean_user_phase_instructions=195_000,
    mean_os_phase_instructions=24_000,
    user_hot_bytes=_kb(88),
    user_footprint_bytes=_kb(224),
    kernel_hot_bytes=_kb(48),
    kernel_footprint_bytes=_kb(96),
    hot_access_fraction=0.88,
    shared_access_fraction=0.07,
    os_shared_access_fraction=0.08,
    user_icache_mpki=8.0,
    os_icache_mpki=11.0,
).validate()

#: pgbench: TPC-B-like queries on PostgreSQL.  Longest user phases of all the
#: workloads (554 k user / 126 k OS cycles).
PGBENCH = WorkloadProfile(
    name="pgbench",
    description="TPC-B-like queries on PostgreSQL.",
    user_load_fraction=0.28,
    user_store_fraction=0.13,
    user_branch_fraction=0.17,
    os_load_fraction=0.27,
    os_store_fraction=0.13,
    os_branch_fraction=0.20,
    user_si_per_kilo=0.6,
    os_si_per_kilo=11.0,
    mean_user_phase_instructions=520_000,
    mean_os_phase_instructions=85_000,
    user_hot_bytes=_kb(80),
    user_footprint_bytes=_kb(224),
    kernel_hot_bytes=_kb(48),
    kernel_footprint_bytes=_kb(96),
    hot_access_fraction=0.88,
    shared_access_fraction=0.07,
    os_shared_access_fraction=0.08,
    user_icache_mpki=7.0,
    os_icache_mpki=11.0,
).validate()

#: pmake: parallel compile of PostgreSQL.  CPU-bound, small working set, very
#: little sharing (the paper notes pmake has very few cache-to-cache transfers
#: in the baseline), long user phases (312 k user / 47 k OS cycles).
PMAKE = WorkloadProfile(
    name="pmake",
    description="Parallel compile of PostgreSQL (GNU make + Forte C compiler).",
    user_load_fraction=0.24,
    user_store_fraction=0.10,
    user_branch_fraction=0.20,
    os_load_fraction=0.25,
    os_store_fraction=0.13,
    os_branch_fraction=0.20,
    user_si_per_kilo=0.3,
    os_si_per_kilo=10.0,
    mean_user_phase_instructions=330_000,
    mean_os_phase_instructions=32_000,
    user_hot_bytes=_kb(32),
    user_footprint_bytes=_kb(96),
    kernel_hot_bytes=_kb(40),
    kernel_footprint_bytes=_kb(64),
    hot_access_fraction=0.95,
    shared_access_fraction=0.015,
    os_shared_access_fraction=0.03,
    user_icache_mpki=4.0,
    os_icache_mpki=9.0,
).validate()


#: The six workloads of the paper's evaluation, in the order the figures use.
PAPER_WORKLOADS: Dict[str, WorkloadProfile] = {
    "apache": APACHE,
    "oltp": OLTP,
    "pgoltp": PGOLTP,
    "pmake": PMAKE,
    "pgbench": PGBENCH,
    "zeus": ZEUS,
}

#: Workload names in the paper's figure order.
PAPER_WORKLOAD_NAMES: Tuple[str, ...] = tuple(PAPER_WORKLOADS)


def get_profile(name: str) -> WorkloadProfile:
    """Look up one of the paper's workload profiles by name."""
    try:
        return PAPER_WORKLOADS[name.lower()]
    except KeyError as exc:
        known = ", ".join(PAPER_WORKLOAD_NAMES)
        raise WorkloadError(f"unknown workload {name!r}; known workloads: {known}") from exc
