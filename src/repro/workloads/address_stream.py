"""Synthetic data-address generation.

Each VCPU owns an :class:`AddressStreamModel` that produces the virtual data
addresses for its loads and stores.  The model implements the locality
structure the evaluation depends on:

* a small *hot* set per VCPU (captures L1/L2 behaviour),
* a larger *cold* footprint per VCPU (creates shared-L3 capacity pressure,
  which is what separates the paper's ``No DMR`` and ``No DMR 2X``
  configurations),
* a per-VM *shared* region touched by all VCPUs of the VM (creates
  cache-to-cache transfers, which Reunion's mute incoherence amplifies),
* a per-VM *kernel* region used by OS-phase accesses, with its own hot set
  and a shared portion modelling global kernel data structures.

Addresses are *virtual*; the page table maps them to physical addresses in
the VM's region of the simulated physical address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.addresses import DEFAULT_LINE_SIZE, AddressSpaceLayout
from repro.common.rng import DeterministicRng
from repro.errors import WorkloadError
from repro.isa.instructions import PrivilegeLevel
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class _Window:
    """A [base, base+span) window of the virtual address space."""

    base: int
    span: int


class AddressStreamModel:
    """Generates virtual data addresses for one VCPU.

    Parameters
    ----------
    profile:
        The workload profile providing working-set sizes and sharing
        fractions.
    layout:
        The physical address-space layout; only region *sizes* are used here
        (virtual regions mirror the physical ones one-to-one, which keeps the
        page table trivial while remaining a faithful model for the
        mechanisms under study).
    vm_id:
        Guest VM this VCPU belongs to.
    vcpu_index:
        Index of the VCPU within its VM; selects the VCPU's private slice of
        the VM's user region.
    num_vcpus:
        Number of VCPUs sharing the VM's user region.
    rng:
        Deterministic random source (forked per VCPU by the caller).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        layout: AddressSpaceLayout,
        vm_id: int,
        vcpu_index: int,
        num_vcpus: int,
        rng: DeterministicRng,
        line_size: int = DEFAULT_LINE_SIZE,
    ) -> None:
        if num_vcpus < 1:
            raise WorkloadError("num_vcpus must be at least 1")
        if not 0 <= vcpu_index < num_vcpus:
            raise WorkloadError(
                f"vcpu_index {vcpu_index} outside [0, {num_vcpus}) for VM {vm_id}"
            )
        self._profile = profile
        self._rng = rng
        self._line_size = line_size
        self._vcpu_index = vcpu_index
        self._num_vcpus = num_vcpus

        user_region = layout.user_region(vm_id)
        shared_region = layout.shared_region(vm_id)
        kernel_region = layout.kernel_region(vm_id)

        slice_span = user_region.size // num_vcpus
        slice_base = user_region.base + vcpu_index * slice_span
        hot_span = min(profile.user_hot_bytes, slice_span)
        cold_span = min(profile.user_footprint_bytes, slice_span)
        self._user_hot = _Window(slice_base, max(line_size, hot_span))
        self._user_cold = _Window(slice_base, max(line_size, cold_span))

        # Kernel accesses: a per-VCPU private slice (per-thread kernel stacks,
        # private buffers) plus a shared slice (global kernel structures).
        kernel_slice_span = max(line_size, kernel_region.size // (num_vcpus + 1))
        kernel_slice_base = kernel_region.base + vcpu_index * kernel_slice_span
        kernel_hot = min(profile.kernel_hot_bytes, kernel_slice_span)
        kernel_cold = min(profile.kernel_footprint_bytes, kernel_slice_span)
        self._kernel_hot = _Window(kernel_slice_base, max(line_size, kernel_hot))
        self._kernel_cold = _Window(kernel_slice_base, max(line_size, kernel_cold))
        shared_kernel_base = kernel_region.base + num_vcpus * kernel_slice_span
        self._kernel_shared = _Window(
            shared_kernel_base, max(line_size, kernel_region.end - shared_kernel_base)
        )

        self._shared = _Window(shared_region.base, max(line_size, shared_region.size))

        # Hot-path bindings: next_address runs once per memory instruction.
        # The windows are frozen, so their fields are flattened to plain
        # attributes and the RNG helpers are inlined in next_address (the
        # draw order and bit stream are identical to the helper calls).
        self._chance = rng.chance
        self._sample_address = rng.sample_address
        self._hot_cold_address = rng.hot_cold_address
        self._shared_fraction = profile.shared_access_fraction
        self._os_shared_fraction = profile.os_shared_access_fraction
        self._hot_fraction = profile.hot_access_fraction
        self._r01 = rng.raw.random
        self._randbelow = rng.raw._randbelow
        self._shared_base = self._shared.base
        self._shared_span = self._shared.span
        self._kernel_shared_base = self._kernel_shared.base
        self._kernel_shared_span = self._kernel_shared.span
        self._user_base = self._user_cold.base
        self._user_hot_span = self._user_hot.span
        self._user_cold_span = self._user_cold.span
        self._kernel_base = self._kernel_cold.base
        self._kernel_hot_span = self._kernel_hot.span
        self._kernel_cold_span = self._kernel_cold.span

    @property
    def user_private_window(self) -> Tuple[int, int]:
        """``(base, span)`` of this VCPU's private user window (for tests)."""
        return (self._user_cold.base, self._user_cold.span)

    def warm_addresses(self) -> Tuple[int, ...]:
        """Line addresses covering this VCPU's working set, coldest first.

        Used for functional cache warming before measurement: touching these
        addresses reproduces the steady-state cache contents a long-running
        workload would have built up (the paper simulates from warmed
        checkpoints for the same reason).  Hot-set lines come last so they end
        up most recently used and therefore resident in the L1/L2.

        The VM-wide shared windows (user shared data and global kernel
        structures) are split between the VM's VCPUs so that each VCPU warms
        its slice on its own core; later cross-VCPU accesses to those lines
        then hit other cores' L2s (cache-to-cache transfers), as they would in
        a long-running system.
        """
        addresses: list[int] = []
        for shared in (self._shared, self._kernel_shared):
            slice_span = max(self._line_size, shared.span // self._num_vcpus)
            slice_base = shared.base + self._vcpu_index * slice_span
            slice_end = min(shared.base + shared.span, slice_base + slice_span)
            addresses.extend(range(slice_base, slice_end, self._line_size))
        for window in (self._kernel_cold, self._user_cold, self._kernel_hot, self._user_hot):
            addresses.extend(
                range(window.base, window.base + window.span, self._line_size)
            )
        return tuple(addresses)

    @property
    def shared_window(self) -> Tuple[int, int]:
        """``(base, span)`` of the VM-wide shared data window."""
        return (self._shared.base, self._shared.span)

    def _pick(self, hot: _Window, cold: _Window) -> int:
        return self._hot_cold_address(
            base=cold.base,
            hot_span=hot.span,
            cold_span=cold.span,
            hot_probability=self._hot_fraction,
            alignment=self._line_size,
        )

    def next_address(
        self, privilege: PrivilegeLevel, is_store: bool
    ) -> Tuple[int, bool]:
        """Return ``(virtual_address, is_shared)`` for the next memory access.

        ``is_shared`` marks accesses into a region touched by multiple VCPUs
        (the VM's shared data region, or shared kernel structures); the
        memory hierarchy uses it only for statistics -- actual cache-to-cache
        behaviour emerges from the directory state.
        """
        # This is a full inline of the chance / sample_address /
        # hot_cold_address helper chain (one call per memory instruction):
        # every random draw happens under the same condition and in the same
        # order as the helpers would perform it, so the value stream is
        # bit-identical.
        r01 = self._r01
        randbelow = self._randbelow
        line = self._line_size
        if privilege is PrivilegeLevel.USER:
            p = self._shared_fraction
            if (r01() < p) if 0.0 < p < 1.0 else p >= 1.0:
                span = self._shared_span
                if span <= 0:
                    return (self._shared_base, True)
                offset = randbelow(span)
                if line > 1:
                    offset -= offset % line
                return (self._shared_base + offset, True)
            base = self._user_base
            hot_span = self._user_hot_span
            cold_span = self._user_cold_span
        else:
            # OS / hypervisor accesses.
            p = self._os_shared_fraction
            if (r01() < p) if 0.0 < p < 1.0 else p >= 1.0:
                span = self._kernel_shared_span
                if span <= 0:
                    return (self._kernel_shared_base, True)
                offset = randbelow(span)
                if line > 1:
                    offset -= offset % line
                return (self._kernel_shared_base + offset, True)
            base = self._kernel_base
            hot_span = self._kernel_hot_span
            cold_span = self._kernel_cold_span
        # Hot/cold pick: the hot-set chance is drawn *before* the span
        # comparison, exactly as hot_cold_address does.
        hp = self._hot_fraction
        if ((r01() < hp) if 0.0 < hp < 1.0 else hp >= 1.0) or cold_span <= hot_span:
            span = hot_span
        else:
            base += hot_span
            span = cold_span - hot_span
        if span <= 0:
            return (base, False)
        offset = randbelow(span)
        if line > 1:
            offset -= offset % line
        return (base + offset, False)
