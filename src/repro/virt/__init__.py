"""Hardware multicore virtualisation layer.

MMM-TP relies on a thin hardware/firmware layer (below the ISA, invisible to
system software) that decouples the OS-visible virtual processors (VCPUs)
from the physical cores: VCPU state can be saved to and loaded from a
scratchpad region of cacheable memory, VCPUs can migrate between cores, and
more VCPUs can be exposed than there are core pairs (overcommit), with excess
VCPUs paused when every pair is busy executing DMR work.

This package provides the VCPU and guest-VM abstractions, the scratchpad
manager, the VCPU state-transfer engine (whose latencies feed the mode-switch
costs of Table 1), the core allocator, and the gang scheduler used by the
consolidated-server experiments.
"""

from repro.virt.scheduler import CoreAllocator, GangScheduler, MappingPlan, VcpuPlacement
from repro.virt.scratchpad import ScratchpadManager
from repro.virt.migration import TransferResult, VcpuStateTransferEngine
from repro.virt.vcpu import ReliabilityMode, VirtualCPU
from repro.virt.vm import GuestVM

__all__ = [
    "CoreAllocator",
    "GangScheduler",
    "MappingPlan",
    "VcpuPlacement",
    "ScratchpadManager",
    "TransferResult",
    "VcpuStateTransferEngine",
    "ReliabilityMode",
    "VirtualCPU",
    "GuestVM",
]
