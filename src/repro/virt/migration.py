"""VCPU state save/restore through the cache hierarchy.

The hardware virtualisation layer moves VCPU state (about 2.3 KB on SPARC)
between cores by storing it to, and loading it from, the scratchpad region of
cacheable physical memory.  The transfers use the normal coherence protocol
-- even on a mute core, which is why a mute's cache ends up holding a mixture
of coherent and incoherent lines (Section 3.4.3).

The cycle cost of these transfers is what dominates the *Enter DMR* half of
Table 1; :class:`VcpuStateTransferEngine` performs the actual hierarchy
accesses (so cache and directory state stay realistic) and converts the
summed latencies into cycles assuming a small number of overlapped
outstanding transfers, as a simple hardware state machine would sustain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import StatSet
from repro.config.system import VirtualizationConfig
from repro.errors import TransitionError
from repro.mem.hierarchy import MemoryHierarchy
from repro.virt.scratchpad import ScratchpadManager


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one state save or load."""

    cycles: int
    lines: int
    total_latency: int


class VcpuStateTransferEngine:
    """Moves VCPU state between cores via the scratchpad."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        scratchpad: ScratchpadManager,
        config: VirtualizationConfig,
        overlap_factor: float = 4.0,
        per_line_beat: float = 1.0,
    ) -> None:
        if overlap_factor < 1.0:
            raise TransitionError("overlap factor must be at least 1")
        self.hierarchy = hierarchy
        self.scratchpad = scratchpad
        self.config = config
        self.overlap_factor = overlap_factor
        self.per_line_beat = per_line_beat
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _transfer(
        self,
        core_id: int,
        vcpu_id: int,
        copy: str,
        is_store: bool,
        coherent: bool,
        lines: int | None = None,
    ) -> TransferResult:
        addresses = self.scratchpad.line_addresses(vcpu_id, copy)
        if lines is not None:
            addresses = addresses[: max(1, lines)]
        total_latency = 0
        for address in addresses:
            result = self.hierarchy.access(
                core_id, address, is_store=is_store, coherent=coherent
            )
            total_latency += result.latency
        cycles = int(round(total_latency / self.overlap_factor)) + int(
            round(len(addresses) * self.per_line_beat)
        )
        self.stats.add("transfers")
        self.stats.add("lines_moved", len(addresses))
        self.stats.add("transfer_cycles", cycles)
        return TransferResult(cycles=cycles, lines=len(addresses), total_latency=total_latency)

    # ------------------------------------------------------------------ #
    # Public operations
    # ------------------------------------------------------------------ #

    def save_state(
        self, core_id: int, vcpu_id: int, copy: str = ScratchpadManager.PRIMARY
    ) -> TransferResult:
        """Store a VCPU's full architected state from ``core_id`` to the scratchpad.

        State saves are always performed coherently -- even from a mute core
        -- which is why the mute's cache needs the per-line coherent bit.
        """
        return self._transfer(core_id, vcpu_id, copy, is_store=True, coherent=True)

    def load_state(
        self, core_id: int, vcpu_id: int, copy: str = ScratchpadManager.PRIMARY
    ) -> TransferResult:
        """Load a VCPU's full architected state from the scratchpad into ``core_id``."""
        return self._transfer(core_id, vcpu_id, copy, is_store=False, coherent=True)

    def save_privileged_state(
        self, core_id: int, vcpu_id: int, copy: str = ScratchpadManager.REDUNDANT
    ) -> TransferResult:
        """Store only the privileged portion of a VCPU's state (a few lines)."""
        return self._transfer(
            core_id, vcpu_id, copy, is_store=True, coherent=True,
            lines=self._privileged_lines(),
        )

    def load_privileged_state(
        self, core_id: int, vcpu_id: int, copy: str = ScratchpadManager.REDUNDANT
    ) -> TransferResult:
        """Load only the privileged portion of a VCPU's state."""
        return self._transfer(
            core_id, vcpu_id, copy, is_store=False, coherent=True,
            lines=self._privileged_lines(),
        )

    def _privileged_lines(self) -> int:
        # Privileged state is a small fraction of the 2.3 KB VCPU state; two
        # cache lines comfortably hold the SPARC privileged registers.
        return max(1, min(2, self.scratchpad.slot_lines))

    def migrate(self, from_core: int, to_core: int, vcpu_id: int) -> TransferResult:
        """Move a VCPU between cores (save on one core, load on the other)."""
        save = self.save_state(from_core, vcpu_id)
        load = self.load_state(to_core, vcpu_id)
        self.stats.add("migrations")
        return TransferResult(
            cycles=save.cycles + load.cycles,
            lines=save.lines + load.lines,
            total_latency=save.total_latency + load.total_latency,
        )
