"""Virtual CPUs and the per-VCPU reliability-mode register.

The paper's hardware/software interface (Section 3.3) is a single 2-bit
register per OS-visible virtual processor, writable only by privileged
software, selecting one of three modes:

1. operate with high reliability (DMR always),
2. operate with high performance (never DMR), or
3. operate with high performance only when executing non-privileged (user or
   guest-VM) software.

The paper's evaluation mixes modes 1 and 3; the reproduction implements all
three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.common.stats import StatSet
from repro.errors import SchedulingError
from repro.isa.instructions import PrivilegeLevel
from repro.isa.registers import ArchitecturalState
from repro.workloads.generator import SyntheticWorkload


class ReliabilityMode(Enum):
    """Value of the per-VCPU reliability register."""

    #: Always execute redundantly (DMR).
    RELIABLE = auto()
    #: Never execute redundantly.
    PERFORMANCE = auto()
    #: Execute redundantly only while running privileged software.
    PERFORMANCE_USER_ONLY = auto()


@dataclass
class VirtualCPU:
    """One OS-visible virtual processor."""

    vcpu_id: int
    vm_id: int
    workload: SyntheticWorkload
    mode_register: ReliabilityMode = ReliabilityMode.RELIABLE
    arch_state: ArchitecturalState = field(default_factory=ArchitecturalState)
    paused: bool = False
    stats: StatSet = field(default_factory=StatSet)

    # Accumulated results (read by the simulation results module).
    committed_instructions: int = 0
    committed_user_instructions: int = 0
    committed_os_instructions: int = 0
    active_cycles: int = 0
    mode_switches: int = 0
    mode_switch_cycles: int = 0

    def write_mode_register(
        self, mode: ReliabilityMode, writer_privilege: PrivilegeLevel
    ) -> None:
        """Write the reliability register (privileged software only)."""
        if writer_privilege is PrivilegeLevel.USER:
            raise SchedulingError(
                "the reliability-mode register is writable only by privileged software"
            )
        self.mode_register = mode
        self.stats.add("mode_register_writes")

    def requires_dmr(self, privilege: Optional[PrivilegeLevel] = None) -> bool:
        """Whether the VCPU must execute redundantly right now.

        ``privilege`` is the privilege level of the code about to run; when
        omitted, the current phase of the VCPU's workload stream is used.
        """
        if self.mode_register is ReliabilityMode.RELIABLE:
            return True
        if self.mode_register is ReliabilityMode.PERFORMANCE:
            return False
        if privilege is None:
            privilege = self.workload.current_privilege
        return privilege is not PrivilegeLevel.USER

    def record_quantum(
        self, cycles: int, instructions: int, user_instructions: int, os_instructions: int
    ) -> None:
        """Accumulate the outcome of one executed quantum."""
        self.active_cycles += cycles
        self.committed_instructions += instructions
        self.committed_user_instructions += user_instructions
        self.committed_os_instructions += os_instructions

    def record_mode_switch(self, cycles: int) -> None:
        """Accumulate the cost of one mode transition charged to this VCPU."""
        self.mode_switches += 1
        self.mode_switch_cycles += cycles

    def pause(self) -> None:
        """Mark the VCPU paused (no core pair available this quantum)."""
        self.paused = True
        self.stats.add("pauses")

    def resume(self) -> None:
        """Mark the VCPU runnable again."""
        self.paused = False

    def user_ipc(self, total_cycles: int) -> float:
        """User instructions per cycle over ``total_cycles`` machine cycles."""
        if total_cycles <= 0:
            return 0.0
        return self.committed_user_instructions / total_cycles
