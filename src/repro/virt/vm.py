"""Guest virtual machines.

In the consolidated-server experiments each guest VM (its OS plus its
applications) is treated as a single entity with one reliability requirement:
a *reliable* VM runs all of its VCPUs under DMR, a *performance* VM runs them
without DMR (its guest OS included -- a fault inside a performance VM cannot
affect the reliable VMs, so the paper does not protect guest OSes).  In the
single-OS experiments there is exactly one "VM" whose OS is the most
privileged software and therefore always reliable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.virt.vcpu import ReliabilityMode, VirtualCPU


@dataclass
class GuestVM:
    """One guest virtual machine and its VCPUs."""

    vm_id: int
    name: str
    reliability: ReliabilityMode
    workload_name: str
    vcpus: List[VirtualCPU] = field(default_factory=list)
    #: Whether the VM currently participates in the gang schedule.  Deferred
    #: VMs (``VmSpec.present_at_start=False``) start inactive and are
    #: admitted by a ``VmArrived`` timeline event; ``VmDeparted`` drains an
    #: active VM.  An inactive VM keeps its VCPUs and their accumulated
    #: counters -- work done before a departure stays in the results.
    active: bool = True

    def add_vcpu(self, vcpu: VirtualCPU) -> None:
        """Attach a VCPU to this VM (it inherits the VM's reliability mode)."""
        if vcpu.vm_id != self.vm_id:
            raise ConfigurationError(
                f"VCPU {vcpu.vcpu_id} belongs to VM {vcpu.vm_id}, not VM {self.vm_id}"
            )
        vcpu.mode_register = self.reliability
        self.vcpus.append(vcpu)

    @property
    def vcpu_ids(self) -> List[int]:
        """Identifiers of this VM's VCPUs."""
        return [vcpu.vcpu_id for vcpu in self.vcpus]

    @property
    def num_vcpus(self) -> int:
        """Number of VCPUs exposed by this VM."""
        return len(self.vcpus)

    @property
    def is_reliable(self) -> bool:
        """True when the VM requires DMR for all of its execution."""
        return self.reliability is ReliabilityMode.RELIABLE

    def committed_user_instructions(self) -> int:
        """Total user instructions committed by this VM's VCPUs."""
        return sum(vcpu.committed_user_instructions for vcpu in self.vcpus)

    def committed_instructions(self) -> int:
        """Total instructions committed by this VM's VCPUs."""
        return sum(vcpu.committed_instructions for vcpu in self.vcpus)

    def per_vcpu_user_ipc(self, total_cycles: int) -> List[float]:
        """User IPC of each VCPU over the whole simulation."""
        return [vcpu.user_ipc(total_cycles) for vcpu in self.vcpus]

    def average_user_ipc(self, total_cycles: int) -> float:
        """Average per-VCPU user IPC (the paper's per-thread metric)."""
        if not self.vcpus or total_cycles <= 0:
            return 0.0
        return sum(self.per_vcpu_user_ipc(total_cycles)) / len(self.vcpus)

    def throughput(self, total_cycles: int) -> float:
        """Aggregate user instructions per cycle across all VCPUs."""
        if total_cycles <= 0:
            return 0.0
        return self.committed_user_instructions() / total_cycles
