"""Scratchpad space for VCPU state.

Mode transitions save and restore VCPU state through a reserved portion of
the physical address space ("scratchpad space", Section 3.4.3).  Each VCPU
gets two slots: one for the state saved by the vocal core and one for the
redundant copy saved by the mute core, so that the Enter-DMR verification can
compare the vocal core's privileged registers against an independently saved
copy.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.addresses import DEFAULT_LINE_SIZE, AddressSpaceLayout, Region, align_up
from repro.errors import ConfigurationError


class ScratchpadManager:
    """Allocates per-VCPU save areas inside the reserved scratchpad region."""

    #: Identifier of the primary (vocal-written) copy of a VCPU's state.
    PRIMARY = "primary"
    #: Identifier of the redundant (mute-written) copy.
    REDUNDANT = "redundant"

    def __init__(
        self,
        layout: AddressSpaceLayout,
        vcpu_state_bytes: int,
        line_size: int = DEFAULT_LINE_SIZE,
    ) -> None:
        if vcpu_state_bytes <= 0:
            raise ConfigurationError("VCPU state size must be positive")
        self.layout = layout
        self.line_size = line_size
        self.slot_bytes = align_up(vcpu_state_bytes, line_size)
        self._region = layout.scratchpad_region()
        self._slots: Dict[Tuple[int, str], Region] = {}
        self._next_index = 0

    @property
    def slot_lines(self) -> int:
        """Number of cache lines occupied by one save slot."""
        return self.slot_bytes // self.line_size

    @property
    def capacity_slots(self) -> int:
        """How many save slots fit in the scratchpad region."""
        return self._region.size // self.slot_bytes

    def slot_for(self, vcpu_id: int, copy: str = PRIMARY) -> Region:
        """Return (allocating on first use) the save area for one VCPU copy."""
        if copy not in (self.PRIMARY, self.REDUNDANT):
            raise ConfigurationError(f"unknown scratchpad copy kind {copy!r}")
        key = (vcpu_id, copy)
        slot = self._slots.get(key)
        if slot is not None:
            return slot
        if self._next_index >= self.capacity_slots:
            raise ConfigurationError(
                "scratchpad region exhausted: "
                f"{self.capacity_slots} slots of {self.slot_bytes} bytes already allocated"
            )
        slot = self.layout.scratchpad_slot(self._next_index, self.slot_bytes)
        self._next_index += 1
        self._slots[key] = slot
        return slot

    def line_addresses(self, vcpu_id: int, copy: str = PRIMARY) -> List[int]:
        """Line-aligned physical addresses covering one VCPU's save area."""
        slot = self.slot_for(vcpu_id, copy)
        return [slot.base + offset for offset in range(0, self.slot_bytes, self.line_size)]

    @property
    def allocated_slots(self) -> int:
        """Number of save slots handed out so far."""
        return self._next_index
