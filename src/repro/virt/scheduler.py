"""Core allocation and gang scheduling.

Two mechanisms live here:

* :class:`CoreAllocator` hands out physical cores (singles or DMR pairs) to
  the mapping policies and enforces the invariants the hardware must uphold
  (a core runs at most one VCPU per quantum; a pair consists of two distinct
  cores).
* :class:`GangScheduler` time-slices the machine between guest VMs, as the
  paper's consolidated-server methodology does (all of a VM's VCPUs run
  during its timeslice; the other VM's VCPUs wait for theirs).

The decision of *which* VCPUs run in which mode belongs to the MMM mapping
policies in :mod:`repro.core.policies`; this module only provides the
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cpu.core import PhysicalCore
from repro.cpu.timing import CoreAssignment
from repro.errors import SchedulingError


@dataclass(frozen=True)
class VcpuPlacement:
    """One VCPU's execution assignment for a quantum."""

    vcpu_id: int
    assignment: CoreAssignment
    #: A core held in reserve for this VCPU but currently idle (MMM-IPC keeps
    #: the mute core of a statically assigned pair idle while the VCPU runs
    #: in performance mode, so that the pair can re-form at the next OS entry
    #: without involving the scheduler).
    reserved_partner_core: Optional[int] = None

    @property
    def occupied_cores(self) -> Tuple[int, ...]:
        """Every core this placement makes unavailable to other VCPUs."""
        cores = tuple(self.assignment.cores)
        if self.reserved_partner_core is not None:
            cores = cores + (self.reserved_partner_core,)
        return cores


@dataclass
class MappingPlan:
    """The full VCPU-to-core mapping for one quantum."""

    placements: List[VcpuPlacement] = field(default_factory=list)
    paused_vcpu_ids: List[int] = field(default_factory=list)

    def validate(
        self, num_cores: int, retired_cores: FrozenSet[int] = frozenset()
    ) -> "MappingPlan":
        """Check no physical core is used twice (or retired); return ``self``."""
        used: set[int] = set()
        for placement in self.placements:
            for core in placement.occupied_cores:
                if core in used:
                    raise SchedulingError(
                        f"core {core} assigned to more than one VCPU in the same quantum"
                    )
                if not 0 <= core < num_cores:
                    raise SchedulingError(f"core {core} does not exist on this chip")
                if core in retired_cores:
                    raise SchedulingError(
                        f"core {core} is retired (failed) and cannot be scheduled"
                    )
                used.add(core)
        return self

    @property
    def active_vcpu_ids(self) -> List[int]:
        """VCPUs that execute this quantum."""
        return [placement.vcpu_id for placement in self.placements]

    @property
    def cores_in_use(self) -> int:
        """Number of physical cores consumed by the plan."""
        return sum(len(p.assignment.cores) for p in self.placements)


class CoreAllocator:
    """Tracks which physical cores are free during plan construction.

    The allocator also owns the machine's *retired-core* set: cores taken
    out by a permanent fault (:meth:`retire`) leave the free pool until a
    repair restores them (:meth:`restore`), so the mapping policies -- which
    only ever see the free list -- transparently re-pair DMR partners around
    the failure at the next quantum.
    """

    def __init__(self, cores: Sequence[PhysicalCore]) -> None:
        self.cores = list(cores)
        self._retired: Set[int] = set()
        self._free: List[int] = [core.core_id for core in self.cores]

    @property
    def num_cores(self) -> int:
        """Total physical cores managed by the allocator."""
        return len(self.cores)

    @property
    def free_count(self) -> int:
        """Cores still available in the current allocation round."""
        return len(self._free)

    @property
    def retired_cores(self) -> FrozenSet[int]:
        """Cores currently retired by permanent faults."""
        return frozenset(self._retired)

    @property
    def num_healthy_cores(self) -> int:
        """Cores that are not retired (the machine's current capacity)."""
        return len(self.cores) - len(self._retired)

    def retire(self, core_id: int) -> None:
        """Permanently remove one core from the pool (a core failure)."""
        if not 0 <= core_id < len(self.cores):
            raise SchedulingError(f"cannot retire core {core_id}: no such core")
        if core_id in self._retired:
            raise SchedulingError(f"core {core_id} is already retired")
        self._retired.add(core_id)
        if core_id in self._free:
            self._free.remove(core_id)

    def restore(self, core_id: int) -> None:
        """Return a previously retired core to the pool (a repair)."""
        if core_id not in self._retired:
            raise SchedulingError(f"cannot restore core {core_id}: it is not retired")
        self._retired.remove(core_id)

    def reset(self) -> None:
        """Return every healthy core to the free pool (start of a quantum)."""
        for core in self.cores:
            if not core.is_idle:
                core.release()
        self._free = [
            core.core_id for core in self.cores if core.core_id not in self._retired
        ]

    def allocate_single(self) -> Optional[int]:
        """Take one free core (or ``None`` when none remain)."""
        if not self._free:
            return None
        return self._free.pop(0)

    def allocate_pair(self) -> Optional[Tuple[int, int]]:
        """Take two free cores to form a DMR pair (or ``None``).

        Reunion allows any core to serve as vocal or mute for any other, so
        the allocator simply takes the two lowest-numbered free cores;
        adjacency is not required.
        """
        if len(self._free) < 2:
            return None
        vocal = self._free.pop(0)
        mute = self._free.pop(0)
        return (vocal, mute)


class GangScheduler:
    """Round-robin gang scheduling of guest VMs with a fixed timeslice.

    Membership is dynamic: :meth:`set_vm_ids` replaces the rotation when a
    guest VM arrives or departs mid-run (the consolidation-churn scenarios).
    The schedule is a pure function of the cycle and the *current* rotation,
    so a membership change deterministically redirects every timeslice from
    the change onward and leaves the past untouched.
    """

    def __init__(self, vm_ids: Sequence[int], timeslice_cycles: int) -> None:
        if not vm_ids:
            raise SchedulingError("gang scheduler needs at least one VM")
        if timeslice_cycles <= 0:
            raise SchedulingError("timeslice must be positive")
        self.vm_ids = list(vm_ids)
        self.timeslice_cycles = timeslice_cycles

    def set_vm_ids(self, vm_ids: Sequence[int]) -> None:
        """Replace the scheduled VM rotation (arrival/departure of a guest)."""
        if not vm_ids:
            raise SchedulingError("gang scheduler needs at least one VM")
        self.vm_ids = list(vm_ids)

    def vm_at(self, cycle: int) -> int:
        """VM scheduled on the machine at absolute ``cycle``."""
        slot = (cycle // self.timeslice_cycles) % len(self.vm_ids)
        return self.vm_ids[slot]

    def slice_index(self, cycle: int) -> int:
        """Index of the timeslice containing ``cycle``."""
        return cycle // self.timeslice_cycles

    def next_boundary(self, cycle: int) -> int:
        """First cycle after ``cycle`` at which the scheduled VM changes."""
        return (self.slice_index(cycle) + 1) * self.timeslice_cycles

    def is_boundary(self, cycle: int) -> bool:
        """True when ``cycle`` is the first cycle of a timeslice."""
        return cycle % self.timeslice_cycles == 0

    def schedule(self, total_cycles: int) -> List[Tuple[int, int, int]]:
        """Return ``(start_cycle, end_cycle, vm_id)`` slices covering a run."""
        slices: List[Tuple[int, int, int]] = []
        cycle = 0
        while cycle < total_cycles:
            end = min(total_cycles, self.next_boundary(cycle))
            slices.append((cycle, end, self.vm_at(cycle)))
            cycle = end
        return slices
