"""Reproduction of "Mixed-Mode Multicore Reliability" (ASPLOS 2009).

The library builds, from scratch, a trace-driven multicore simulator (cores,
three-level cache hierarchy with MOSI directory coherence, TLBs, Reunion-style
dual-modular redundancy, PAT/PAB memory protection, hardware virtualisation)
and implements the paper's Mixed-Mode Multicore on top of it: MMM-IPC,
MMM-TP, the mode-transition state machine, and the protection mechanisms that
keep reliable applications safe from faults striking performance-mode cores.

Typical entry points:

* :class:`repro.MixedModeMulticore` -- build and run a system in a few lines,
* :mod:`repro.sim.experiments` -- regenerate each of the paper's tables and
  figures,
* :class:`repro.faults.FaultInjectionCampaign` -- fault-coverage studies.
"""

from repro.config import paper_system_config, small_system_config
from repro.config.system import SystemConfig
from repro.core import (
    MixedModeMachine,
    MixedModeMulticore,
    ModeTransitionEngine,
    VmSpec,
    policy_by_name,
)
from repro.faults import FaultInjectionCampaign, FaultInjector, FaultRates
from repro.sim import SimulationOptions, SimulationResult, Simulator
from repro.virt.vcpu import ReliabilityMode
from repro.workloads import PAPER_WORKLOAD_NAMES, PAPER_WORKLOADS, get_profile

# Imported for its side effect: registers the "faults" job kind with the
# experiment engine.  Must come after repro.sim (it imports repro.sim.jobs),
# and must live here so process-pool workers -- which import this package to
# unpickle engine jobs -- always see the registration.
import repro.faults.cells  # noqa: E402  isort:skip

# Same side effect for the fleet subsystem: registers the "fleet" job kind.
import repro.sim.fleet.cells  # noqa: E402  isort:skip

# Same side effect for the fuzz subsystem: registers the "fuzz" job kind.
import repro.sim.fuzz.cells  # noqa: E402  isort:skip

__version__ = "1.0.0"

__all__ = [
    "paper_system_config",
    "small_system_config",
    "SystemConfig",
    "MixedModeMachine",
    "MixedModeMulticore",
    "ModeTransitionEngine",
    "VmSpec",
    "policy_by_name",
    "FaultInjectionCampaign",
    "FaultInjector",
    "FaultRates",
    "SimulationOptions",
    "SimulationResult",
    "Simulator",
    "ReliabilityMode",
    "PAPER_WORKLOAD_NAMES",
    "PAPER_WORKLOADS",
    "get_profile",
    "__version__",
]
