"""Simulation driver, results, experiment engine and reporting.

* :mod:`repro.sim.simulator` -- the event-driven, quantum-based simulation loop,
* :mod:`repro.sim.timeline` -- mid-run machine-reshaping event schedules,
* :mod:`repro.sim.results` -- result containers and metrics,
* :mod:`repro.sim.frames` -- the schema-driven typed results layer
  (``MetricSchema`` + ``ResultFrame``: generated rendering, export and
  baseline diffing),
* :mod:`repro.sim.settings` -- the shared experiment settings value,
* :mod:`repro.sim.jobs` -- the picklable per-cell job model,
* :mod:`repro.sim.runner` -- pluggable-backend job execution with caching,
* :mod:`repro.sim.experiments` -- one entry point per paper table/figure,
* :mod:`repro.sim.specs` -- declarative experiment specs and the central
  ``EXPERIMENTS`` registry,
* :mod:`repro.sim.reporting` -- plain-text rendering of the results.
"""

from repro.sim.frames import (
    FrameView,
    MetricColumn,
    MetricSchema,
    ResultFrame,
    diff_documents,
    diff_frames,
    document_frames,
    frames_document,
    frames_to_csv,
)
from repro.sim.jobs import ExperimentJob, execute_job
from repro.sim.results import SimulationResult, VmResult
from repro.sim.runner import (
    ExperimentRunner,
    LegacyResultCache,
    ResultCache,
    RunnerBackend,
    RunnerStats,
    backend_by_name,
    default_runner,
    make_result_cache,
    register_runner_backend,
    registered_backends,
    set_default_runner,
    using_runner,
)
from repro.sim.settings import ExperimentSettings

# Imported after the engine modules above: registers every built-in
# experiment spec in the EXPERIMENTS registry as an import-time side effect.
from repro.sim.specs import (
    EXPERIMENTS,
    ExperimentSpec,
    ParameterGrid,
    SpecOption,
    SpecRequest,
    experiment,
    experiment_names,
    register_experiment,
)
from repro.sim.simulator import SimulationOptions, Simulator
from repro.sim.timeline import (
    CoreFailed,
    CoreRepaired,
    FaultRateBurst,
    PolicyChanged,
    ReliabilityModeChanged,
    Timeline,
    TimelineEvent,
    VmArrived,
    VmDeparted,
)

__all__ = [
    "MetricSchema",
    "MetricColumn",
    "FrameView",
    "ResultFrame",
    "diff_frames",
    "diff_documents",
    "frames_document",
    "document_frames",
    "frames_to_csv",
    "Timeline",
    "TimelineEvent",
    "CoreFailed",
    "CoreRepaired",
    "VmArrived",
    "VmDeparted",
    "PolicyChanged",
    "ReliabilityModeChanged",
    "FaultRateBurst",
    "SimulationResult",
    "VmResult",
    "SimulationOptions",
    "Simulator",
    "ExperimentSettings",
    "ExperimentJob",
    "execute_job",
    "ExperimentRunner",
    "LegacyResultCache",
    "ResultCache",
    "make_result_cache",
    "RunnerBackend",
    "RunnerStats",
    "backend_by_name",
    "register_runner_backend",
    "registered_backends",
    "default_runner",
    "set_default_runner",
    "using_runner",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ParameterGrid",
    "SpecOption",
    "SpecRequest",
    "experiment",
    "experiment_names",
    "register_experiment",
]
