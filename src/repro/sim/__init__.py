"""Simulation driver, results, experiment engine and reporting.

* :mod:`repro.sim.simulator` -- the quantum-based simulation loop,
* :mod:`repro.sim.results` -- result containers and metrics,
* :mod:`repro.sim.settings` -- the shared experiment settings value,
* :mod:`repro.sim.jobs` -- the picklable per-cell job model,
* :mod:`repro.sim.runner` -- serial/parallel job execution with caching,
* :mod:`repro.sim.experiments` -- one entry point per paper table/figure,
* :mod:`repro.sim.reporting` -- plain-text rendering of the results.
"""

from repro.sim.jobs import ExperimentJob, execute_job
from repro.sim.results import SimulationResult, VmResult
from repro.sim.runner import (
    ExperimentRunner,
    ResultCache,
    RunnerStats,
    default_runner,
    set_default_runner,
    using_runner,
)
from repro.sim.settings import ExperimentSettings
from repro.sim.simulator import SimulationOptions, Simulator

__all__ = [
    "SimulationResult",
    "VmResult",
    "SimulationOptions",
    "Simulator",
    "ExperimentSettings",
    "ExperimentJob",
    "execute_job",
    "ExperimentRunner",
    "ResultCache",
    "RunnerStats",
    "default_runner",
    "set_default_runner",
    "using_runner",
]
