"""Simulation driver, results, experiments and reporting.

* :mod:`repro.sim.simulator` -- the quantum-based simulation loop,
* :mod:`repro.sim.results` -- result containers and metrics,
* :mod:`repro.sim.experiments` -- one entry point per paper table/figure,
* :mod:`repro.sim.reporting` -- plain-text rendering of the results.
"""

from repro.sim.results import SimulationResult, VmResult
from repro.sim.simulator import SimulationOptions, Simulator

__all__ = ["SimulationResult", "VmResult", "SimulationOptions", "Simulator"]
