"""Fleet cells: the ``fleet`` job kind and its frame samples.

A fleet run decomposes into one :class:`~repro.sim.jobs.ExperimentJob` per
machine: the job's params carry the machine's identity (name, rack), its
serialized VM roster, its :class:`~repro.sim.timeline.Timeline` and the
scheduler's per-machine counters, so each cell is a self-contained,
cacheable simulation -- the engine's backends and on-disk cache apply
unchanged.  :func:`fleet_samples` folds the per-machine cells back into
fleet-level SLO samples, one per (scenario, seed): p99 degraded throughput
across the machines, availability (delivered vs nominal core-cycle
capacity), migration count and upgrade exposure.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.machine import MixedModeMachine, VmSpec
from repro.cpu.fastpath import FastTimingModel
from repro.errors import ExperimentError
from repro.sim.fleet.cluster import FleetTopology
from repro.sim.fleet.scheduler import FleetPlan, FleetScheduler, MachinePlan, VmPlacement
from repro.sim.fleet.traffic import scenario_model
from repro.sim.jobs import ExperimentJob, job_timeline, register_job_kind
from repro.sim.settings import ExperimentSettings
from repro.sim.simulator import Simulator
from repro.virt.vcpu import ReliabilityMode

__all__ = [
    "execute_fleet_cell",
    "fleet_jobs",
    "fleet_plan",
    "fleet_samples",
    "fleet_topology",
    "roster_from_json",
    "roster_to_json",
]


def fleet_topology(settings: ExperimentSettings) -> FleetTopology:
    """The fleet layout the settings describe."""
    return FleetTopology.build(settings.fleet_machines, settings.fleet_racks)


def fleet_plan(
    settings: ExperimentSettings, scenario: str, seed: int
) -> FleetPlan:
    """Generate and schedule one fleet scenario, deterministically.

    Pure function of ``(settings, scenario, seed)``: the traffic model and
    the scheduler both derive all randomness from the seed via CRC-forked
    :class:`~repro.common.rng.DeterministicRng` streams, so two processes
    always produce byte-identical per-machine timelines.
    """
    topology = fleet_topology(settings)
    script = scenario_model(scenario).script(topology, settings, seed)
    return FleetScheduler(topology, settings).plan(script)


# ===================================================================== #
# Roster serialization (job params are JSON scalars)
# ===================================================================== #


def roster_to_json(roster: Sequence[VmPlacement]) -> str:
    """Canonical JSON form of a machine's roster (part of the cell identity)."""
    payload = [
        {
            "name": placement.name,
            "workload": placement.workload,
            "vcpus": placement.vcpus,
            "mode": placement.mode,
            "deferred": placement.deferred,
        }
        for placement in roster
    ]
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def roster_from_json(serialized: str) -> Tuple[VmPlacement, ...]:
    """Rebuild a roster from its canonical JSON form."""
    try:
        payload = json.loads(serialized)
    except json.JSONDecodeError as error:
        raise ExperimentError(f"malformed fleet roster: {error}") from None
    return tuple(
        VmPlacement(
            name=str(entry["name"]),
            workload=str(entry["workload"]),
            vcpus=int(entry["vcpus"]),
            mode=str(entry["mode"]),
            deferred=bool(entry["deferred"]),
        )
        for entry in payload
    )


# ===================================================================== #
# Enumeration
# ===================================================================== #


def _machine_params(
    scenario: str, plan: MachinePlan
) -> Tuple[Tuple[str, object], ...]:
    params: Dict[str, object] = {
        "machine": plan.site.name,
        "rack": plan.site.rack,
        "roster": roster_to_json(plan.roster),
        "migrations_in": plan.migrations_in,
        "migrations_out": plan.migrations_out,
        "placements": plan.placements,
        "exposure_cycles": plan.exposure_cycles,
    }
    if plan.timeline:
        params["timeline"] = plan.timeline.to_json()
    return tuple(sorted(params.items()))


def fleet_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """Every (scenario, machine, seed) cell of the fleet experiment."""
    cell = settings.cell_settings()
    jobs: List[ExperimentJob] = []
    for scenario in settings.fleet_scenarios:
        for seed in settings.seeds:
            plan = fleet_plan(settings, scenario, seed)
            for machine_plan in plan.machines:
                jobs.append(
                    ExperimentJob(
                        kind="fleet",
                        workload=machine_plan.roster[0].workload,
                        variant=scenario,
                        seed=seed,
                        settings=cell,
                        params=_machine_params(scenario, machine_plan),
                    )
                )
    return jobs


# ===================================================================== #
# Execution (one machine's simulation)
# ===================================================================== #


def _fleet_machine(job: ExperimentJob) -> MixedModeMachine:
    """Rebuild one fleet machine from the job's serialized roster."""
    settings = job.settings
    if settings is None:
        raise ExperimentError(f"job {job.label} needs ExperimentSettings")
    roster = roster_from_json(str(job.param("roster") or "[]"))
    if not roster:
        raise ExperimentError(f"fleet cell {job.label} carries an empty roster")
    config = settings.config()
    specs = [
        VmSpec(
            name=placement.name,
            workload=placement.workload,
            num_vcpus=placement.vcpus,
            reliability=ReliabilityMode[placement.mode],
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
            present_at_start=not placement.deferred,
        )
        for placement in roster
    ]
    return MixedModeMachine(config=config, vm_specs=specs, policy="mmm-tp", seed=job.seed)


@register_job_kind("fleet")
def execute_fleet_cell(job: ExperimentJob) -> Dict[str, object]:
    """Simulate one fleet machine under its scripted timeline.

    ``availability`` is the machine's delivered core-cycle capacity as a
    fraction of its nominal (no-failure) capacity over the measured window:
    1.0 on an untouched machine, below it while storm-failed cores are out
    of service.  The scheduler's counters (migrations, exposure) are echoed
    from the job params so every cached metrics dict is self-contained.
    """
    settings = job.settings
    if settings is None:
        raise ExperimentError(f"job {job.label} needs ExperimentSettings")
    machine = _fleet_machine(job)
    if settings.fidelity == "fast":
        machine.timing_model = FastTimingModel(machine.timing_model)
    run = Simulator(machine, settings.options(), timeline=job_timeline(job)).run()
    used = float(run.quantum_stats.get("core_cycles_used", 0.0))
    capacity = float(run.quantum_stats.get("core_cycles_capacity", 0.0))
    nominal = float(run.quantum_stats.get("core_cycles_nominal", 0.0))
    return {
        "machine_throughput": run.overall_throughput(),
        "availability": capacity / nominal if nominal else 1.0,
        "utilization": used / capacity if capacity else 0.0,
        "migrations_in": int(job.param("migrations_in", 0)),
        "migrations_out": int(job.param("migrations_out", 0)),
        "exposure_cycles": int(job.param("exposure_cycles", 0)),
        "events_applied": run.timeline_events_applied,
        "transitions": run.transitions,
    }


# ===================================================================== #
# Frame samples (fleet SLOs, one sample per scenario x seed)
# ===================================================================== #


def tail_percentile(values: Sequence[float], fraction: float = 0.01) -> float:
    """The ``fraction`` low quantile with linear interpolation.

    ``fraction=0.01`` is the p99 *guarantee*: 99% of machines achieve at
    least this value.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def fleet_samples(
    request, jobs: Sequence[ExperimentJob], results: Mapping[ExperimentJob, Mapping[str, object]]
) -> Iterator[Tuple[Tuple[object, ...], Dict[str, object]]]:
    """Fold per-machine cells into fleet SLO samples, one per (scenario, seed).

    The ``mean_ci`` aggregation of the schema then averages the per-seed
    fleet samples into across-seed confidence intervals, exactly like the
    other multi-seed experiments.
    """
    groups: Dict[Tuple[str, int], List[ExperimentJob]] = {}
    for job in jobs:
        groups.setdefault((job.variant, job.seed), []).append(job)
    for (scenario, _seed), members in groups.items():
        throughputs = [float(results[job]["machine_throughput"]) for job in members]
        availabilities = [float(results[job]["availability"]) for job in members]
        yield (scenario,), {
            "fleet_throughput": sum(throughputs),
            "p99_degraded_throughput": tail_percentile(throughputs),
            "availability": sum(availabilities) / len(availabilities),
            "migrations": sum(int(job.param("migrations_in", 0)) for job in members),
            "exposure_cycles": sum(
                int(job.param("exposure_cycles", 0)) for job in members
            ),
        }
