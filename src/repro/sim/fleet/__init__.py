"""Fleet-scale scenarios: a traffic-driven datacenter of mixed-mode machines.

The paper evaluates one consolidated server at a time; this package lifts
the evaluation to a *fleet*: machines grouped into racks and power domains
(:mod:`repro.sim.fleet.cluster`), seeded stochastic traffic models that
script what happens to the fleet -- diurnal load curves, flash crowds,
correlated failure storms, rolling reliability-policy upgrades
(:mod:`repro.sim.fleet.traffic`) -- and a placement/migration scheduler
that reacts to those events and decomposes the fleet run into independent
per-machine simulations (:mod:`repro.sim.fleet.scheduler`).

Each per-machine simulation is one ``fleet`` :class:`~repro.sim.jobs.ExperimentJob`
(:mod:`repro.sim.fleet.cells`), so the whole engine applies for free: the
serial/process/thread/distributed backends parallelise a fleet, the on-disk
cache makes reruns instant, and the ``fleet`` spec of
:mod:`repro.sim.specs` folds the cells into a :class:`~repro.sim.frames.ResultFrame`
of fleet SLO metrics (p99 degraded throughput, availability under failure
storms, migration count, policy-upgrade exposure window).
"""

from repro.sim.fleet.cluster import FleetTopology, MachineSite
from repro.sim.fleet.scheduler import FleetPlan, FleetScheduler, MachinePlan, VmPlacement
from repro.sim.fleet.traffic import SCENARIO_NAMES, FleetScript, scenario_model

__all__ = [
    "FleetTopology",
    "MachineSite",
    "FleetPlan",
    "FleetScheduler",
    "MachinePlan",
    "VmPlacement",
    "FleetScript",
    "SCENARIO_NAMES",
    "scenario_model",
]
