"""Seeded traffic models: what happens to the fleet, scripted ahead of time.

Each scenario model turns ``(topology, settings, seed)`` into a
:class:`FleetScript` -- an ordered schedule of *fleet-level* events (demand
bursts, correlated core outages, rolling reliability upgrades).  The script
is what the :class:`~repro.sim.fleet.scheduler.FleetScheduler` reacts to;
the scheduler's output is one valid :class:`~repro.sim.timeline.Timeline`
per machine, ready for the simulator.

Determinism is the load-bearing property: all randomness flows through
:class:`~repro.common.rng.DeterministicRng` (CRC-derived forks, stable
across processes), and scripts sort canonically, so the same
``(model, params, seed)`` always yields byte-identical per-machine timeline
serializations -- which is what keeps fleet cells cacheable and the
backends byte-identical.

The four models mirror the traffic a production fleet actually sees:

* :class:`DiurnalModel` -- the day curve: a morning ramp and an evening
  peak of burst VMs that later drain;
* :class:`FlashCrowdModel` -- one sudden fleet-wide demand spike;
* :class:`FailureStormModel` -- a correlated outage scoped by the
  topology: every machine in one victim rack (or power domain) loses half
  its cores within a tight window, with repairs late in the run;
* :class:`RollingUpgradeModel` -- a staggered reliability-policy rollout:
  machine by machine, the reliable guest drops protection for an upgrade
  window (its *exposure window*) before protection is restored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.common.rng import DeterministicRng
from repro.errors import ExperimentError
from repro.sim.fleet.cluster import FleetTopology
from repro.sim.settings import ExperimentSettings

__all__ = [
    "BurstDemand",
    "CoreOutage",
    "DiurnalModel",
    "FailureStormModel",
    "FlashCrowdModel",
    "FleetScript",
    "ReliabilityUpgrade",
    "RollingUpgradeModel",
    "SCENARIO_NAMES",
    "scenario_model",
]


# ===================================================================== #
# Fleet-level events
# ===================================================================== #


@dataclass(frozen=True)
class BurstDemand:
    """``vms`` extra guest VMs worth of demand arrives at ``cycle``.

    The scheduler decides placement (least-loaded machine with a free burst
    slot); each placed VM departs ``duration`` cycles later.
    """

    cycle: int
    vms: int
    duration: int


@dataclass(frozen=True)
class CoreOutage:
    """A permanent fault retires one core of one machine at ``cycle``."""

    cycle: int
    machine: str
    core_id: int
    #: Cycle at which the core returns to service, or ``None`` for never.
    repair_cycle: Optional[int] = None


@dataclass(frozen=True)
class ReliabilityUpgrade:
    """One machine's reliable guest runs unprotected for an upgrade window.

    From ``cycle`` until ``cycle + duration`` the guest's reliability
    registers read ``mode`` (the upgrade's exposure window); protection is
    then restored.  ``PERFORMANCE`` is the mode fleet machines (MMM-TP)
    support; ``PERFORMANCE_USER_ONLY`` needs the fine-grained MMM-IPC
    policy.
    """

    cycle: int
    machine: str
    duration: int
    mode: str = "PERFORMANCE"


FleetEvent = Union[BurstDemand, CoreOutage, ReliabilityUpgrade]

#: Tie-break order for same-cycle events: outages reshape capacity before
#: demand is placed against it; upgrades are independent and go last.
_EVENT_ORDER = {CoreOutage: 0, BurstDemand: 1, ReliabilityUpgrade: 2}


def _event_sort_key(event: FleetEvent) -> Tuple[object, ...]:
    return (
        event.cycle,
        _EVENT_ORDER[type(event)],
        getattr(event, "machine", ""),
        getattr(event, "core_id", -1),
    )


@dataclass(frozen=True)
class FleetScript:
    """An ordered, canonical schedule of fleet-level events."""

    events: Tuple[FleetEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_event_sort_key))
        )

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def of(cls, *events: FleetEvent) -> "FleetScript":
        """Build a script from the given events (sorted canonically)."""
        return cls(events=tuple(events))


# ===================================================================== #
# Scenario models
# ===================================================================== #


def _window(settings: ExperimentSettings) -> Tuple[int, int]:
    """The measurement window: (first measured cycle, window length)."""
    return settings.warmup_cycles, settings.total_cycles


@dataclass(frozen=True)
class DiurnalModel:
    """The day curve: a morning ramp and a taller evening peak."""

    name: str = "diurnal"
    #: Burst VMs per wave, as a fraction of the fleet size.
    wave_scale: float = 0.5

    def script(
        self, topology: FleetTopology, settings: ExperimentSettings, seed: int
    ) -> FleetScript:
        rng = DeterministicRng(seed).fork(f"fleet:{self.name}")
        start, window = _window(settings)
        wave_vms = max(1, int(len(topology.sites) * self.wave_scale))
        events: List[FleetEvent] = []
        # Morning ramp: a modest wave early in the window.
        morning = start + window // 6 + rng.randint(0, window // 12)
        events.append(
            BurstDemand(cycle=morning, vms=wave_vms, duration=window // 3)
        )
        # Evening peak: a taller wave past mid-window, draining before the end.
        evening = start + window // 2 + rng.randint(0, window // 12)
        events.append(
            BurstDemand(
                cycle=evening, vms=wave_vms + wave_vms // 2, duration=window // 4
            )
        )
        return FleetScript.of(*events)


@dataclass(frozen=True)
class FlashCrowdModel:
    """One sudden spike: the whole fleet's spare capacity is claimed at once."""

    name: str = "flash-crowd"

    def script(
        self, topology: FleetTopology, settings: ExperimentSettings, seed: int
    ) -> FleetScript:
        rng = DeterministicRng(seed).fork(f"fleet:{self.name}")
        start, window = _window(settings)
        spike = start + window // 4 + rng.randint(0, window // 4)
        # One burst VM per machine: the crowd saturates every burst slot's
        # first tier and forces the scheduler to spread the load.
        return FleetScript.of(
            BurstDemand(cycle=spike, vms=len(topology.sites), duration=window // 4)
        )


@dataclass(frozen=True)
class FailureStormModel:
    """A correlated outage: one failure domain loses half its cores.

    The victim rack (or power domain, with ``scope="power-domain"``) is
    drawn from the seed; every machine in it loses ``num_cores // 2`` cores
    at closely spaced cycles -- the correlated storm the scheduler must
    evacuate -- and repairs land late in the window.  A background demand
    wave lands *before* the storm, so the struck machines hold burst VMs
    that genuinely have to migrate out.
    """

    name: str = "failure-storm"
    scope: str = "rack"

    def script(
        self, topology: FleetTopology, settings: ExperimentSettings, seed: int
    ) -> FleetScript:
        rng = DeterministicRng(seed).fork(f"fleet:{self.name}")
        start, window = _window(settings)
        if self.scope == "rack":
            victim = rng.choice(topology.racks())
            struck = topology.sites_in_rack(victim)
        elif self.scope == "power-domain":
            victim = rng.choice(topology.power_domains())
            struck = topology.sites_in_domain(victim)
        else:
            raise ExperimentError(f"unknown failure-storm scope {self.scope!r}")
        num_cores = settings.config().num_cores
        storm_start = start + window // 3
        spread = max(1, window // 8)
        repair = start + (7 * window) // 8
        events: List[FleetEvent] = [
            # Steady background load: one burst per machine, placed well
            # before the storm and staying well past it.
            BurstDemand(
                cycle=start + window // 8,
                vms=len(topology.sites),
                duration=(window * 5) // 8,
            )
        ]
        for site in struck:
            site_rng = rng.fork(f"storm:{site.name}")
            for count in range(num_cores // 2):
                events.append(
                    CoreOutage(
                        cycle=storm_start + site_rng.randint(0, spread),
                        machine=site.name,
                        # Retire the highest-numbered cores first, like the
                        # degradation schedule.
                        core_id=num_cores - 1 - count,
                        repair_cycle=repair,
                    )
                )
        return FleetScript.of(*events)


@dataclass(frozen=True)
class RollingUpgradeModel:
    """A staggered reliability-policy rollout across the fleet.

    Machines upgrade one after another at evenly spaced cycles (with a
    little seeded jitter); while a machine upgrades, its reliable guest
    runs unprotected -- the *exposure window* the fleet metrics report.
    """

    name: str = "rolling-upgrade"
    mode: str = "PERFORMANCE"

    def script(
        self, topology: FleetTopology, settings: ExperimentSettings, seed: int
    ) -> FleetScript:
        rng = DeterministicRng(seed).fork(f"fleet:{self.name}")
        start, window = _window(settings)
        machines = len(topology.sites)
        duration = max(1, window // (machines + 2))
        events: List[FleetEvent] = []
        for position, site in enumerate(topology.sites):
            jitter = rng.fork(f"upgrade:{site.name}").randint(0, duration // 4)
            events.append(
                ReliabilityUpgrade(
                    cycle=start + (position * window) // (machines + 1) + jitter,
                    machine=site.name,
                    duration=duration,
                    mode=self.mode,
                )
            )
        return FleetScript.of(*events)


#: Scenario name to model instance, in presentation order.
_SCENARIOS: Dict[str, object] = {
    model.name: model
    for model in (
        DiurnalModel(),
        FlashCrowdModel(),
        FailureStormModel(),
        RollingUpgradeModel(),
    )
}

#: The built-in scenario names, in presentation order.
SCENARIO_NAMES: Tuple[str, ...] = tuple(_SCENARIOS)


def scenario_model(name: str):
    """Look up one built-in scenario model by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIO_NAMES)
        raise ExperimentError(
            f"unknown fleet scenario {name!r} (known: {known})"
        ) from None
