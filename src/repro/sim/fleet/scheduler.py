"""The fleet scheduler: place demand, evacuate failures, stagger upgrades.

:class:`FleetScheduler` consumes a :class:`~repro.sim.fleet.traffic.FleetScript`
and produces a :class:`FleetPlan`: one :class:`MachinePlan` per machine --
its VM roster (the consolidated reliable/performance pair plus deferred
burst slots) and the :class:`~repro.sim.timeline.Timeline` of everything
that happens to it -- plus the scheduler-level counters the fleet metrics
report (migrations, dropped placements, upgrade exposure).

The policy is deliberately simple and fully deterministic:

* **placement** -- each burst VM goes to the machine with the fewest failed
  cores, then the fewest active bursts, then the lowest fleet index, that
  has a burst slot free for the VM's whole stay;
* **evacuation** -- when a machine's failed-core count reaches half its
  cores, every burst VM still on it migrates to the best machine *outside
  the failing rack* (``VmDeparted`` on the source, ``VmArrived`` on the
  destination, same cycle); a burst with nowhere to go is dropped;
* **upgrades** -- a :class:`~repro.sim.fleet.traffic.ReliabilityUpgrade`
  becomes a ``ReliabilityModeChanged`` pair on the machine's reliable
  guest, and its exposure window is accounted to the machine.

Determinism matters more than cleverness here: the plan (and therefore
every per-machine timeline and job cache key) is a pure function of
``(topology, settings, script)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.fleet.cluster import FleetTopology, MachineSite
from repro.sim.fleet.traffic import (
    BurstDemand,
    CoreOutage,
    FleetScript,
    ReliabilityUpgrade,
)
from repro.sim.settings import ExperimentSettings
from repro.sim.timeline import (
    CoreFailed,
    CoreRepaired,
    ReliabilityModeChanged,
    Timeline,
    TimelineEvent,
    VmArrived,
    VmDeparted,
)

__all__ = ["BURST_SLOTS", "FleetPlan", "FleetScheduler", "MachinePlan", "VmPlacement"]

#: Deferred burst-VM slots per machine (the per-machine consolidation
#: headroom demand bursts are placed into).
BURST_SLOTS = 2

#: Name of each machine's reliable guest (the upgrade target).
RELIABLE_VM = "reliable"


@dataclass(frozen=True)
class VmPlacement:
    """One VM in a machine's roster, as plain values."""

    name: str
    workload: str
    vcpus: int
    #: :class:`~repro.virt.vcpu.ReliabilityMode` member name.
    mode: str
    #: ``True`` for burst slots built ``present_at_start=False``.
    deferred: bool = False


@dataclass(frozen=True)
class MachinePlan:
    """One machine's share of a fleet run: roster, timeline and counters."""

    site: MachineSite
    roster: Tuple[VmPlacement, ...]
    timeline: Timeline
    #: Burst VMs that migrated onto / off this machine.
    migrations_in: int = 0
    migrations_out: int = 0
    #: Burst VMs originally placed here.
    placements: int = 0
    #: Cycles the reliable guest spent in the upgrade's unprotected mode.
    exposure_cycles: int = 0


@dataclass(frozen=True)
class FleetPlan:
    """The decomposed fleet run: one plan per machine, in fleet order."""

    machines: Tuple[MachinePlan, ...]
    #: Burst VMs with no machine to run on (cluster-full or storm loss).
    dropped: int = 0

    def machine(self, name: str) -> MachinePlan:
        for plan in self.machines:
            if plan.site.name == name:
                return plan
        raise KeyError(name)

    def total_migrations(self) -> int:
        """Fleet-wide migration count (each move counted once)."""
        return sum(plan.migrations_in for plan in self.machines)

    def total_exposure_cycles(self) -> int:
        """Fleet-wide upgrade exposure, summed over machines."""
        return sum(plan.exposure_cycles for plan in self.machines)


class _MachineState:
    """Mutable per-machine bookkeeping while a script is being planned."""

    def __init__(self, site: MachineSite) -> None:
        self.site = site
        # Burst-slot occupancy: slot name -> [(arrive, depart), ...].
        self.slots: Dict[str, List[Tuple[int, int]]] = {
            f"burst{index}": [] for index in range(BURST_SLOTS)
        }
        # (fail_cycle, repair_cycle or None) per outage.
        self.outages: List[Tuple[int, Optional[int]]] = []
        self.core_events: List[TimelineEvent] = []
        self.mode_events: List[TimelineEvent] = []
        self.migrations_in = 0
        self.migrations_out = 0
        self.placements = 0
        self.exposure_cycles = 0

    def failed_cores_at(self, cycle: int) -> int:
        """Cores out of service at ``cycle`` (repairs honoured)."""
        return sum(
            1
            for failed, repaired in self.outages
            if failed <= cycle and (repaired is None or repaired > cycle)
        )

    def active_bursts_at(self, cycle: int) -> int:
        return sum(
            1
            for intervals in self.slots.values()
            for arrive, depart in intervals
            if arrive <= cycle < depart
        )

    def free_slot(self, arrive: int, depart: int) -> Optional[str]:
        """The first burst slot with no interval overlapping [arrive, depart)."""
        for slot, intervals in self.slots.items():
            if all(depart <= a or d <= arrive for a, d in intervals):
                return slot
        return None


class FleetScheduler:
    """Plans one fleet script into independent per-machine simulations."""

    def __init__(self, topology: FleetTopology, settings: ExperimentSettings) -> None:
        self.topology = topology
        self.settings = settings
        self.num_cores = settings.config().num_cores

    # ------------------------------------------------------------------ #
    # Rosters
    # ------------------------------------------------------------------ #

    def roster(self, site: MachineSite) -> Tuple[VmPlacement, ...]:
        """The machine's VM roster: the consolidated pair plus burst slots.

        Every machine is the paper's MMM-TP consolidated server; base
        workloads rotate through the sweep's workload list so a fleet mixes
        the paper's services.
        """
        workloads = self.settings.workloads or ("apache",)
        workload = workloads[site.index % len(workloads)]
        cores = self.num_cores
        placements = [
            VmPlacement(
                name=RELIABLE_VM,
                workload=workload,
                vcpus=min(self.settings.reliable_vcpus, cores // 2),
                mode="RELIABLE",
            ),
            VmPlacement(
                name="performance",
                workload=workload,
                vcpus=cores,
                mode="PERFORMANCE",
            ),
        ]
        for index in range(BURST_SLOTS):
            placements.append(
                VmPlacement(
                    name=f"burst{index}",
                    workload=workload,
                    vcpus=max(1, cores // 4),
                    mode="PERFORMANCE",
                    deferred=True,
                )
            )
        return tuple(placements)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #

    def plan(self, script: FleetScript) -> FleetPlan:
        """React to the script's events and decompose the run per machine."""
        end = self.settings.warmup_cycles + self.settings.total_cycles
        states = {site.name: _MachineState(site) for site in self.topology.sites}
        dropped = 0

        for event in script.events:
            if isinstance(event, CoreOutage):
                dropped += self._apply_outage(states, event, end)
            elif isinstance(event, BurstDemand):
                dropped += self._apply_demand(states, event, end)
            elif isinstance(event, ReliabilityUpgrade):
                self._apply_upgrade(states, event, end)

        plans = tuple(
            self._materialise(states[site.name], end) for site in self.topology.sites
        )
        return FleetPlan(machines=plans, dropped=dropped)

    # -- event handlers ------------------------------------------------- #

    def _candidates(
        self, states: Dict[str, _MachineState], cycle: int
    ) -> List[_MachineState]:
        """Placement order: healthy first, then least loaded, then by index."""
        return sorted(
            states.values(),
            key=lambda state: (
                state.failed_cores_at(cycle),
                state.active_bursts_at(cycle),
                state.site.index,
            ),
        )

    def _apply_demand(
        self, states: Dict[str, _MachineState], event: BurstDemand, end: int
    ) -> int:
        if event.cycle >= end:
            return event.vms
        depart = min(event.cycle + event.duration, end)
        dropped = 0
        for _ in range(event.vms):
            placed = False
            for state in self._candidates(states, event.cycle):
                slot = state.free_slot(event.cycle, depart)
                if slot is not None:
                    state.slots[slot].append((event.cycle, depart))
                    state.placements += 1
                    placed = True
                    break
            if not placed:
                dropped += 1
        return dropped

    def _apply_outage(
        self, states: Dict[str, _MachineState], event: CoreOutage, end: int
    ) -> int:
        state = states[event.machine]
        if event.cycle >= end:
            return 0
        repair = event.repair_cycle if (event.repair_cycle or 0) < end else None
        state.outages.append((event.cycle, repair))
        state.core_events.append(CoreFailed(cycle=event.cycle, core_id=event.core_id))
        if repair is not None:
            state.core_events.append(CoreRepaired(cycle=repair, core_id=event.core_id))
        if state.failed_cores_at(event.cycle) * 2 >= self.num_cores:
            return self._evacuate(states, state, event.cycle)
        return 0

    def _evacuate(
        self, states: Dict[str, _MachineState], source: _MachineState, cycle: int
    ) -> int:
        """Move every current and future burst off a half-failed machine."""
        dropped = 0
        for slot, intervals in source.slots.items():
            kept: List[Tuple[int, int]] = []
            for arrive, depart in intervals:
                if depart <= cycle:
                    kept.append((arrive, depart))  # already gone
                    continue
                move = max(arrive, cycle)
                target = self._evacuation_target(states, source, move, depart)
                if arrive < cycle:
                    kept.append((arrive, cycle))  # drain at the outage
                if target is None:
                    dropped += 1
                    continue
                target_state, target_slot = target
                target_state.slots[target_slot].append((move, depart))
                target_state.migrations_in += 1
                source.migrations_out += 1
            source.slots[slot] = kept
        return dropped

    def _evacuation_target(
        self,
        states: Dict[str, _MachineState],
        source: _MachineState,
        arrive: int,
        depart: int,
    ) -> Optional[Tuple[_MachineState, str]]:
        """The best machine outside the failing rack with a free slot."""
        for state in self._candidates(states, arrive):
            if state.site.rack == source.site.rack:
                continue
            if state.failed_cores_at(arrive) * 2 >= self.num_cores:
                continue
            slot = state.free_slot(arrive, depart)
            if slot is not None:
                return state, slot
        return None

    def _apply_upgrade(
        self, states: Dict[str, _MachineState], event: ReliabilityUpgrade, end: int
    ) -> None:
        state = states[event.machine]
        start = event.cycle
        if start >= end:
            return
        restore = min(start + event.duration, end)
        state.mode_events.append(
            ReliabilityModeChanged(cycle=start, vm_name=RELIABLE_VM, mode=event.mode)
        )
        if restore < end:
            state.mode_events.append(
                ReliabilityModeChanged(
                    cycle=restore, vm_name=RELIABLE_VM, mode="RELIABLE"
                )
            )
        state.exposure_cycles += restore - start

    # -- materialisation ------------------------------------------------ #

    def _materialise(self, state: _MachineState, end: int) -> MachinePlan:
        events: List[TimelineEvent] = list(state.core_events)
        for slot in sorted(state.slots):
            for arrive, depart in sorted(state.slots[slot]):
                if arrive >= depart:
                    continue
                events.append(VmArrived(cycle=arrive, vm_name=slot))
                if depart < end:
                    events.append(VmDeparted(cycle=depart, vm_name=slot))
        events += state.mode_events
        return MachinePlan(
            site=state.site,
            roster=self.roster(state.site),
            timeline=Timeline.of(*events),
            migrations_in=state.migrations_in,
            migrations_out=state.migrations_out,
            placements=state.placements,
            exposure_cycles=state.exposure_cycles,
        )
