"""The fleet's physical layout: machines grouped into racks and power domains.

A :class:`FleetTopology` is a plain value describing *where* machines sit,
which is what scopes correlated failures: a failure storm strikes one rack
(a shared switch, a cooling failure) or one power domain (adjacent rack
pairs fed by the same distribution unit), and the scheduler evacuates
across that boundary.  Machine names are deterministic (``r0m0``, ``r0m1``,
... rack by rack), so scenario scripts, per-machine timelines and job cache
keys are stable for a given (machines, racks) shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ExperimentError

__all__ = ["FleetTopology", "MachineSite"]


@dataclass(frozen=True)
class MachineSite:
    """One machine's slot in the fleet: its name and failure domains."""

    #: Deterministic machine name, ``r<rack>m<slot>``.
    name: str
    #: Rack the machine is mounted in (``rack0``, ``rack1``, ...).
    rack: str
    #: Power domain feeding the rack; adjacent rack pairs share one.
    power_domain: str
    #: Fleet-wide machine index (placement tie-break order).
    index: int


@dataclass(frozen=True)
class FleetTopology:
    """A fleet of machines, grouped into racks and power domains."""

    sites: Tuple[MachineSite, ...]
    num_racks: int

    @classmethod
    def build(cls, num_machines: int, num_racks: int) -> "FleetTopology":
        """Lay out ``num_machines`` across ``num_racks`` contiguous racks.

        Machines fill racks evenly (earlier racks take the remainder), each
        rack is one failure scope, and rack pairs ``(0, 1)``, ``(2, 3)``, ...
        share a power domain.
        """
        if num_machines < 1:
            raise ExperimentError("a fleet needs at least one machine")
        if num_racks < 1 or num_racks > num_machines:
            raise ExperimentError(
                f"cannot spread {num_machines} machine(s) over {num_racks} rack(s)"
            )
        per_rack, remainder = divmod(num_machines, num_racks)
        sites = []
        index = 0
        for rack_index in range(num_racks):
            slots = per_rack + (1 if rack_index < remainder else 0)
            for slot in range(slots):
                sites.append(
                    MachineSite(
                        name=f"r{rack_index}m{slot}",
                        rack=f"rack{rack_index}",
                        power_domain=f"pd{rack_index // 2}",
                        index=index,
                    )
                )
                index += 1
        return cls(sites=tuple(sites), num_racks=num_racks)

    def machines(self) -> Tuple[str, ...]:
        """Every machine name, in fleet order."""
        return tuple(site.name for site in self.sites)

    def site(self, name: str) -> MachineSite:
        """Look up one machine's site by name."""
        for site in self.sites:
            if site.name == name:
                return site
        raise ExperimentError(f"fleet has no machine named {name!r}")

    def racks(self) -> Tuple[str, ...]:
        """Every rack name, in order."""
        seen: Dict[str, None] = {}
        for site in self.sites:
            seen.setdefault(site.rack, None)
        return tuple(seen)

    def power_domains(self) -> Tuple[str, ...]:
        """Every power-domain name, in order."""
        seen: Dict[str, None] = {}
        for site in self.sites:
            seen.setdefault(site.power_domain, None)
        return tuple(seen)

    def sites_in_rack(self, rack: str) -> Tuple[MachineSite, ...]:
        """The machines mounted in one rack."""
        return tuple(site for site in self.sites if site.rack == rack)

    def sites_in_domain(self, power_domain: str) -> Tuple[MachineSite, ...]:
        """The machines fed by one power domain."""
        return tuple(site for site in self.sites if site.power_domain == power_domain)
