"""Plain-text reporting for the reproduction experiments.

:func:`full_report` runs every experiment and stitches their tables into one
document -- this is what the ``EXPERIMENTS.md`` measurements were generated
with, and what the benchmark harness prints so results can be compared to the
paper side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import TextTable
from repro.config.presets import paper_system_config
from repro.faults.campaign import FaultInjectionCampaign
from repro.faults.outcomes import CoverageReport
from repro.sim.experiments import ExperimentSettings, run_all_experiments
from repro.sim.runner import ExperimentRunner


def format_coverage_reports(reports: List[CoverageReport]) -> str:
    """Render the fault-injection coverage comparison."""
    table = TextTable(
        ["configuration", "trials", "coverage", "silent corruption rate"],
        title="Fault-injection coverage (fraction of faults from which reliable state was protected)",
    )
    for report in reports:
        table.add_row(
            [report.configuration, report.total, report.coverage, report.silent_corruption_rate]
        )
    return table.render()


def fault_coverage_report(trials_per_site: int = 25, seed: int = 0) -> str:
    """Run the default fault-injection campaign and render its summary."""
    campaign = FaultInjectionCampaign(config=paper_system_config(), seed=seed)
    return format_coverage_reports(campaign.run(trials_per_site=trials_per_site))


def full_report(
    settings: Optional[ExperimentSettings] = None,
    include_switching: bool = True,
    include_ablation: bool = True,
    include_faults: bool = True,
    runner: Optional[ExperimentRunner] = None,
) -> str:
    """Run every experiment and return one combined plain-text report.

    The simulation experiments go through :func:`run_all_experiments` as one
    job batch, so a parallel runner overlaps cells across experiments and a
    warm cache serves the whole report without simulating anything.  The
    fault-injection campaign is not cell-shaped and still runs inline.
    """
    settings = settings or ExperimentSettings()
    everything = run_all_experiments(
        settings,
        runner=runner,
        include_switching=include_switching,
        include_ablation=include_ablation,
    )
    sections: List[str] = everything.sections()
    if include_faults:
        sections.append(fault_coverage_report())
    return "\n\n".join(sections)
