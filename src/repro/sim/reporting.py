"""Plain-text reporting for the reproduction experiments.

:func:`full_report` runs every experiment and stitches their tables into one
document -- this is what the ``EXPERIMENTS.md`` measurements were generated
with, and what the benchmark harness prints so results can be compared to the
paper side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import TextTable
from repro.faults.outcomes import CoverageReport
from repro.sim.experiments import (
    FAULT_COVERAGE_TITLE,
    ExperimentSettings,
    run_all_experiments,
    run_fault_coverage_experiment,
)
from repro.sim.runner import ExperimentRunner


def format_coverage_reports(reports: List[CoverageReport]) -> str:
    """Render a fault-injection coverage comparison from raw reports."""
    table = TextTable(
        ["configuration", "trials", "coverage", "silent corruption rate"],
        title=FAULT_COVERAGE_TITLE,
    )
    for report in reports:
        table.add_row(
            [report.configuration, report.total, report.coverage, report.silent_corruption_rate]
        )
    return table.render()


def fault_coverage_report(
    trials_per_site: int = 25,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> str:
    """Run the default fault-injection campaign and render its summary.

    A thin convenience wrapper over
    :func:`~repro.sim.experiments.run_fault_coverage_experiment` (single
    seed, default configurations): the campaign cells run through the
    experiment engine like every other experiment.
    """
    result = run_fault_coverage_experiment(
        trials_per_site=trials_per_site, seeds=(seed,), runner=runner
    )
    return format_coverage_reports(result.reports())


def full_report(
    settings: Optional[ExperimentSettings] = None,
    include_switching: bool = True,
    include_ablation: bool = True,
    include_faults: bool = True,
    runner: Optional[ExperimentRunner] = None,
) -> str:
    """Run every experiment and return one combined plain-text report.

    Everything -- the simulation experiments *and* the fault-injection
    campaign -- goes through :func:`run_all_experiments` as one job batch,
    so a parallel runner overlaps cells across experiments and a warm cache
    serves the whole report without simulating or injecting anything.
    """
    settings = settings or ExperimentSettings()
    everything = run_all_experiments(
        settings,
        runner=runner,
        include_switching=include_switching,
        include_ablation=include_ablation,
        include_faults=include_faults,
    )
    return everything.render()
