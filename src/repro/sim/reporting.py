"""Plain-text reporting for the reproduction experiments.

:func:`full_report` runs every experiment and stitches their tables into one
document -- this is what the ``EXPERIMENTS.md`` measurements were generated
with, and what the benchmark harness prints so results can be compared to the
paper side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import TextTable
from repro.config.presets import paper_system_config
from repro.faults.campaign import FaultInjectionCampaign
from repro.faults.outcomes import CoverageReport
from repro.sim.experiments import (
    ExperimentSettings,
    run_dmr_overhead_experiment,
    run_mixed_mode_experiment,
    run_pab_latency_study,
    run_single_os_overhead_study,
    run_switch_frequency_experiment,
    run_switch_overhead_experiment,
    run_window_ablation,
)


def format_coverage_reports(reports: List[CoverageReport]) -> str:
    """Render the fault-injection coverage comparison."""
    table = TextTable(
        ["configuration", "trials", "coverage", "silent corruption rate"],
        title="Fault-injection coverage (fraction of faults from which reliable state was protected)",
    )
    for report in reports:
        table.add_row(
            [report.configuration, report.total, report.coverage, report.silent_corruption_rate]
        )
    return table.render()


def fault_coverage_report(trials_per_site: int = 25, seed: int = 0) -> str:
    """Run the default fault-injection campaign and render its summary."""
    campaign = FaultInjectionCampaign(config=paper_system_config(), seed=seed)
    return format_coverage_reports(campaign.run(trials_per_site=trials_per_site))


def full_report(
    settings: Optional[ExperimentSettings] = None,
    include_switching: bool = True,
    include_ablation: bool = True,
    include_faults: bool = True,
) -> str:
    """Run every experiment and return one combined plain-text report."""
    settings = settings or ExperimentSettings()
    sections: List[str] = []

    figure5 = run_dmr_overhead_experiment(settings)
    sections.append(figure5.format_ipc_table())
    sections.append(figure5.format_throughput_table())

    figure6 = run_mixed_mode_experiment(settings)
    sections.append(figure6.format_ipc_table())
    sections.append(figure6.format_throughput_table())

    pab = run_pab_latency_study(settings)
    sections.append(pab.format_table())

    if include_switching:
        table1 = run_switch_overhead_experiment(settings.workloads)
        sections.append(table1.format_table())
        table2 = run_switch_frequency_experiment(settings.workloads)
        sections.append(table2.format_table())
        single_os = run_single_os_overhead_study(table1, table2, settings.workloads)
        sections.append(single_os.format_table())

    if include_ablation:
        ablation = run_window_ablation(settings.with_workloads(settings.workloads[:2]))
        sections.append(ablation.format_table())

    if include_faults:
        sections.append(fault_coverage_report())

    return "\n\n".join(sections)
