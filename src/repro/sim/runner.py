"""Parallel experiment execution with an on-disk result cache.

:class:`ExperimentRunner` executes batches of
:class:`~repro.sim.jobs.ExperimentJob` cells either serially (``jobs=1``) or
fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs=N``).  Because every job is a plain-value description of its cell and
every cell is seeded deterministically, the two paths produce identical
results; the determinism tests in ``tests/test_runner.py`` assert exactly
that contract.

Results are memoised twice:

* **in memory** for the lifetime of the runner (a batch that enumerates the
  same cell twice simulates it once), and
* **on disk** (optional) as one JSON file per cell under
  ``<cache_dir>/<kind>/<cache_key>.json``, written as each cell completes,
  so a re-run after an interrupted or extended sweep only executes the
  cells that are missing or whose description changed.  The cache key is a
  SHA-256 digest over the *full* cell description (settings, configuration,
  seed, kind-specific parameters, schema version) *and* a fingerprint of
  the ``repro`` package's source code, so results simulated by different
  code can never be served as current.

``runner.stats`` records how many cells were executed versus served from the
caches; the warm-cache tests assert ``executed == 0`` on a second run.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExperimentError
from repro.sim.jobs import CACHE_SCHEMA_VERSION, ExperimentJob, execute_job

#: A cell result: metric name to JSON-serializable value.  Simulation cells
#: return plain floats; other registered kinds may return nested structures
#: (fault-campaign cells return their serialized trial records), as long as
#: a ``json`` round trip reproduces the value exactly.
JsonValue = Union[None, bool, int, float, str, List["JsonValue"], Dict[str, "JsonValue"]]
Metrics = Dict[str, JsonValue]

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The on-disk cache location used when none is given explicitly."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class RunnerStats:
    """How a batch (or a runner lifetime) was served."""

    #: Cells actually simulated.
    executed: int = 0
    #: Cells served from the on-disk cache.
    cached: int = 0
    #: Cells served from the runner's in-memory memo (duplicates included).
    memoized: int = 0

    @property
    def total(self) -> int:
        """Total cell requests."""
        return self.executed + self.cached + self.memoized

    def summary(self) -> str:
        """One-line human-readable account of the batch."""
        return (
            f"{self.executed} executed, {self.cached} from cache, "
            f"{self.memoized} memoized"
        )


class ResultCache:
    """One-JSON-file-per-cell result store keyed by the job's cache key."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def path_for(self, job: ExperimentJob) -> Path:
        """Where the given cell's result lives (whether or not it exists)."""
        return self.directory / job.kind / f"{job.cache_key()}.json"

    def load(self, job: ExperimentJob) -> Optional[Metrics]:
        """Return the cached metrics for ``job``, or ``None`` on a miss.

        Corrupt or incompatible entries are treated as misses rather than
        errors -- a load never raises, and the subsequent :meth:`store`
        simply overwrites the bad file.  This covers truncated writes from a
        run killed mid-flight, non-JSON garbage, undecodable bytes, schema
        changes, and well-formed JSON that is not a result object at all.
        """
        path = self.path_for(job)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("key") != job.cache_key():
            return None
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict):
            return None
        return metrics

    def store(self, job: ExperimentJob, metrics: Metrics) -> None:
        """Persist one cell's metrics (atomically, via rename)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": job.cache_key(),
            "job": job.to_dict(),
            "metrics": metrics,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8")
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every cached entry; return how many files were removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


class ExperimentRunner:
    """Executes job batches serially or over a process pool, with caching."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: Optional[bool] = None,
        executor: Callable[[ExperimentJob], Metrics] = execute_job,
    ) -> None:
        if jobs < 1:
            raise ExperimentError("an ExperimentRunner needs at least one worker")
        self.jobs = jobs
        #: Caching defaults to "on exactly when a cache directory was given";
        #: pass ``use_cache=True`` to enable it at the default location.
        if use_cache is None:
            use_cache = cache_dir is not None
        self.cache = (
            ResultCache(cache_dir if cache_dir is not None else default_cache_dir())
            if use_cache
            else None
        )
        self._executor = executor
        self._memo: Dict[ExperimentJob, Metrics] = {}
        self.stats = RunnerStats()

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def run_jobs(
        self, jobs: Sequence[ExperimentJob]
    ) -> Dict[ExperimentJob, Metrics]:
        """Execute a batch and return ``{job: metrics}`` for every cell.

        Duplicate jobs within the batch are simulated once.  Cells already
        known to the in-memory memo or the on-disk cache are not re-run;
        only the remaining cells are executed, in parallel when the runner
        was built with ``jobs > 1``.
        """
        pending: List[ExperimentJob] = []
        seen: set = set()
        for job in jobs:
            if job in self._memo:
                self.stats.memoized += 1
                continue
            if job in seen:
                self.stats.memoized += 1
                continue
            if self.cache is not None:
                hit = self.cache.load(job)
                if hit is not None:
                    self._memo[job] = hit
                    self.stats.cached += 1
                    continue
            seen.add(job)
            pending.append(job)

        # Results are recorded (and written to the cache) as each cell
        # completes, not after the whole batch: an interrupted or partially
        # failed sweep keeps everything that finished, so the re-run only
        # executes the remaining cells.
        for job, metrics in self._execute(pending):
            self._memo[job] = metrics
            if self.cache is not None:
                self.cache.store(job, metrics)
            self.stats.executed += 1

        return {job: self._memo[job] for job in jobs}

    def run_job(self, job: ExperimentJob) -> Metrics:
        """Execute (or recall) a single cell."""
        return self.run_jobs([job])[job]

    def _execute(
        self, pending: Sequence[ExperimentJob]
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for job in pending:
                yield job, self._executor(job)
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(self._executor, job): job for job in pending}
            for future in as_completed(futures):
                yield futures[future], future.result()


# ---------------------------------------------------------------------- #
# Default runner plumbing
# ---------------------------------------------------------------------- #

#: The runner used by experiment entry points when none is passed explicitly.
#: Serial and uncached by default, so plain library calls keep their
#: historical behaviour; the CLI and the benchmark harness install richer
#: runners via :func:`set_default_runner` / :func:`using_runner`.
_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """The currently installed default runner (serial/uncached fallback)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(jobs=1, use_cache=False)
    return _default_runner


def set_default_runner(runner: Optional[ExperimentRunner]) -> None:
    """Install (or, with ``None``, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner


@contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Temporarily install ``runner`` as the default within a ``with`` block."""
    previous = _default_runner
    set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)
