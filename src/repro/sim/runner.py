"""Parallel experiment execution with an on-disk result cache.

:class:`ExperimentRunner` executes batches of
:class:`~repro.sim.jobs.ExperimentJob` cells through a pluggable
:class:`RunnerBackend`:

* ``serial`` -- in the calling process, one cell at a time;
* ``process`` -- fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* ``thread`` -- fanned out over a
  :class:`concurrent.futures.ThreadPoolExecutor` (cheap to spin up, no
  pickling; the right choice for executors that release the GIL or for
  smoke-testing the fan-out plumbing).

Backends are chosen by name (``ExperimentRunner(jobs=4, backend="thread")``,
``--backend`` on the CLI) and live in a registry
(:func:`register_runner_backend`), which is the seam for future back-ends --
a distributed runner only has to map a list of pending cells to their
metrics and plug itself in; the runner's caching, memoisation and stats stay
unchanged.  Because every job is a plain-value description of its cell and
every cell is seeded deterministically, all backends produce byte-identical
results; the determinism tests in ``tests/test_runner.py`` and
``tests/test_specs.py`` assert exactly that contract.

Results are memoised twice:

* **in memory** for the lifetime of the runner (a batch that enumerates the
  same cell twice simulates it once), and
* **on disk** (optional) through a result store from
  :mod:`repro.sim.store` -- by default the packed segment store
  (append-only segment files plus a per-kind manifest; see that module
  for the format), probed and written through its *batched* APIs: the
  cache-hit phase probes the whole batch at once, and the execute phase
  stores completed cells in chunks (one append + one ``fsync`` per
  chunk).  Cells still land in the cache as their chunk completes, so a
  re-run after an interrupted or extended sweep only executes the cells
  that are missing or whose description changed.  The cache key is a
  SHA-256 digest over the *full* cell description (settings, configuration,
  seed, kind-specific parameters, schema version) *and* a fingerprint of
  the ``repro`` package's source code, so results simulated by different
  code can never be served as current.

``runner.stats`` records how many cells were executed versus served from the
caches; the warm-cache tests assert ``executed == 0`` on a second run.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import ExperimentError
from repro.sim.jobs import CACHE_SCHEMA_VERSION, ExperimentJob, execute_job

# Result stores live in repro.sim.store; re-exported here because this
# module has always been their import location.
from repro.sim.store import (  # noqa: F401  (re-exports)
    CACHE_DIR_ENV,
    CACHE_LAYOUT_ENV,
    DEFAULT_CACHE_DIR,
    AnyResultCache,
    CacheCompactResult,
    CacheKindStats,
    CacheMigrateResult,
    CachePruneResult,
    JsonValue,
    LegacyResultCache,
    Metrics,
    ResultCache,
    _entry_schema_version,
    default_cache_dir,
    make_result_cache,
)


@dataclass
class RunnerStats:
    """How a batch (or a runner lifetime) was served, and how long it took."""

    #: Cells actually simulated.
    executed: int = 0
    #: Cells served from the on-disk cache.
    cached: int = 0
    #: Cells served from the runner's in-memory memo (duplicates included).
    memoized: int = 0
    #: Wall-clock seconds spent in timed engine phases (they are sequential,
    #: so this is the engine's end-to-end wall time).
    wall_seconds: float = 0.0
    #: Per-phase wall-clock seconds, in first-entry order.  The standard
    #: phases are ``enumerate`` (specs producing jobs), ``cache-hit`` (the
    #: memo and on-disk cache probes), ``execute`` (the backend running
    #: pending cells) and ``assemble`` (folding metrics into frames), so a
    #: backend speedup -- or a cache regression -- is measurable from any
    #: invocation's end-of-run summary.
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total cell requests."""
        return self.executed + self.cached + self.memoized

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named engine phase (re-entry accumulates)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            self.wall_seconds += elapsed

    def summary(self) -> str:
        """One-line human-readable account of the batch."""
        line = (
            f"{self.executed} executed, {self.cached} from cache, "
            f"{self.memoized} memoized"
        )
        if self.phase_seconds:
            phases = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in self.phase_seconds.items()
            )
            line += f" | {self.wall_seconds:.2f}s wall ({phases})"
        return line

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (the CLI's stderr stats line)."""
        return {
            "executed": self.executed,
            "cached": self.cached,
            "memoized": self.memoized,
            "total": self.total,
            "wall_seconds": round(self.wall_seconds, 6),
            "phases": {
                name: round(seconds, 6)
                for name, seconds in self.phase_seconds.items()
            },
        }


# ---------------------------------------------------------------------- #
# Runner backends
# ---------------------------------------------------------------------- #

#: A cell executor: one job in, its metrics out.
JobExecutor = Callable[[ExperimentJob], Metrics]

#: Upper bound on jobs shipped per IPC round / distributed lease.  Large
#: enough to amortise the per-round overhead on tiny quick-grid cells,
#: small enough that one slow chunk cannot serialise the tail of a sweep.
MAX_CHUNK_SIZE = 16

#: How many chunks each worker should see on average.  Oversubscription
#: keeps the pool load-balanced when cell costs vary (fault campaigns
#: next to two-parameter sweep cells): a straggler holds back one small
#: chunk, not a worker-sized share of the batch.
CHUNK_OVERSUBSCRIPTION = 4


def adaptive_chunk_size(
    pending: int,
    workers: int,
    max_chunk: int = MAX_CHUNK_SIZE,
    oversubscribe: int = CHUNK_OVERSUBSCRIPTION,
) -> int:
    """Jobs per IPC round (or per distributed lease) for a batch.

    Scales the chunk with batch size so tiny cells amortise per-round
    overhead, while keeping at least ``workers * oversubscribe`` chunks in
    flight for load balancing.  Always at least 1.
    """
    if pending <= 0:
        return 1
    slots = max(1, workers) * max(1, oversubscribe)
    return max(1, min(max_chunk, math.ceil(pending / slots)))


def adaptive_chunks(
    jobs: Sequence[ExperimentJob],
    workers: int,
    max_chunk: int = MAX_CHUNK_SIZE,
    oversubscribe: int = CHUNK_OVERSUBSCRIPTION,
) -> Iterator[List[ExperimentJob]]:
    """Split a batch into adaptively sized contiguous chunks.

    Shared between the ``process`` backend (one chunk per pool submit) and
    the distributed coordinator (one chunk per worker lease).
    """
    size = adaptive_chunk_size(len(jobs), workers, max_chunk, oversubscribe)
    for start in range(0, len(jobs), size):
        yield list(jobs[start : start + size])


def _execute_job_chunk(
    executor: JobExecutor, jobs: Sequence[ExperimentJob]
) -> List[Metrics]:
    """Run one chunk of cells in order (module-level: must pickle)."""
    return [executor(job) for job in jobs]


class RunnerBackend:
    """How a batch of pending (uncached) cells is executed.

    A backend maps ``(executor, pending, workers)`` to an iterable of
    ``(job, metrics)`` pairs, yielding each cell's result as it completes so
    the runner can record and cache it immediately (an interrupted sweep
    keeps everything that finished).  Pairs may arrive in any order.

    Subclass and :func:`register_runner_backend` to plug in new execution
    substrates -- a distributed backend that ships job descriptions to
    remote workers implements exactly this one method.
    """

    #: Registry name; also what ``--backend`` and ``RunnerStats`` report.
    name: str = "abstract"

    def execute(
        self,
        executor: JobExecutor,
        pending: Sequence[ExperimentJob],
        workers: int,
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        raise NotImplementedError


class SerialBackend(RunnerBackend):
    """Execute every cell in the calling process, in enumeration order."""

    name = "serial"

    def execute(
        self,
        executor: JobExecutor,
        pending: Sequence[ExperimentJob],
        workers: int,
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        for job in pending:
            yield job, executor(job)


class _PoolBackend(RunnerBackend):
    """Shared fan-out loop of the executor-pool backends."""

    pool_type: Type[Executor]

    def execute(
        self,
        executor: JobExecutor,
        pending: Sequence[ExperimentJob],
        workers: int,
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        if len(pending) == 1:
            # Local execution is always valid for a pool backend, and one
            # cell is not worth the pool spin-up.
            yield pending[0], executor(pending[0])
            return
        workers = max(1, min(workers, len(pending)))
        with self.pool_type(max_workers=workers) as pool:
            futures = {pool.submit(executor, job): job for job in pending}
            for future in as_completed(futures):
                yield futures[future], future.result()


class ProcessBackend(_PoolBackend):
    """Fan cells out over worker processes (true CPU parallelism; jobs and
    metrics cross the process boundary by pickling).

    Cells are shipped in adaptive chunks -- one pickled round trip per
    :func:`adaptive_chunks` slice rather than per cell -- so quick-grid
    batches of tiny cells are not dominated by IPC overhead.  Results
    still stream back per chunk as each completes, preserving the
    record-as-you-go contract for interrupted sweeps.
    """

    name = "process"
    pool_type = ProcessPoolExecutor

    def execute(
        self,
        executor: JobExecutor,
        pending: Sequence[ExperimentJob],
        workers: int,
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        if len(pending) == 1:
            # Local execution is always valid for a pool backend, and one
            # cell is not worth the pool spin-up.
            yield pending[0], executor(pending[0])
            return
        workers = max(1, min(workers, len(pending)))
        chunks = list(adaptive_chunks(pending, workers))
        with self.pool_type(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_job_chunk, executor, chunk): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                chunk = futures[future]
                for job, metrics in zip(chunk, future.result()):
                    yield job, metrics


class ThreadBackend(_PoolBackend):
    """Fan cells out over threads in this process (no pickling, instant
    startup; concurrency is limited by the GIL for pure-Python executors)."""

    name = "thread"
    pool_type = ThreadPoolExecutor


_BACKENDS: Dict[str, Callable[[], RunnerBackend]] = {}


def register_runner_backend(
    name: str, factory: Callable[[], RunnerBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name`` (the ``--backend`` value)."""
    if name in _BACKENDS and not replace:
        raise ExperimentError(f"runner backend {name!r} is already registered")
    _BACKENDS[name] = factory


def registered_backends() -> Tuple[str, ...]:
    """The backend names a runner (and ``--backend``) can be built with."""
    return tuple(sorted(_BACKENDS))


def backend_by_name(name: str) -> RunnerBackend:
    """Instantiate the registered backend called ``name``."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(registered_backends()) or "none"
        raise ExperimentError(
            f"unknown runner backend {name!r} (registered backends: {known})"
        ) from None
    return factory()


def _distributed_backend_factory() -> RunnerBackend:
    # Imported lazily: the distributed package imports this module for the
    # chunker and cache, and most invocations never touch the backend.
    from repro.sim.distributed.backend import DistributedBackend, coordinator_from_env

    return DistributedBackend(coordinator_from_env())


register_runner_backend("serial", SerialBackend)
register_runner_backend("process", ProcessBackend)
register_runner_backend("thread", ThreadBackend)
register_runner_backend("distributed", _distributed_backend_factory)


class ExperimentRunner:
    """Executes job batches through a runner backend, with caching."""

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: Optional[bool] = None,
        executor: JobExecutor = execute_job,
        backend: Union[None, str, RunnerBackend] = None,
        cache: Optional[AnyResultCache] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError("an ExperimentRunner needs at least one worker")
        self.jobs = jobs
        #: ``backend=None`` keeps the historical behaviour: serial with one
        #: worker, a process pool with more.
        if backend is None:
            backend = "serial" if jobs == 1 else "process"
        if isinstance(backend, str):
            backend = backend_by_name(backend)
        self.backend = backend
        #: ``cache=`` accepts a ready-made store object (any layout);
        #: otherwise caching defaults to "on exactly when a cache directory
        #: was given" (``use_cache=True`` enables it at the default
        #: location), built by :func:`make_result_cache` so the layout
        #: honours ``REPRO_CACHE_LAYOUT``.
        if cache is not None:
            self.cache: Optional[AnyResultCache] = cache
        else:
            if use_cache is None:
                use_cache = cache_dir is not None
            self.cache = make_result_cache(cache_dir) if use_cache else None
        self._executor = executor
        self._memo: Dict[ExperimentJob, Metrics] = {}
        self.stats = RunnerStats()

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def run_jobs(
        self, jobs: Sequence[ExperimentJob]
    ) -> Dict[ExperimentJob, Metrics]:
        """Execute a batch and return ``{job: metrics}`` for every cell.

        Duplicate jobs within the batch are simulated once.  Cells already
        known to the in-memory memo or the on-disk cache are not re-run;
        only the remaining cells are executed, in parallel when the runner
        was built with ``jobs > 1``.
        """
        pending: List[ExperimentJob] = []
        seen: set = set()
        with self.stats.phase("cache-hit"):
            fresh: List[ExperimentJob] = []
            for job in jobs:
                if job in self._memo or job in seen:
                    self.stats.memoized += 1
                    continue
                seen.add(job)
                fresh.append(job)
            if self.cache is not None and fresh:
                # One batched probe for the whole batch: one index lookup
                # per cell instead of one file open per cell.
                hits = self.cache.load_many(fresh)
                for job in fresh:
                    metrics = hits.get(job)
                    if metrics is not None:
                        self._memo[job] = metrics
                        self.stats.cached += 1
                    else:
                        pending.append(job)
            else:
                pending = fresh

        # Results are recorded (and written to the cache) as each chunk of
        # cells completes, not after the whole batch: an interrupted or
        # partially failed sweep keeps everything that finished (the
        # ``finally`` flushes the in-flight chunk), so the re-run only
        # executes the remaining cells.
        if pending:
            with self.stats.phase("execute"):
                chunk: List[Tuple[ExperimentJob, Metrics]] = []
                try:
                    for job, metrics in self._execute(pending):
                        self._memo[job] = metrics
                        self.stats.executed += 1
                        if self.cache is not None:
                            chunk.append((job, metrics))
                            if len(chunk) >= MAX_CHUNK_SIZE:
                                self.cache.store_many(chunk)
                                chunk = []
                finally:
                    if self.cache is not None:
                        if chunk:
                            self.cache.store_many(chunk)
                        self.cache.flush()

        return {job: self._memo[job] for job in jobs}

    def run_job(self, job: ExperimentJob) -> Metrics:
        """Execute (or recall) a single cell."""
        return self.run_jobs([job])[job]

    def _execute(
        self, pending: Sequence[ExperimentJob]
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        if not pending:
            return
        # Every pending cell goes through the backend -- a custom backend
        # (e.g. a remote-only distributed runner) must see single-cell
        # batches too; the built-in pool backends skip the pool themselves
        # when one cell is not worth it.
        yield from self.backend.execute(self._executor, pending, self.jobs)


# ---------------------------------------------------------------------- #
# Default runner plumbing
# ---------------------------------------------------------------------- #

#: The runner used by experiment entry points when none is passed explicitly.
#: Serial and uncached by default, so plain library calls keep their
#: historical behaviour; the CLI and the benchmark harness install richer
#: runners via :func:`set_default_runner` / :func:`using_runner`.
_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """The currently installed default runner (serial/uncached fallback)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(jobs=1, use_cache=False)
    return _default_runner


def set_default_runner(runner: Optional[ExperimentRunner]) -> None:
    """Install (or, with ``None``, reset) the process-wide default runner."""
    global _default_runner
    _default_runner = runner


@contextmanager
def using_runner(runner: ExperimentRunner) -> Iterator[ExperimentRunner]:
    """Temporarily install ``runner`` as the default within a ``with`` block."""
    previous = _default_runner
    set_default_runner(runner)
    try:
        yield runner
    finally:
        set_default_runner(previous)
