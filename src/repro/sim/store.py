"""On-disk result stores: the packed segment store and the legacy per-file one.

The experiment engine persists one JSON record per finished cell.  Two
layouts implement the same cache interface:

* :class:`ResultCache` -- the **packed segment store** (the default).
  Records append to size-bounded *segment files* under
  ``<cache_dir>/<kind>/segments/``, each record framed with a
  length/CRC32 header so a torn tail from a killed writer is detected
  and cleanly ignored.  A per-kind *manifest*
  (``segments/manifest.json``) maps ``key -> (segment, offset, length,
  version, ts)`` and is loaded once per process; if it is missing or
  stale the index is rebuilt by scanning the segments' unvouched tails.
  Batched APIs (:meth:`ResultCache.load_many`,
  :meth:`ResultCache.store_many`) cost one append and one ``fsync`` per
  *chunk*, not per cell -- the storage analogue of the engine's batched
  execute path.
* :class:`LegacyResultCache` -- the historical one-file-per-cell layout
  (``<cache_dir>/<kind>/<key>.json``, atomic write+fsync+rename per
  cell).  Kept for benchmarking and as a migration source: the packed
  store *reads through* to legacy files it has no packed record for,
  and ``repro cache migrate`` packs them.

Concurrent-writer safety: every writer appends only to segment files it
created itself (``seg-<pid>-<n>.seg``, opened with ``O_EXCL``), so two
processes never interleave records; the manifest is published atomically
(tmp + fsync + rename) and only ever vouches for bytes the publisher
fsynced, so a reader that loses the manifest race merely re-scans a
tail.  Manifest publication is deferred (:meth:`ResultCache.flush`, plus
every :data:`PUBLISH_EVERY` records) because an unpublished record is
still durable -- the rebuild scan finds it.

:func:`make_result_cache` picks the layout (``REPRO_CACHE_LAYOUT`` or
``layout=``); :mod:`repro.sim.runner` re-exports everything here for
backwards compatibility.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
import zlib
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import ExperimentError
from repro.sim.jobs import CACHE_SCHEMA_VERSION, ExperimentJob

#: A cell result: metric name to JSON-serializable value.  Simulation cells
#: return plain floats; other registered kinds may return nested structures
#: (fault-campaign cells return their serialized trial records), as long as
#: a ``json`` round trip reproduces the value exactly.
JsonValue = Union[None, bool, int, float, str, List["JsonValue"], Dict[str, "JsonValue"]]
Metrics = Dict[str, JsonValue]

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment variable selecting the cache layout (``packed``/``legacy``).
CACHE_LAYOUT_ENV = "REPRO_CACHE_LAYOUT"

#: Compact JSON separators for every persisted/wire payload: cache records
#: carry no humans-read-this requirement, and the whitespace of the default
#: separators is pure size overhead (measured ~25% on quick-grid cells).
COMPACT_SEPARATORS = (",", ":")

#: Sub-directory of a kind directory holding its segment files + manifest.
SEGMENT_DIR_NAME = "segments"

#: The per-kind index file, inside the segment directory.
MANIFEST_NAME = "manifest.json"

#: Bump when the manifest JSON shape changes; unknown formats are rebuilt.
MANIFEST_FORMAT = 1

#: Roll to a new segment file once the active one exceeds this.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Publish the manifest at least every this-many appended records even if
#: nobody calls :meth:`ResultCache.flush` (bounds the rebuild-scan cost of
#: a crashed long run).
PUBLISH_EVERY = 512

#: ``b"%08x %08x\n"`` -- payload length, CRC32, newline.
_HEADER_LENGTH = 18


def default_cache_dir() -> Path:
    """The on-disk cache location used when none is given explicitly."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


# ---------------------------------------------------------------------- #
# Record framing
# ---------------------------------------------------------------------- #


def _frame_record(payload: bytes) -> bytes:
    """Wrap one compact-JSON payload in the segment record frame."""
    header = b"%08x %08x\n" % (len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload + b"\n"


def _decode_frame(blob: bytes) -> Optional[Dict[str, object]]:
    """Parse one framed record; ``None`` for any torn or corrupt frame."""
    if len(blob) < _HEADER_LENGTH + 1 or blob[8:9] != b" " or blob[17:18] != b"\n":
        return None
    try:
        length = int(blob[0:8], 16)
        crc = int(blob[9:17], 16)
    except ValueError:
        return None
    if len(blob) != _HEADER_LENGTH + length + 1 or blob[-1:] != b"\n":
        return None
    payload = blob[_HEADER_LENGTH:-1]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


def _scan_segment(
    data: bytes, start: int
) -> Tuple[List[Tuple[int, int, Dict[str, object]]], int]:
    """Walk intact records from ``start``; stop at the first torn frame.

    Returns ``([(offset, length, record), ...], clean_offset)`` where
    ``clean_offset`` is the end of the last intact record -- everything
    beyond it is a torn tail (a writer killed mid-append) and simply does
    not exist as far as the index is concerned.
    """
    records: List[Tuple[int, int, Dict[str, object]]] = []
    offset = max(0, start)
    size = len(data)
    while offset + _HEADER_LENGTH <= size:
        header = data[offset : offset + _HEADER_LENGTH]
        if header[8:9] != b" " or header[17:18] != b"\n":
            break
        try:
            length = int(header[0:8], 16)
            crc = int(header[9:17], 16)
        except ValueError:
            break
        end = offset + _HEADER_LENGTH + length + 1
        if end > size or data[end - 1 : end] != b"\n":
            break
        payload = data[offset + _HEADER_LENGTH : end - 1]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            record = None
        if isinstance(record, dict):
            records.append((offset, end - offset, record))
        offset = end
    return records, offset


class _IndexEntry(NamedTuple):
    """Where one key's current record lives, plus its stats metadata."""

    segment: str
    offset: int
    length: int
    version: str
    ts: float


def _record_metrics(record: Optional[Mapping[str, object]], key: str) -> Optional[Metrics]:
    """Validate one packed record into metrics; ``None`` is a miss."""
    if not isinstance(record, Mapping):
        return None
    if record.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    if record.get("key") != key:
        return None
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        return None
    return metrics


def _validate_legacy_payload(payload: object, key: str) -> Optional[Metrics]:
    """Validate one legacy per-file entry's payload; ``None`` is a miss."""
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    if payload.get("key") != key:
        return None
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return None
    return metrics


def _load_legacy_entry(path: Path, key: str) -> Optional[Metrics]:
    """Read-validate one legacy entry file; any failure is a miss."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return _validate_legacy_payload(payload, key)


# ---------------------------------------------------------------------- #
# Per-kind segment store
# ---------------------------------------------------------------------- #


class _KindStore:
    """One job kind's segments, manifest, index and (lazy) legacy file set."""

    def __init__(
        self,
        root: Path,
        kind: str,
        max_segment_bytes: int,
        clock: Callable[[], float],
    ) -> None:
        self.kind = kind
        self.directory = root / kind
        self.segment_dir = self.directory / SEGMENT_DIR_NAME
        self.manifest_path = self.segment_dir / MANIFEST_NAME
        self.max_segment_bytes = max_segment_bytes
        self._clock = clock
        self._index: Optional[Dict[str, _IndexEntry]] = None
        #: Per segment, how many bytes are known-intact (own fsynced writes,
        #: or cleanly scanned).  The manifest never vouches beyond these.
        self._scanned: Dict[str, int] = {}
        self._legacy: Optional[Set[str]] = None
        self._writer_name: Optional[str] = None
        self._handle = None
        self._dirty = 0

    # -- index ---------------------------------------------------------- #

    def index(self) -> Dict[str, _IndexEntry]:
        """The in-memory key index, loaded (or rebuilt) on first use."""
        if self._index is None:
            self._load_index()
        assert self._index is not None
        return self._index

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
            return None
        return manifest

    def _load_index(self) -> None:
        index: Dict[str, _IndexEntry] = {}
        scanned: Dict[str, int] = {}
        dirty = False
        manifest = self._read_manifest() or {}
        vouched = manifest.get("segments")
        vouched = vouched if isinstance(vouched, dict) else {}
        entries = manifest.get("entries")
        entries = entries if isinstance(entries, dict) else {}

        on_disk: Dict[str, int] = {}
        if self.segment_dir.is_dir():
            for path in self.segment_dir.glob("seg-*.seg"):
                try:
                    on_disk[path.name] = path.stat().st_size
                except OSError:
                    continue

        # A segment the manifest never saw -- or one shorter than the bytes
        # the manifest vouches for (truncated after publication) -- gets a
        # full rescan; nothing the manifest says about it can be trusted.
        distrusted: Set[str] = set()
        for name, size in on_disk.items():
            claimed = vouched.get(name)
            if isinstance(claimed, int) and 0 <= claimed <= size:
                scanned[name] = claimed
            else:
                scanned[name] = 0
                distrusted.add(name)
                dirty = True

        for key, value in entries.items():
            if not (isinstance(value, (list, tuple)) and len(value) == 5):
                dirty = True
                continue
            segment, offset, length, version, ts = value
            if (
                not isinstance(segment, str)
                or segment not in on_disk
                or segment in distrusted
                or not isinstance(offset, int)
                or not isinstance(length, int)
                or offset + length > scanned.get(segment, 0)
            ):
                dirty = True
                continue
            index[str(key)] = _IndexEntry(
                segment, offset, length, str(version), float(ts or 0.0)
            )

        # Scan every unvouched tail: records appended after the last
        # publication (or whole segments after a lost manifest).  The scan
        # stops at the first torn frame, which is exactly the CRC-guarded
        # crash-recovery contract.
        for name in sorted(on_disk):
            start = scanned[name]
            if on_disk[name] <= start:
                continue
            try:
                data = (self.segment_dir / name).read_bytes()
            except OSError:
                continue
            records, clean = _scan_segment(data, start)
            for offset, length, record in records:
                key = record.get("key")
                if not isinstance(key, str):
                    continue
                entry = _IndexEntry(
                    name,
                    offset,
                    length,
                    str(record.get("schema", "?")),
                    float(record.get("ts") or 0.0),
                )
                previous = index.get(key)
                if previous is None or entry.ts >= previous.ts:
                    index[key] = entry
            if records or clean != start:
                dirty = True
            scanned[name] = clean

        self._index = index
        self._scanned = scanned
        if dirty:
            # Something the manifest did not know; republishing on the next
            # flush saves the next process the rescan.
            self._dirty = max(self._dirty, 1)

    # -- writing -------------------------------------------------------- #

    def _open_writer(self):
        """The active append handle, allocating a fresh segment if needed.

        Writers never append to a segment they did not create (a previous
        crash may have left a torn tail that would make later records
        unreachable by scan), so segment names are claimed with ``O_EXCL``.
        """
        if self._handle is not None:
            return self._writer_name, self._handle
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        pid = os.getpid()
        serial = 0
        while True:
            name = f"seg-{pid}-{serial:04d}.seg"
            try:
                handle = open(self.segment_dir / name, "xb")
            except FileExistsError:
                serial += 1
                continue
            self._writer_name = name
            self._handle = handle
            self._scanned.setdefault(name, 0)
            return name, handle

    def _roll(self) -> None:
        """Close the active segment; the next append opens a fresh one."""
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def append(self, records: Sequence[Tuple[str, Dict[str, object]]]) -> None:
        """Append framed records -- one buffered write + one fsync total."""
        items = []
        for key, record in records:
            payload = json.dumps(
                record, sort_keys=True, separators=COMPACT_SEPARATORS
            ).encode("utf-8")
            items.append(
                (
                    key,
                    _frame_record(payload),
                    str(record.get("schema", "?")),
                    float(record.get("ts") or 0.0),
                )
            )
        self._append_blobs(items)

    def _append_blobs(self, items: Sequence[Tuple[str, bytes, str, float]]) -> None:
        if not items:
            return
        index = self.index()
        name, handle = self._open_writer()
        offset = self._scanned.get(name, 0)
        pending: List[bytes] = []

        def drain() -> None:
            if pending:
                handle.write(b"".join(pending))
                handle.flush()
                os.fsync(handle.fileno())
                pending.clear()

        for key, blob, version, ts in items:
            if offset > 0 and offset + len(blob) > self.max_segment_bytes:
                drain()
                self._scanned[name] = offset
                self._roll()
                name, handle = self._open_writer()
                offset = self._scanned.get(name, 0)
            index[key] = _IndexEntry(name, offset, len(blob), version, ts)
            pending.append(blob)
            offset += len(blob)
        drain()
        self._scanned[name] = offset
        self._dirty += len(items)
        if self._dirty >= PUBLISH_EVERY:
            self.publish()

    def publish(self) -> None:
        """Atomically write the manifest, if anything changed since last time."""
        if self._dirty == 0 or self._index is None:
            return
        self.segment_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": MANIFEST_FORMAT,
            "schema": CACHE_SCHEMA_VERSION,
            "segments": dict(sorted(self._scanned.items())),
            "entries": {
                key: list(entry) for key, entry in sorted(self._index.items())
            },
        }
        tmp = self.manifest_path.with_suffix(f".{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, separators=COMPACT_SEPARATORS)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.manifest_path)
        finally:
            tmp.unlink(missing_ok=True)
        self._dirty = 0

    # -- reading -------------------------------------------------------- #

    #: Probing this many keys in one segment switches from seek-per-record
    #: to one bulk read of the whole segment (warm sweeps touch most of it
    #: anyway, and one big read beats thousands of seek+read round trips).
    _BULK_READ_THRESHOLD = 32

    def _fetch(
        self, keys: Iterable[str]
    ) -> Dict[str, Tuple[bytes, Dict[str, object]]]:
        """``{key: (raw frame, decoded record)}`` for intact indexed keys.

        One open per touched segment; each frame is CRC-checked and decoded
        exactly once.  An index entry whose frame fails validation (external
        damage) is forgotten so the cell re-executes.
        """
        index = self.index()
        by_segment: Dict[str, List[Tuple[str, _IndexEntry]]] = {}
        for key in keys:
            entry = index.get(key)
            if entry is not None:
                by_segment.setdefault(entry.segment, []).append((key, entry))
        found: Dict[str, Tuple[bytes, Dict[str, object]]] = {}
        for segment, pairs in by_segment.items():
            pairs.sort(key=lambda pair: pair[1].offset)
            try:
                with open(self.segment_dir / segment, "rb") as handle:
                    if len(pairs) >= self._BULK_READ_THRESHOLD:
                        data = handle.read()
                        blobs = [
                            data[entry.offset : entry.offset + entry.length]
                            for _, entry in pairs
                        ]
                    else:
                        blobs = []
                        for _, entry in pairs:
                            handle.seek(entry.offset)
                            blobs.append(handle.read(entry.length))
            except OSError:
                continue
            for (key, entry), blob in zip(pairs, blobs):
                record = _decode_frame(blob)
                if record is None:
                    index.pop(key, None)
                    self._dirty = max(self._dirty, 1)
                    continue
                found[key] = (blob, record)
        return found

    def _read_blobs(self, keys: Iterable[str]) -> Dict[str, bytes]:
        """Raw validated frames for ``keys`` (compaction copies these)."""
        return {key: blob for key, (blob, _) in self._fetch(keys).items()}

    def get_many(self, keys: Iterable[str]) -> Dict[str, Dict[str, object]]:
        """Decoded records for every indexed, intact key among ``keys``."""
        return {key: record for key, (_, record) in self._fetch(keys).items()}

    # -- legacy read-through -------------------------------------------- #

    def legacy_keys(self) -> Set[str]:
        """Keys with a legacy per-file entry (globbed once per process)."""
        if self._legacy is None:
            self._legacy = set()
            if self.directory.is_dir():
                for path in self.directory.glob("*.json"):
                    self._legacy.add(path.stem)
        return self._legacy

    def legacy_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- maintenance ---------------------------------------------------- #

    def segment_names(self) -> List[str]:
        if not self.segment_dir.is_dir():
            return []
        return sorted(path.name for path in self.segment_dir.glob("seg-*.seg"))

    def segment_bytes(self) -> int:
        total = 0
        for name in self.segment_names():
            try:
                total += (self.segment_dir / name).stat().st_size
            except OSError:
                continue
        try:
            total += self.manifest_path.stat().st_size
        except OSError:
            pass
        return total

    def compact(self) -> Tuple[int, int, int]:
        """Rewrite live records into fresh segments, drop the old ones.

        Frames are copied verbatim (same CRC, version and timestamp), so
        compaction never rewrites a record's identity -- it only sheds the
        dead bytes of superseded and pruned records.  Returns ``(entries,
        bytes_before, bytes_after)`` over the segment files.
        """
        index = self.index()
        old_names = self.segment_names()
        bytes_before = self.segment_bytes()
        blobs = self._read_blobs(list(index))
        keep = [
            (key, blobs[key], index[key].version, index[key].ts)
            for key in sorted(blobs)
        ]
        self._roll()
        self._index = {}
        self._scanned = {}
        if keep:
            self._append_blobs(keep)
        self._roll()
        self._dirty = max(self._dirty, 1)
        # Publish before deleting: a crash in between leaves orphan old
        # segments whose records are identical to the kept copies, so a
        # rebuild scan merely re-finds the same data.
        self.publish()
        for name in old_names:
            (self.segment_dir / name).unlink(missing_ok=True)
        return len(keep), bytes_before, self.segment_bytes()

    def drop_all(self) -> int:
        """Delete every packed and legacy entry; returns entries removed."""
        removed = len(self.index()) + len(self.legacy_keys())
        self._roll()
        if self.segment_dir.is_dir():
            shutil.rmtree(self.segment_dir, ignore_errors=True)
        for key in list(self.legacy_keys()):
            self.legacy_path(key).unlink(missing_ok=True)
        self._index = {}
        self._scanned = {}
        self._legacy = set()
        self._dirty = 0
        try:
            self.directory.rmdir()
        except OSError:
            pass
        return removed


# ---------------------------------------------------------------------- #
# The packed segment store
# ---------------------------------------------------------------------- #


class ResultCache:
    """Packed segment-file result store keyed by job cache keys.

    The default on-disk layout: see the module docstring for the format.
    Single-cell :meth:`load`/:meth:`store` remain for convenience; the
    engine's hot paths use the batched :meth:`load_many`/:meth:`store_many`
    (and their key-level twins for the distributed coordinator, which holds
    wire descriptions rather than :class:`ExperimentJob` instances).

    ``clock`` is injectable so prune-by-age tests control record ages
    without sleeping.
    """

    layout = "packed"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory)
        self.max_segment_bytes = max_segment_bytes
        self._clock = clock
        self._stores: Dict[str, _KindStore] = {}

    # -- plumbing ------------------------------------------------------- #

    def _kind(self, kind: str) -> _KindStore:
        store = self._stores.get(kind)
        if store is None:
            store = _KindStore(self.directory, kind, self.max_segment_bytes, self._clock)
            self._stores[kind] = store
        return store

    def _kind_names(self) -> List[str]:
        names = set(self._stores)
        if self.directory.is_dir():
            for child in self.directory.iterdir():
                if child.is_dir():
                    names.add(child.name)
        return sorted(names)

    def path_for(self, job: ExperimentJob) -> Path:
        """Where the cell's *legacy* per-file entry would live.

        Packed records live inside segment files and have no path of their
        own; this remains the read-through and migration source location.
        """
        return self.path_for_key(job.kind, job.cache_key())

    def path_for_key(self, kind: str, key: str) -> Path:
        """Legacy entry location for a ``(kind, cache_key)`` pair."""
        return self.directory / kind / f"{key}.json"

    # -- loads ---------------------------------------------------------- #

    def load(self, job: ExperimentJob) -> Optional[Metrics]:
        """Return the cached metrics for ``job``, or ``None`` on a miss."""
        return self.load_entry(job.kind, job.cache_key())

    def load_entry(self, kind: str, key: str) -> Optional[Metrics]:
        """Return the cached metrics under ``(kind, key)``, or ``None``.

        Corrupt or incompatible records are misses, never errors: torn
        segment tails are excluded by the CRC scan at index build, and a
        record damaged after indexing fails frame validation at read.
        """
        return self.load_many_entries([(kind, key)]).get(key)

    def load_many(self, jobs: Sequence[ExperimentJob]) -> Dict[ExperimentJob, Metrics]:
        """Probe a whole batch; returns ``{job: metrics}`` for the hits.

        One index lookup per cell and one file open per touched segment --
        the warm-run fast path the per-file layout paid an ``open`` +
        ``json.loads`` per cell for.
        """
        keyed = [(job, job.kind, job.cache_key()) for job in jobs]
        hits = self.load_many_entries([(kind, key) for _, kind, key in keyed])
        return {job: hits[key] for job, _, key in keyed if key in hits}

    def load_many_entries(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Dict[str, Metrics]:
        """Key-level batch probe: ``{key: metrics}`` for the hits."""
        by_kind: Dict[str, List[str]] = {}
        for kind, key in pairs:
            by_kind.setdefault(kind, []).append(key)
        hits: Dict[str, Metrics] = {}
        for kind, keys in by_kind.items():
            store = self._kind(kind)
            records = store.get_many(keys)
            legacy = store.legacy_keys() if len(records) < len(keys) else ()
            for key in keys:
                metrics = _record_metrics(records.get(key), key)
                if metrics is None and key in legacy:
                    metrics = _load_legacy_entry(store.legacy_path(key), key)
                if metrics is not None:
                    hits[key] = metrics
        return hits

    # -- stores --------------------------------------------------------- #

    def store(self, job: ExperimentJob, metrics: Metrics) -> None:
        """Persist one cell's metrics (one record append + fsync)."""
        self.store_many([(job, metrics)])

    def store_entry(
        self,
        kind: str,
        key: str,
        job_description: Dict[str, object],
        metrics: Metrics,
    ) -> None:
        """Persist one entry under ``(kind, key)``."""
        self.store_entries([(kind, key, job_description, metrics)])

    def store_many(self, items: Sequence[Tuple[ExperimentJob, Metrics]]) -> None:
        """Persist a chunk of results: one append + one fsync per kind."""
        self.store_entries(
            [
                (job.kind, job.cache_key(), job.to_dict(), metrics)
                for job, metrics in items
            ]
        )

    def store_entries(
        self, entries: Sequence[Tuple[str, str, Dict[str, object], Metrics]]
    ) -> None:
        """Key-level batch store (the distributed coordinator's path)."""
        by_kind: Dict[str, List[Tuple[str, Dict[str, object], Metrics]]] = {}
        for kind, key, description, metrics in entries:
            by_kind.setdefault(kind, []).append((key, description, metrics))
        now = self._clock()
        for kind, items in by_kind.items():
            self._kind(kind).append(
                [
                    (
                        key,
                        {
                            "schema": CACHE_SCHEMA_VERSION,
                            "key": key,
                            "kind": kind,
                            "ts": now,
                            "job": description,
                            "metrics": metrics,
                        },
                    )
                    for key, description, metrics in items
                ]
            )

    def flush(self) -> None:
        """Publish every dirty manifest (records are already durable)."""
        for store in self._stores.values():
            store.publish()

    # -- inventory ------------------------------------------------------ #

    def kinds(self) -> Tuple[str, ...]:
        """The job kinds with at least one entry on disk, sorted."""
        return tuple(
            kind
            for kind in self._kind_names()
            if self._kind(kind).index() or self._kind(kind).legacy_keys()
        )

    def stats(self) -> Dict[str, "CacheKindStats"]:
        """Per-kind entry counts, sizes and schema-version mix.

        Served from the in-memory index -- no per-entry file reads.
        ``bytes`` counts *live* record bytes; ``disk_bytes`` the segment
        files as stored (the gap is what ``cache compact`` reclaims).  A
        torn in-flight segment tail is excluded by the CRC scan, so --
        unlike the legacy tail-sniff, which reported ``?`` -- a mid-write
        record never shows up at all.  Legacy files still present report
        their sniffed versions (``?`` for partial files, which load as
        misses anyway).
        """
        report: Dict[str, CacheKindStats] = {}
        for kind in self._kind_names():
            store = self._kind(kind)
            index = store.index()
            legacy = store.legacy_keys()
            if not index and not legacy:
                continue
            stats = CacheKindStats(kind=kind)
            for entry in index.values():
                stats.entries += 1
                stats.bytes += entry.length
                stats.versions[entry.version] = stats.versions.get(entry.version, 0) + 1
            stats.segments = len(store.segment_names())
            stats.disk_bytes = store.segment_bytes()
            for key in sorted(legacy):
                try:
                    size = store.legacy_path(key).stat().st_size
                except OSError:
                    continue
                stats.entries += 1
                stats.bytes += size
                stats.disk_bytes += size
                version = _entry_schema_version(store.legacy_path(key), size)
                stats.versions[version] = stats.versions.get(version, 0) + 1
            report[kind] = stats
        return report

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete cached entries; return how many entries were removed."""
        removed = 0
        for name in [kind] if kind is not None else self._kind_names():
            removed += self._kind(name).drop_all()
        return removed

    def prune(
        self,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> "CachePruneResult":
        """Garbage-collect by age and/or total *live* size.

        Ages come from each record's stored timestamp (segment file mtimes
        mean nothing: every record in a segment shares them), and the
        ``max_bytes`` budget counts live record bytes, not segment file
        sizes -- then a compaction pass physically drops the evicted
        records, both so the bytes are actually reclaimed and because a
        record left in a segment would be resurrected by the next manifest
        rebuild scan.
        """
        result = CachePruneResult()
        if now is None:
            now = self._clock()
        items: List[Tuple[float, int, str, str, bool]] = []
        for kind in self._kind_names():
            store = self._kind(kind)
            for key, entry in store.index().items():
                items.append((entry.ts, entry.length, kind, key, False))
            for key in sorted(store.legacy_keys()):
                try:
                    stat = store.legacy_path(key).stat()
                except OSError:
                    continue
                items.append((stat.st_mtime, stat.st_size, kind, key, True))
        items.sort(key=lambda item: item[0])
        doomed: List[Tuple[float, int, str, str, bool]] = []
        survivors: List[Tuple[float, int, str, str, bool]] = []
        for item in items:
            if max_age_seconds is not None and now - item[0] > max_age_seconds:
                doomed.append(item)
            else:
                survivors.append(item)
        if max_bytes is not None:
            total = sum(item[1] for item in survivors)
            cut = 0
            while total > max_bytes and cut < len(survivors):
                doomed.append(survivors[cut])
                total -= survivors[cut][1]
                cut += 1
            survivors = survivors[cut:]
        touched_kinds: Set[str] = set()
        for _, size, kind, key, is_legacy in doomed:
            store = self._kind(kind)
            if is_legacy:
                store.legacy_path(key).unlink(missing_ok=True)
                store.legacy_keys().discard(key)
            else:
                store.index().pop(key, None)
                touched_kinds.add(kind)
            result.removed_entries += 1
            result.removed_bytes += size
        for kind in touched_kinds:
            self._kind(kind).compact()
        result.kept_entries = len(survivors)
        result.kept_bytes = sum(item[1] for item in survivors)
        return result

    def compact(self) -> "CacheCompactResult":
        """Rewrite every kind's live records into fresh minimal segments."""
        result = CacheCompactResult()
        for kind in self._kind_names():
            store = self._kind(kind)
            if not store.index() and not store.segment_names():
                continue
            entries, before, after = store.compact()
            result.kinds += 1
            result.entries += entries
            result.reclaimed_bytes += max(0, before - after)
        return result

    def migrate(self) -> "CacheMigrateResult":
        """Pack every legacy per-file entry into segments, then delete it.

        Entries that fail validation (corrupt, stale schema version, key
        mismatch) load as misses anyway and are dropped rather than packed.
        Record timestamps preserve the legacy file's mtime, so prune-by-age
        still sees the original production time.
        """
        result = CacheMigrateResult()
        for kind in self._kind_names():
            store = self._kind(kind)
            legacy = sorted(store.legacy_keys())
            if not legacy:
                continue
            result.kinds += 1
            index = store.index()
            records: List[Tuple[str, Dict[str, object]]] = []
            for key in legacy:
                path = store.legacy_path(key)
                try:
                    stat = path.stat()
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    stat = None
                    payload = None
                metrics = _validate_legacy_payload(payload, key)
                if metrics is None:
                    result.dropped += 1
                elif key in index:
                    result.deduped += 1
                else:
                    records.append(
                        (
                            key,
                            {
                                "schema": CACHE_SCHEMA_VERSION,
                                "key": key,
                                "kind": kind,
                                "ts": stat.st_mtime if stat is not None else self._clock(),
                                "job": payload.get("job") if isinstance(payload, dict) else None,
                                "metrics": metrics,
                            },
                        )
                    )
                    result.packed += 1
                if stat is not None:
                    result.reclaimed_bytes += stat.st_size
                path.unlink(missing_ok=True)
            store.legacy_keys().clear()
            if records:
                store.append(records)
            store._roll()
        self.flush()
        return result


# ---------------------------------------------------------------------- #
# The legacy per-file store
# ---------------------------------------------------------------------- #


class LegacyResultCache:
    """One-JSON-file-per-cell result store keyed by the job's cache key.

    The pre-packed layout, kept readable (the packed store reads through
    to it), migratable (``repro cache migrate``) and constructible
    (``REPRO_CACHE_LAYOUT=legacy``) -- the last mostly so
    ``benchmarks/bench_cache.py`` can measure what the packed store buys.
    """

    layout = "legacy"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def path_for(self, job: ExperimentJob) -> Path:
        """Where the given cell's result lives (whether or not it exists)."""
        return self.path_for_key(job.kind, job.cache_key())

    def path_for_key(self, kind: str, key: str) -> Path:
        """Entry location for a ``(kind, cache_key)`` pair."""
        return self.directory / kind / f"{key}.json"

    def load(self, job: ExperimentJob) -> Optional[Metrics]:
        """Return the cached metrics for ``job``, or ``None`` on a miss."""
        return self.load_entry(job.kind, job.cache_key())

    def load_entry(self, kind: str, key: str) -> Optional[Metrics]:
        """Return the cached metrics under ``(kind, key)``, or ``None``.

        Corrupt or incompatible entries are treated as misses rather than
        errors -- a load never raises, and the subsequent :meth:`store`
        simply overwrites the bad file.  This covers truncated writes from a
        run killed mid-flight, non-JSON garbage, undecodable bytes, schema
        changes, and well-formed JSON that is not a result object at all.
        """
        return _load_legacy_entry(self.path_for_key(kind, key), key)

    def load_many(self, jobs: Sequence[ExperimentJob]) -> Dict[ExperimentJob, Metrics]:
        """Batch probe (one file read per cell -- the layout's cost)."""
        hits: Dict[ExperimentJob, Metrics] = {}
        for job in jobs:
            metrics = self.load(job)
            if metrics is not None:
                hits[job] = metrics
        return hits

    def load_many_entries(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> Dict[str, Metrics]:
        """Key-level batch probe: ``{key: metrics}`` for the hits."""
        hits: Dict[str, Metrics] = {}
        for kind, key in pairs:
            metrics = self.load_entry(kind, key)
            if metrics is not None:
                hits[key] = metrics
        return hits

    def store(self, job: ExperimentJob, metrics: Metrics) -> None:
        """Persist one cell's metrics atomically (write, fsync, rename)."""
        self.store_entry(job.kind, job.cache_key(), job.to_dict(), metrics)

    def store_entry(
        self,
        kind: str,
        key: str,
        job_description: Dict[str, object],
        metrics: Metrics,
    ) -> None:
        """Persist one entry under ``(kind, key)`` atomically.

        The entry is written to a process-private temporary file, flushed to
        stable storage, and only then renamed into place, so a job killed at
        any point can never leave a partially written entry under the final
        name (which would read as a miss -- and silently re-simulate -- on
        every subsequent run).
        """
        path = self.path_for_key(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "job": job_description,
            "metrics": metrics,
        }
        # Process-private name: two concurrent runs storing the same cell
        # must never interleave writes into one temporary file.
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, separators=COMPACT_SEPARATORS)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def store_many(self, items: Sequence[Tuple[ExperimentJob, Metrics]]) -> None:
        """Batch store (one write + fsync per cell -- the layout's cost)."""
        for job, metrics in items:
            self.store(job, metrics)

    def store_entries(
        self, entries: Sequence[Tuple[str, str, Dict[str, object], Metrics]]
    ) -> None:
        """Key-level batch store."""
        for kind, key, description, metrics in entries:
            self.store_entry(kind, key, description, metrics)

    def flush(self) -> None:
        """No-op: every store is already durable under its final name."""

    def kinds(self) -> Tuple[str, ...]:
        """The job kinds with at least one entry on disk, sorted."""
        if not self.directory.is_dir():
            return ()
        return tuple(
            sorted(
                child.name
                for child in self.directory.iterdir()
                if child.is_dir() and any(child.glob("*.json"))
            )
        )

    def stats(self) -> Dict[str, "CacheKindStats"]:
        """Per-kind entry counts, on-disk sizes and schema-version mix."""
        report: Dict[str, CacheKindStats] = {}
        for kind in self.kinds():
            stats = report.setdefault(kind, CacheKindStats(kind=kind))
            for path in (self.directory / kind).glob("*.json"):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                stats.entries += 1
                stats.bytes += size
                stats.disk_bytes += size
                version = _entry_schema_version(path, size)
                stats.versions[version] = stats.versions.get(version, 0) + 1
        return report

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete cached entries; return how many files were removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        pattern = f"{kind}/*.json" if kind is not None else "*/*.json"
        for path in self.directory.glob(pattern):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def prune(
        self,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> "CachePruneResult":
        """Garbage-collect the cache by age and/or total size.

        ``max_age_seconds`` removes every entry whose file modification time
        is older than the horizon.  ``max_bytes`` then evicts the oldest
        surviving entries until the total on-disk size fits the budget
        (LRU-by-mtime: the cache touches entries only when storing, so age
        approximates "least recently produced").  Either limit may be
        ``None``; with both ``None`` this is a no-op inventory pass.  The
        clock is injectable for tests.
        """
        result = CachePruneResult()
        if not self.directory.is_dir():
            return result
        if now is None:
            now = time.time()
        entries: List[Tuple[float, int, Path]] = []
        for path in self.directory.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        survivors: List[Tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if max_age_seconds is not None and now - mtime > max_age_seconds:
                path.unlink(missing_ok=True)
                result.removed_entries += 1
                result.removed_bytes += size
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            index = 0
            while total > max_bytes and index < len(survivors):
                _, size, path = survivors[index]
                path.unlink(missing_ok=True)
                result.removed_entries += 1
                result.removed_bytes += size
                total -= size
                index += 1
            survivors = survivors[index:]
        result.kept_entries = len(survivors)
        result.kept_bytes = sum(size for _, size, _ in survivors)
        return result


#: Either store; they implement the same cache interface.
AnyResultCache = Union[ResultCache, LegacyResultCache]

#: Layout names accepted by :func:`make_result_cache` / the environment.
CACHE_LAYOUTS = ("packed", "legacy")


def make_result_cache(
    directory: Union[None, str, Path] = None,
    layout: Optional[str] = None,
    **kwargs: object,
) -> AnyResultCache:
    """Build a result cache in the requested (or configured) layout.

    ``layout`` falls back to :data:`CACHE_LAYOUT_ENV` and then to
    ``packed``.  Extra keyword arguments go to the packed store
    (``max_segment_bytes``, ``clock``); the legacy store accepts none.
    """
    if directory is None:
        directory = default_cache_dir()
    if layout is None:
        layout = os.environ.get(CACHE_LAYOUT_ENV) or "packed"
    layout = str(layout).strip().lower()
    if layout == "packed":
        return ResultCache(directory, **kwargs)  # type: ignore[arg-type]
    if layout == "legacy":
        return LegacyResultCache(directory)
    raise ExperimentError(
        f"unknown cache layout {layout!r} (expected one of: {', '.join(CACHE_LAYOUTS)})"
    )


# ---------------------------------------------------------------------- #
# Report dataclasses
# ---------------------------------------------------------------------- #


@dataclass
class CachePruneResult:
    """What a cache ``prune`` removed and what survived."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0

    def summary(self) -> str:
        """One-line human-readable account of the GC pass."""
        return (
            f"pruned {self.removed_entries} entries ({self.removed_bytes} bytes); "
            f"kept {self.kept_entries} entries ({self.kept_bytes} bytes)"
        )


@dataclass
class CacheCompactResult:
    """What :meth:`ResultCache.compact` rewrote and reclaimed."""

    kinds: int = 0
    entries: int = 0
    reclaimed_bytes: int = 0

    def summary(self) -> str:
        return (
            f"compacted {self.entries} entries across {self.kinds} kinds; "
            f"reclaimed {self.reclaimed_bytes} bytes"
        )


@dataclass
class CacheMigrateResult:
    """What :meth:`ResultCache.migrate` packed, deduped and dropped."""

    kinds: int = 0
    packed: int = 0
    deduped: int = 0
    dropped: int = 0
    reclaimed_bytes: int = 0

    def summary(self) -> str:
        return (
            f"packed {self.packed} legacy entries across {self.kinds} kinds "
            f"({self.deduped} already packed, {self.dropped} invalid dropped); "
            f"removed {self.reclaimed_bytes} bytes of legacy files"
        )


def _entry_schema_version(path: Path, size: int) -> str:
    """The recorded ``schema`` version of one *legacy* cache entry, cheaply.

    Reads a small tail and takes the last ``"schema": N`` match instead of
    deserializing the whole entry (fault-campaign cells can be tens of
    kilobytes each).  The tail match is only trusted when the tail also
    ends with the closing ``}`` of a complete dump: a zero-byte or
    mid-write entry (a writer caught between ``open`` and flush) must
    report ``"?"`` rather than whatever version string happens to survive
    truncation.  Falls back to a full parse for complete files that do not
    match (e.g. hand-edited entries), and to ``"?"`` for unreadable ones --
    which load as misses anyway.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(max(0, size - 256))
            tail = handle.read().decode("utf-8", errors="replace")
        if tail.rstrip().endswith("}"):
            matches = re.findall(r'"schema":\s*(\d+)', tail)
            if matches:
                return matches[-1]
        payload = json.loads(path.read_text(encoding="utf-8"))
        return str(payload.get("schema", "?"))
    except (OSError, ValueError, AttributeError):
        return "?"


@dataclass
class CacheKindStats:
    """One job kind's share of the on-disk result cache."""

    kind: str
    entries: int = 0
    #: Live record bytes (packed) or entry file bytes (legacy).
    bytes: int = 0
    #: Bytes actually occupied on disk (segments + manifest + legacy
    #: files); the gap over :attr:`bytes` is what ``compact`` reclaims.
    disk_bytes: int = 0
    #: Segment files backing the kind (0 under the legacy layout).
    segments: int = 0
    #: Entry counts per recorded cache schema version (``"?"`` for
    #: unreadable legacy entries -- which load as misses anyway).
    versions: Dict[str, int] = dataclass_field(default_factory=dict)

    def version_summary(self) -> str:
        """Compact ``v1:3 v2:12`` rendering of the version mix."""
        return " ".join(
            f"v{version}:{count}" for version, count in sorted(self.versions.items())
        )
