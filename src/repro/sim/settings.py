"""Shared experiment settings.

:class:`ExperimentSettings` holds the scaled-down run lengths and the
capacity/footprint scale factor (see ``evaluation_system_config``) shared by
every reproduction experiment, so that the whole evaluation completes on a
laptop while preserving the relative behaviour the paper reports.

The settings value is a frozen dataclass of plain values: together with a
workload name, a configuration label and a seed it *fully describes* one
experiment cell, which is what makes the job model of
:mod:`repro.sim.jobs` picklable and its cache keys deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Mapping, Sequence, Tuple

from repro.config.presets import evaluation_system_config
from repro.config.system import SystemConfig
from repro.errors import ExperimentError
from repro.sim.simulator import SimulationOptions
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES

#: Timeslice assumed by the paper (1 ms at 3 GHz).
PAPER_TIMESLICE_CYCLES = 3_000_000

#: Valid values of :attr:`ExperimentSettings.fidelity`.
FIDELITY_TIERS = ("accurate", "fast")


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs of the reproduction experiments."""

    #: Factor by which cache capacities (and workload footprints) are scaled
    #: down relative to the paper's machine; 1 = full size.
    capacity_scale: int = 8
    #: Measured cycles per run (after warmup).
    total_cycles: int = 60_000
    #: Warmup cycles per run.
    warmup_cycles: int = 15_000
    #: Gang-scheduling timeslice used by the consolidated-server runs.
    timeslice_cycles: int = 25_000
    #: Scale applied to the workloads' user/OS phase lengths.
    phase_scale: float = 0.01
    #: Seeds to average over (the paper reports 95% confidence intervals
    #: over multiple runs).  Ten seeds by default: cells are cached and
    #: embarrassingly parallel, so the sweep is CI-cheap and the intervals
    #: are tight; ``--seeds``/:meth:`with_seeds` override it, and
    #: :meth:`quick` keeps a single seed for smoke tests.
    seeds: Tuple[int, ...] = tuple(range(10))
    #: Workloads to evaluate, in the paper's figure order.
    workloads: Tuple[str, ...] = PAPER_WORKLOAD_NAMES
    #: VCPUs exposed by the reliable guest (the paper uses 8 on 16 cores).
    reliable_vcpus: int = 8
    #: Enter/Leave pairs measured per workload by the Table 1 experiment.
    switch_transitions: int = 8
    #: Cache-warming cycles before the Table 1 measurement.
    switch_warmup_cycles: int = 8_000
    #: User/OS phase pairs timed per workload by the Table 2 experiment.
    frequency_phases: int = 3
    #: Phase scale at which the Table 2 phases are generated (the measured
    #: cycles are scaled back up by its inverse).
    frequency_phase_scale: float = 0.1
    #: Fault-injection trials per (configuration, fault site, seed) run by
    #: the campaign section of ``run_all_experiments``.
    fault_trials_per_site: int = 25
    #: Failed-core counts swept by the graceful-degradation experiment (each
    #: count is one cell: that many cores fail on a schedule mid-run).
    degradation_failed_cores: Tuple[int, ...] = (0, 2, 4, 6)
    #: Deferred guest VMs that arrive and depart mid-run in the
    #: consolidation-churn experiment.
    churn_extra_vms: int = 2
    #: Machines in the fleet-scenario experiment (each machine is one
    #: independent per-machine simulation cell).
    fleet_machines: int = 8
    #: Racks the fleet's machines are grouped into (correlated failure
    #: storms strike whole racks; adjacent rack pairs share a power domain).
    fleet_racks: int = 2
    #: Traffic scenarios swept by the fleet experiment, in presentation
    #: order (see :data:`repro.sim.fleet.traffic.SCENARIO_NAMES`).
    fleet_scenarios: Tuple[str, ...] = (
        "diurnal",
        "flash-crowd",
        "failure-storm",
        "rolling-upgrade",
    )
    #: Scenarios the fuzz campaign generates per (profile, seed); each is
    #: one independent simulation cell checked against the invariant
    #: oracles.
    fuzz_cases: int = 6
    #: Generator profiles the fuzz campaign sweeps (see
    #: :data:`repro.sim.fuzz.generate.FUZZ_PROFILES`).
    fuzz_profiles: Tuple[str, ...] = ("churn-heavy", "failure-heavy", "mixed")
    #: Timing-model fidelity tier: ``"accurate"`` runs the cycle-accurate
    #: quantum model for every instruction; ``"fast"`` wraps it in the
    #: calibrated probe-and-extrapolate model of :mod:`repro.cpu.fastpath`
    #: (measurement-style cells that need exact instruction sequences always
    #: run accurate).  The tier is part of a cell's identity, so cached
    #: results never mix tiers.
    fidelity: str = "accurate"

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITY_TIERS:
            raise ExperimentError(
                f"unknown fidelity tier {self.fidelity!r}; "
                f"expected one of {', '.join(FIDELITY_TIERS)}"
            )

    @property
    def footprint_scale(self) -> float:
        """Workload footprints shrink with the cache capacities."""
        return 1.0 / self.capacity_scale

    def config(self) -> SystemConfig:
        """The (scaled) machine configuration used by the experiments."""
        return evaluation_system_config(
            capacity_scale=self.capacity_scale,
            timeslice_cycles=self.timeslice_cycles,
        )

    def transition_cost_scale(self) -> float:
        """Keep the paper's ratio of transition cost to timeslice length."""
        return min(1.0, self.timeslice_cycles / PAPER_TIMESLICE_CYCLES)

    def options(self) -> SimulationOptions:
        """Simulation options shared by the timing experiments."""
        return SimulationOptions(
            total_cycles=self.total_cycles,
            warmup_cycles=self.warmup_cycles,
            transition_cost_scale=self.transition_cost_scale(),
        )

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Very small settings for smoke tests of the experiment plumbing."""
        return cls(
            capacity_scale=16,
            total_cycles=12_000,
            warmup_cycles=4_000,
            timeslice_cycles=4_000,
            phase_scale=0.005,
            seeds=(0,),
            workloads=("apache", "pmake"),
            reliable_vcpus=4,
            switch_transitions=2,
            switch_warmup_cycles=2_000,
            frequency_phases=1,
            frequency_phase_scale=0.02,
            fault_trials_per_site=5,
            degradation_failed_cores=(0, 2),
            churn_extra_vms=1,
            # Keep the full 8-machine / 2-rack fleet (a smaller fleet would
            # not exercise rack-scoped storms), but only the storm scenario.
            fleet_machines=8,
            fleet_racks=2,
            fleet_scenarios=("failure-storm",),
            fuzz_cases=3,
            fuzz_profiles=("mixed",),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSettings":
        """Rebuild settings from a ``dataclasses.asdict`` payload.

        This is how ``repro diff`` re-runs the evaluation a baseline
        document was produced with: JSON round trips turn the tuple fields
        into lists, so sequences are normalised back to tuples.  Unknown
        keys are ignored (a baseline written by a newer build still drives
        the fields this build knows about).
        """
        if not isinstance(payload, Mapping):
            raise ExperimentError(
                f"settings payload must be an object, not {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for name, value in payload.items():
            if name not in known:
                continue
            kwargs[name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)

    def with_workloads(self, workloads: Sequence[str]) -> "ExperimentSettings":
        """A copy restricted to the given workloads."""
        return replace(self, workloads=tuple(workloads))

    def with_seeds(self, seeds: Sequence[int]) -> "ExperimentSettings":
        """A copy sweeping the given seeds."""
        return replace(self, seeds=tuple(seeds))

    def with_fidelity(self, fidelity: str) -> "ExperimentSettings":
        """A copy running at the given fidelity tier."""
        return replace(self, fidelity=fidelity)

    def cell_settings(self) -> "ExperimentSettings":
        """The settings one experiment *cell* actually depends on.

        A cell simulates exactly one (workload, configuration, seed)
        combination, so the ``workloads`` and ``seeds`` selections of the
        surrounding sweep must not leak into its identity: normalising them
        away keeps job cache keys stable when the sweep is restricted or
        extended (a cached ``apache`` cell is reused whether the sweep ran
        two workloads or six).  ``fault_trials_per_site`` sizes the fault
        sweep, ``degradation_failed_cores`` and ``churn_extra_vms`` size the
        dynamic-scenario sweeps, and the ``fleet_*`` knobs shape the fleet
        sweep -- none of them describes a simulation cell (each cell carries
        its own failure count, VM roster and timeline in its job params), so
        they are normalised away too.
        """
        return replace(
            self,
            workloads=(),
            seeds=(),
            fault_trials_per_site=0,
            degradation_failed_cores=(),
            churn_extra_vms=0,
            fleet_machines=0,
            fleet_racks=0,
            fleet_scenarios=(),
            fuzz_cases=0,
            fuzz_profiles=(),
        )
