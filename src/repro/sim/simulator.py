"""The event-driven, quantum-based simulation loop.

The simulator advances the machine in scheduling quanta along an ordered
:class:`~repro.sim.timeline.Timeline` of mid-run events.  Each quantum runs
through five composable phases:

1. **schedule** -- ask the gang scheduler which *active* guest VM owns the
   machine for this quantum,
2. **place** -- ask the mapping policy to place that VM's VCPUs onto the
   healthy cores (DMR pairs, single performance cores, or paused); when no
   timeline event fired and the scheduling decision is unchanged since the
   previous quantum, the previous :class:`MappingPlan` is reused instead of
   re-planning (the hot-path optimisation; ``plan_reuses`` in the quantum
   stats counts the hits),
3. **transition-charge** -- charge mode-transition costs at timeslice
   boundaries where the machine switches between a reliable VM and a
   performance VM (scaled by ``transition_cost_scale`` so scaled-down
   timeslices keep the paper's amortisation ratio),
4. **execute** -- run every placed VCPU through the core timing model for
   the quantum's cycle budget (VCPUs whose reliability register is
   ``PERFORMANCE_USER_ONLY`` are run with fine-grained switching: they
   escalate to DMR at every OS entry and drop back at every OS exit, paying
   the transition engine's costs each time), and
5. **account** -- accumulate results into the VCPUs and the machine-wide
   statistics.

Timeline events (core failures and repairs, VM arrivals and departures,
policy and reliability-mode changes, fault-rate bursts) apply exactly at
their cycle: the quantum boundary computation clamps at the next pending
event, so two events inside one nominal quantum split it, an event at cycle
0 reshapes the machine before the first quantum, and an event at the
measurement boundary applies just as measurement begins.

A warmup period can be simulated before measurement begins; caches, TLBs and
PABs stay warm across the measurement boundary but all counters are reset.
The final warmup quantum is clamped so measurement starts *exactly* at
``warmup_cycles`` (previously a warmup not aligned to the quantum length
silently shifted the boundary and dropped measured cycles);
``SimulationResult.warmup_clamp_cycles`` surfaces how many cycles the clamp
trimmed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatSet
from repro.core.transitions import TransitionFlavor
from repro.cpu.timing import CoreAssignment, ExecutionMode, StopReason
from repro.errors import SimulationError
from repro.faults.injector import FaultRates
from repro.sim.results import SimulationResult, build_vm_results
from repro.sim.timeline import (
    CoreFailed,
    CoreRepaired,
    FaultRateBurst,
    PolicyChanged,
    ReliabilityModeChanged,
    Timeline,
    TimelineEvent,
    VmArrived,
    VmDeparted,
)
from repro.virt.scheduler import GangScheduler, MappingPlan, VcpuPlacement
from repro.virt.vcpu import ReliabilityMode, VirtualCPU


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of one simulation run."""

    #: Measured cycles (after warmup).
    total_cycles: int = 40_000
    #: Cycles simulated before measurement starts (caches warm up).  Need
    #: not be a multiple of the quantum length: the final warmup quantum is
    #: clamped at the boundary so measurement starts exactly here, and the
    #: trimmed cycles are surfaced as ``SimulationResult.warmup_clamp_cycles``.
    warmup_cycles: int = 10_000
    #: Quantum length; defaults to the gang-scheduling timeslice.
    quantum_cycles: Optional[int] = None
    #: Factor applied to mode-transition costs charged at timeslice
    #: boundaries.  The paper uses 1 ms timeslices with transitions of a few
    #: thousand cycles; scaled-down runs pass ``scaled_timeslice / 3e6`` here
    #: so the amortisation ratio is preserved.
    transition_cost_scale: float = 1.0
    #: Whether VCPUs in PERFORMANCE_USER_ONLY mode switch modes at every OS
    #: entry/exit (single-OS behaviour).  Requires a policy that reserves a
    #: partner core (MMM-IPC).
    fine_grained_switching: bool = True
    #: Touch every VCPU's working set through the hierarchy before simulation
    #: starts, reproducing the steady-state cache contents a long-running
    #: workload would have (the paper's methodology starts from warmed
    #: checkpoints).  Costs no simulated cycles.
    functional_warming: bool = True
    #: Re-establish the incoming VM's cache contents whenever the gang
    #: scheduler switches VMs.  The paper's 1 ms timeslices are long enough
    #: that the cache refill after a VM switch is amortised to a small
    #: fraction of the slice; scaled-down timeslices are not, so without this
    #: approximation the refill would (wrongly) dominate every slice.
    rewarm_on_vm_switch: bool = True
    #: Floor on the usable cycles of a quantum after transition costs.
    minimum_quantum_cycles: int = 64

    def validate(self) -> "SimulationOptions":
        """Check the options are usable; return ``self``."""
        if self.total_cycles <= 0:
            raise SimulationError("total_cycles must be positive")
        if self.warmup_cycles < 0:
            raise SimulationError("warmup_cycles cannot be negative")
        if self.quantum_cycles is not None and self.quantum_cycles <= 0:
            raise SimulationError("quantum_cycles must be positive when given")
        if not 0.0 <= self.transition_cost_scale <= 10.0:
            raise SimulationError("transition_cost_scale outside [0, 10]")
        if self.minimum_quantum_cycles <= 0:
            # A non-positive floor would let fine-grained switching spin
            # forever on a budget it can never exhaust.
            raise SimulationError("minimum_quantum_cycles must be positive")
        return self


class Simulator:
    """Drives one machine through warmup and measurement along a timeline."""

    def __init__(
        self,
        machine,
        options: SimulationOptions,
        timeline: Optional[Timeline] = None,
    ) -> None:
        self.machine = machine
        self.options = options.validate()
        self.timeline = (timeline if timeline is not None else Timeline()).validate()
        self.quantum_stats = StatSet()
        timeslice = machine.config.virtualization.timeslice_cycles
        self._quantum = min(
            timeslice,
            options.quantum_cycles if options.quantum_cycles is not None else timeslice,
        )
        self.gang = GangScheduler(
            vm_ids=[vm.vm_id for vm in machine.active_vms],
            timeslice_cycles=timeslice,
        )
        # Timeline state: events in processing order, consumed from the front.
        self._events: List[TimelineEvent] = self.timeline.sorted_events()
        self._next_event = 0
        self._events_applied = 0
        self._timeline_stats: Dict[str, int] = {}
        #: (restore cycle, base rates) of the active fault-rate burst.
        self._burst_restore: Optional[Tuple[int, FaultRates]] = None
        self._previous_vm_id: Optional[int] = None
        #: Whether the previous quantum's VM was reliable *when it ran*.
        #: Captured at account time: a ReliabilityModeChanged event may flip
        #: the VM's registers before the next boundary charge reads them,
        #: and the Leave/Enter-DMR cost must follow the mode that actually
        #: executed, not the mode the VM has now.
        self._previous_vm_reliable: Optional[bool] = None
        self._previous_plan: Optional[MappingPlan] = None
        #: Per-VM (decision signature, plan) cache for the place phase, so
        #: plan reuse fires on multi-VM rotations too (each VM's slice
        #: re-plans only when its own decision inputs changed).  Cleared
        #: whenever a timeline event reshapes the machine.
        self._plan_cache: Dict[int, Tuple[tuple, MappingPlan]] = {}
        self._warmup_clamp_cycles = 0
        self._measuring = False
        self._transitions = 0
        self._transition_cycles = 0
        self._paused_quanta = 0

    # ------------------------------------------------------------------ #
    # Top-level driver
    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Run warmup plus measurement and return the collected results."""
        machine = self.machine
        if self.options.functional_warming:
            self._functional_warm()
        end = self.options.warmup_cycles + self.options.total_cycles
        cycle = 0
        self._measuring = self.options.warmup_cycles == 0
        while cycle < end:
            if not self._measuring and cycle >= self.options.warmup_cycles:
                self._reset_measurement_state()
                self._measuring = True
            self._apply_due_events(cycle)
            quantum_end = self._quantum_end(cycle, end)
            self._run_quantum(cycle, quantum_end - cycle)
            cycle = quantum_end

        measured = self.options.total_cycles
        result = SimulationResult(
            policy_name=machine.policy.name,
            total_cycles=measured,
            warmup_cycles=self.options.warmup_cycles,
            vm_results=build_vm_results(machine, measured),
            transitions=self._transitions,
            transition_cycles=self._transition_cycles,
            enter_dmr_transitions=int(
                machine.transition_engine.stats.get("enter_dmr_transitions")
            ),
            leave_dmr_transitions=int(
                machine.transition_engine.stats.get("leave_dmr_transitions")
            ),
            average_enter_dmr_cycles=machine.transition_engine.average_enter_cycles(),
            average_leave_dmr_cycles=machine.transition_engine.average_leave_cycles(),
            paused_vcpu_quanta=self._paused_quanta,
            violation_counts=self._violation_counts(),
            hierarchy_stats=machine.hierarchy.merged_stats().as_dict(),
            quantum_stats=self.quantum_stats.as_dict(),
            warmup_clamp_cycles=self._warmup_clamp_cycles,
            timeline_events_applied=self._events_applied,
            timeline_events_pending=len(self._events) - self._next_event,
            timeline_stats=dict(sorted(self._timeline_stats.items())),
        )
        return result

    def _quantum_end(self, cycle: int, end: int) -> int:
        """First cycle after ``cycle`` at which the quantum must stop.

        The quantum is bounded by the end of the run, the gang-scheduling
        boundary, the configured quantum length, the next pending timeline
        event (so events apply exactly at their cycle), the end of an active
        fault-rate burst, and -- while still warming up -- the measurement
        boundary (the warmup clamp).
        """
        bound = min(end, self.gang.next_boundary(cycle), cycle + self._quantum)
        if self._next_event < len(self._events):
            pending = self._events[self._next_event].cycle
            if cycle < pending < bound:
                bound = pending
        if self._burst_restore is not None and cycle < self._burst_restore[0] < bound:
            bound = self._burst_restore[0]
        warmup = self.options.warmup_cycles
        if not self._measuring and cycle < warmup < bound:
            # Clamp the final warmup quantum at the measurement boundary
            # instead of silently extending warmup into the measured window.
            self._warmup_clamp_cycles += bound - warmup
            bound = warmup
        return bound

    # ------------------------------------------------------------------ #
    # Timeline event application
    # ------------------------------------------------------------------ #

    def _apply_due_events(self, cycle: int) -> None:
        """Apply every event scheduled at or before ``cycle``, in order."""
        if self._burst_restore is not None and self._burst_restore[0] <= cycle:
            _, base_rates = self._burst_restore
            if self.machine.fault_injector is not None:
                self.machine.fault_injector.rates = base_rates
            self._burst_restore = None
        while (
            self._next_event < len(self._events)
            and self._events[self._next_event].cycle <= cycle
        ):
            event = self._events[self._next_event]
            self._next_event += 1
            self._apply_event(event, cycle)
            self._events_applied += 1
            self._timeline_stats[event.KIND] = (
                self._timeline_stats.get(event.KIND, 0) + 1
            )
            # The machine changed shape: every cached plan is suspect.
            self._plan_cache.clear()

    def _apply_event(self, event: TimelineEvent, cycle: int) -> None:
        machine = self.machine
        if isinstance(event, CoreFailed):
            machine.retire_core(event.core_id)
            # The failed core may sit in the previous plan; there is no
            # orderly Leave-DMR from a dead core, so the plan is dropped
            # (the next quantum re-plans and re-pairs around the failure).
            self._previous_plan = None
        elif isinstance(event, CoreRepaired):
            machine.restore_core(event.core_id)
        elif isinstance(event, VmArrived):
            machine.admit_vm(event.vm_name)
            self.gang.set_vm_ids([vm.vm_id for vm in machine.active_vms])
        elif isinstance(event, VmDeparted):
            machine.drain_vm(event.vm_name)
            self.gang.set_vm_ids([vm.vm_id for vm in machine.active_vms])
        elif isinstance(event, PolicyChanged):
            # Unlike a core failure, the previous plan's pairs are still
            # physically intact, so _previous_plan is kept: the Leave-DMR
            # boundary charge for the slice that already ran must still be
            # paid.  Re-planning under the new policy happens anyway (the
            # event cleared the plan cache).
            machine.set_policy(event.policy)
        elif isinstance(event, ReliabilityModeChanged):
            try:
                mode = ReliabilityMode[event.mode]
            except KeyError:
                known = ", ".join(mode.name for mode in ReliabilityMode)
                raise SimulationError(
                    f"unknown reliability mode {event.mode!r} (known: {known})"
                ) from None
            machine.set_vm_reliability(event.vm_name, mode)
        elif isinstance(event, FaultRateBurst):
            injector = machine.fault_injector
            if injector is not None:
                # A burst arriving while another is active replaces it: the
                # rates are always ``base * scale`` of the latest burst.
                base = (
                    self._burst_restore[1]
                    if self._burst_restore is not None
                    else injector.rates
                )
                injector.rates = replace(
                    base,
                    execution_result=base.execution_result * event.scale,
                    store_address=base.store_address * event.scale,
                    privileged_register=base.privileged_register * event.scale,
                )
                self._burst_restore = (cycle + event.duration_cycles, base)
        else:
            raise SimulationError(
                f"the simulator cannot apply timeline event kind {event.KIND!r}"
            )

    # ------------------------------------------------------------------ #
    # Functional cache warming
    # ------------------------------------------------------------------ #

    def _functional_warm(self) -> None:
        """Touch every VCPU's working set on the cores it will run on.

        This reproduces steady-state cache/TLB contents without charging any
        simulated cycles, so short measurement windows are not dominated by
        compulsory (first-touch) misses that a real long-running workload
        would have amortised long ago.  Deferred VMs are warmed too: by the
        time a ``VmArrived`` event admits one, a real long-running guest
        would have its steady-state footprint resident as well.
        """
        machine = self.machine
        for vm in machine.vms:
            machine.allocator.reset()
            plan = machine.policy.plan_quantum(
                vm.vcpus, machine.allocator, machine.pair_factory
            )
            self._warm_vm_plan(plan)
        machine.allocator.reset()

    def _warm_vm_plan(self, plan: MappingPlan) -> None:
        machine = self.machine
        for placement in plan.placements:
            vcpu = machine.vcpus[placement.vcpu_id]
            machine.hierarchy.warm(
                placement.assignment.primary_core,
                vcpu.workload.address_model.warm_addresses(),
                secondary_core=placement.assignment.secondary_core,
            )

    # ------------------------------------------------------------------ #
    # Quantum execution (the five composable phases)
    # ------------------------------------------------------------------ #

    def _run_quantum(self, cycle: int, budget: int) -> None:
        machine = self.machine
        machine.hierarchy.begin_window(budget)
        vm = self._phase_schedule(cycle)
        plan, reused = self._phase_place(vm)
        effective_budget = self._phase_transition_charge(vm, plan, cycle, budget)
        self._phase_execute(vm, plan, effective_budget, cycle)
        self._phase_account(vm, plan, reused, budget)

    def _phase_schedule(self, cycle: int):
        """Which active guest VM owns the machine for this quantum."""
        return self.machine.vms[self.gang.vm_at(cycle)]

    def _plan_signature(self, vm) -> tuple:
        """Everything the mapping policy's decision depends on.

        When this signature matches the one cached for the VM and no
        timeline event fired in between (events clear the cache),
        ``plan_quantum`` would reproduce the same plan -- so the cached one
        is reused without re-planning.
        """
        return (
            vm.vm_id,
            self.machine.policy.name,
            tuple((vcpu.vcpu_id, vcpu.requires_dmr()) for vcpu in vm.vcpus),
        )

    def _phase_place(self, vm) -> Tuple[MappingPlan, bool]:
        """Map the VM's VCPUs onto healthy cores (or reuse the VM's last plan)."""
        machine = self.machine
        if not machine.policy.stateless_plans or machine.fault_injector is not None:
            # A stateful policy (e.g. the duty-cycled adaptive policy) must
            # be consulted every quantum.  Fault-injected machines also
            # always re-plan: a reused plan would carry its ReunionPair
            # fingerprint state across quanta, making fault-detection timing
            # depend on whether the plan cache happened to hit.
            machine.allocator.reset()
            return (
                machine.policy.plan_quantum(
                    vm.vcpus, machine.allocator, machine.pair_factory
                ).validate(machine.num_cores, machine.retired_cores),
                False,
            )
        signature = self._plan_signature(vm)
        cached = self._plan_cache.get(vm.vm_id)
        if cached is not None and cached[0] == signature:
            return cached[1], True
        machine.allocator.reset()
        plan = machine.policy.plan_quantum(
            vm.vcpus, machine.allocator, machine.pair_factory
        ).validate(machine.num_cores, machine.retired_cores)
        self._plan_cache[vm.vm_id] = (signature, plan)
        return plan, False

    def _phase_transition_charge(
        self, vm, plan: MappingPlan, cycle: int, budget: int
    ) -> int:
        """Charge boundary transitions and rewarm on VM switches."""
        machine = self.machine
        vm_switched = (
            self._previous_vm_id is not None and self._previous_vm_id != vm.vm_id
        )
        transition_cost = 0
        if machine.policy.mixed_mode and vm_switched:
            transition_cost = self._charge_boundary_transition(vm, plan, cycle)
        if (
            vm_switched
            and self.options.functional_warming
            and self.options.rewarm_on_vm_switch
        ):
            # Amortised-timeslice approximation: the incoming VM's steady-state
            # cache contents are re-established (see SimulationOptions).
            self._warm_vm_plan(plan)
        # The floor keeps boundary transitions from starving a whole quantum,
        # but must never *grant* cycles: an event-clamped micro-quantum (the
        # wall budget itself below the floor) executes only its real budget,
        # otherwise placed VCPUs would commit more work than the clock
        # advances and event-heavy runs would inflate throughput.
        return min(
            budget, max(self.options.minimum_quantum_cycles, budget - transition_cost)
        )

    def _phase_execute(
        self, vm, plan: MappingPlan, effective_budget: int, cycle: int
    ) -> None:
        """Run every placed VCPU through the core timing model."""
        machine = self.machine
        active_cores = plan.cores_in_use
        for placement in plan.placements:
            vcpu = machine.vcpus[placement.vcpu_id]
            if (
                self.options.fine_grained_switching
                and machine.policy.mixed_mode
                and vcpu.mode_register is ReliabilityMode.PERFORMANCE_USER_ONLY
            ):
                self._run_fine_grained(
                    vcpu, placement, effective_budget, cycle, active_cores
                )
            else:
                self._run_placement(
                    vcpu, placement.assignment, effective_budget, cycle, active_cores
                )

    def _phase_account(
        self, vm, plan: MappingPlan, reused: bool, budget: int
    ) -> None:
        """Fold the quantum into the machine-wide statistics."""
        self._paused_quanta += len(plan.paused_vcpu_ids)
        self.quantum_stats.add("quanta")
        self.quantum_stats.add("placed_vcpus", len(plan.placements))
        self.quantum_stats.add("paused_vcpus", len(plan.paused_vcpu_ids))
        if reused:
            self.quantum_stats.add("plan_reuses")
        # Utilisation accounting: executing core-cycles vs the machine's
        # healthy capacity (the consolidation-churn metric).  Weighted by
        # the quantum's cycle budget -- quanta clamped at events or
        # boundaries can be much shorter than a full timeslice, and an
        # unweighted count would overweight the machine state around them.
        self.quantum_stats.add("core_cycles_used", plan.cores_in_use * budget)
        self.quantum_stats.add(
            "core_cycles_capacity", self.machine.num_healthy_cores * budget
        )
        # Nominal (no-failure) capacity: healthy / nominal is the machine's
        # availability under failure timelines (the fleet SLO metric).
        self.quantum_stats.add(
            "core_cycles_nominal", self.machine.config.num_cores * budget
        )
        self._previous_vm_id = vm.vm_id
        self._previous_vm_reliable = vm.is_reliable
        self._previous_plan = plan

    def _run_placement(
        self,
        vcpu: VirtualCPU,
        assignment: CoreAssignment,
        budget: int,
        cycle: int,
        active_cores: int,
    ) -> None:
        machine = self.machine
        if (
            machine.fault_injector is not None
            and assignment.mode is ExecutionMode.PERFORMANCE
        ):
            machine.fault_injector.maybe_corrupt_privileged_register(vcpu)
        result = machine.timing_model.run_quantum(
            workload=vcpu.workload,
            assignment=assignment,
            cycle_budget=budget,
            start_cycle=cycle,
            vcpu_id=vcpu.vcpu_id,
            active_cores=active_cores,
        )
        vcpu.record_quantum(
            cycles=result.cycles,
            instructions=result.instructions,
            user_instructions=result.user_instructions,
            os_instructions=result.os_instructions,
        )
        self.quantum_stats.merge(result.stats)

    def _run_fine_grained(
        self,
        vcpu: VirtualCPU,
        placement: VcpuPlacement,
        budget: int,
        cycle: int,
        active_cores: int,
    ) -> None:
        """Single-OS style execution: switch modes at every OS entry/exit."""
        machine = self.machine
        vocal, mute = self._pair_for_fine_grained(placement)
        remaining = budget
        while remaining > self.options.minimum_quantum_cycles:
            needs_dmr = vcpu.requires_dmr()
            if needs_dmr:
                assignment = CoreAssignment(
                    mode=ExecutionMode.DMR,
                    primary_core=vocal,
                    secondary_core=mute,
                    reunion_pair=machine.pair_factory(vocal, mute),
                )
                result = machine.timing_model.run_quantum(
                    workload=vcpu.workload,
                    assignment=assignment,
                    cycle_budget=remaining,
                    start_cycle=cycle,
                    vcpu_id=vcpu.vcpu_id,
                    stop_on_os_exit=True,
                    active_cores=active_cores,
                )
            else:
                if machine.fault_injector is not None:
                    machine.fault_injector.maybe_corrupt_privileged_register(vcpu)
                assignment = CoreAssignment(
                    mode=ExecutionMode.PERFORMANCE, primary_core=vocal
                )
                result = machine.timing_model.run_quantum(
                    workload=vcpu.workload,
                    assignment=assignment,
                    cycle_budget=remaining,
                    start_cycle=cycle,
                    vcpu_id=vcpu.vcpu_id,
                    stop_on_os_entry=True,
                    active_cores=active_cores,
                )
            vcpu.record_quantum(
                cycles=result.cycles,
                instructions=result.instructions,
                user_instructions=result.user_instructions,
                os_instructions=result.os_instructions,
            )
            self.quantum_stats.merge(result.stats)
            remaining -= result.cycles

            if result.stop_reason is StopReason.OS_ENTRY:
                breakdown = machine.transition_engine.enter_dmr(
                    vocal_core=vocal,
                    mute_core=mute,
                    vcpu=vcpu,
                    flavor=TransitionFlavor.MMM_IPC,
                    current_cycle=cycle,
                )
                cost = int(breakdown.total_cycles * self.options.transition_cost_scale)
                vcpu.record_mode_switch(cost)
                self._transitions += 1
                self._transition_cycles += cost
                remaining -= cost
            elif result.stop_reason is StopReason.OS_EXIT:
                breakdown = machine.transition_engine.leave_dmr(
                    vocal_core=vocal,
                    mute_core=mute,
                    vcpu=vcpu,
                    flavor=TransitionFlavor.MMM_IPC,
                    current_cycle=cycle,
                )
                cost = int(breakdown.total_cycles * self.options.transition_cost_scale)
                vcpu.record_mode_switch(cost)
                self._transitions += 1
                self._transition_cycles += cost
                remaining -= cost
            else:
                break

    def _pair_for_fine_grained(self, placement: VcpuPlacement) -> tuple[int, int]:
        assignment = placement.assignment
        if assignment.secondary_core is not None:
            return assignment.primary_core, assignment.secondary_core
        if placement.reserved_partner_core is not None:
            return assignment.primary_core, placement.reserved_partner_core
        raise SimulationError(
            "fine-grained mode switching needs a reserved partner core; "
            "use the MMM-IPC policy for PERFORMANCE_USER_ONLY VCPUs"
        )

    # ------------------------------------------------------------------ #
    # Timeslice-boundary transitions (consolidated server)
    # ------------------------------------------------------------------ #

    def _charge_boundary_transition(self, vm, plan: MappingPlan, cycle: int) -> int:
        """Charge Enter/Leave DMR at a boundary between VMs of different modes."""
        machine = self.machine
        previous_vm = machine.vms[self._previous_vm_id]
        # The previous slice's reliability as captured when it executed: a
        # ReliabilityModeChanged event between the slices must not erase (or
        # invent) the transition cost of the mode the machine actually ran.
        previous_was_reliable = bool(self._previous_vm_reliable)
        flavor = (
            TransitionFlavor.MMM_TP
            if machine.policy.name == "mmm-tp"
            else TransitionFlavor.MMM_IPC
        )
        costs = []
        if vm.is_reliable and not previous_was_reliable:
            # Entering the reliable VM's timeslice: each new DMR pair performs
            # an Enter-DMR transition (the performance VCPUs that were using
            # the cores are context switched out).
            outgoing = previous_vm.vcpus
            for index, placement in enumerate(plan.placements):
                assignment = placement.assignment
                if assignment.mode is not ExecutionMode.DMR:
                    continue
                vcpu = machine.vcpus[placement.vcpu_id]
                outgoing_vocal = outgoing[index % len(outgoing)] if outgoing else None
                breakdown = machine.transition_engine.enter_dmr(
                    vocal_core=assignment.primary_core,
                    mute_core=assignment.secondary_core,
                    vcpu=vcpu,
                    outgoing_vocal_vcpu=outgoing_vocal,
                    outgoing_mute_vcpu=(
                        outgoing[(index + 1) % len(outgoing)]
                        if outgoing and flavor is TransitionFlavor.MMM_TP
                        else None
                    ),
                    flavor=flavor,
                    current_cycle=cycle,
                )
                costs.append(breakdown.total_cycles)
                vcpu.record_mode_switch(breakdown.total_cycles)
        elif previous_was_reliable and not vm.is_reliable:
            # Leaving DMR: the pairs of the previous plan dissolve; the mute
            # cores are flushed (MMM-TP) and the incoming performance VCPUs
            # are context switched in.
            incoming = vm.vcpus
            previous_plan = self._previous_plan
            if previous_plan is not None:
                for index, placement in enumerate(previous_plan.placements):
                    assignment = placement.assignment
                    if assignment.mode is not ExecutionMode.DMR:
                        continue
                    vcpu = machine.vcpus[placement.vcpu_id]
                    breakdown = machine.transition_engine.leave_dmr(
                        vocal_core=assignment.primary_core,
                        mute_core=assignment.secondary_core,
                        vcpu=vcpu,
                        incoming_vocal_vcpu=(
                            incoming[index % len(incoming)] if incoming else None
                        ),
                        incoming_mute_vcpu=(
                            incoming[(index + 1) % len(incoming)]
                            if incoming and flavor is TransitionFlavor.MMM_TP
                            else None
                        ),
                        flavor=flavor,
                        current_cycle=cycle,
                    )
                    costs.append(breakdown.total_cycles)
                    vcpu.record_mode_switch(breakdown.total_cycles)
        if not costs:
            return 0
        # The pairs transition in parallel; the machine is unavailable for the
        # slowest of them, scaled to preserve the paper's amortisation ratio.
        cost = int(max(costs) * self.options.transition_cost_scale)
        self._transitions += len(costs)
        self._transition_cycles += cost
        return cost

    # ------------------------------------------------------------------ #
    # Measurement bookkeeping
    # ------------------------------------------------------------------ #

    def _reset_measurement_state(self) -> None:
        machine = self.machine
        for vcpu in machine.vcpus.values():
            vcpu.committed_instructions = 0
            vcpu.committed_user_instructions = 0
            vcpu.committed_os_instructions = 0
            vcpu.active_cycles = 0
            vcpu.mode_switches = 0
            vcpu.mode_switch_cycles = 0
        self._transitions = 0
        self._transition_cycles = 0
        self._paused_quanta = 0
        self.quantum_stats = StatSet()
        # The engine's counters feed enter/leave_dmr_transitions and the
        # average transition costs of the result; without this reset they
        # would include warmup-period transitions that the simulator's own
        # counters (reset above) exclude.
        machine.transition_engine.reset_stats()
        machine.violation_log.events.clear()

    def _violation_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.machine.violation_log.events:
            counts[event.kind.name] = counts.get(event.kind.name, 0) + 1
        return counts
